//! Crash-fault injection layer tests.
//!
//! Three contracts, in increasing scope:
//!
//! 1. **The fault-free path is untouched.** Installing [`FaultPlan::none`]
//!    (or a plan that never fires) produces bit-identical `Execution`s for
//!    every protocol — the zero-fault-plan differential — and fault-free
//!    sweep reports never mention `crash_partition` or carry a `fault`
//!    arm, so every pre-fault golden pin keeps hashing the same bytes.
//! 2. **Faulty runs are deterministic.** Fault-enabled honest, attack and
//!    timed sweeps are sha256-pinned and thread-count invariant (1/2/8),
//!    exactly like their fault-free counterparts.
//! 3. **The semantics are the documented ones.** A crash that severs the
//!    ring yields [`FailReason::CrashPartition`] (never plain `Deadlock`),
//!    and recovery monotonically restores survival.

use fle_attacks::AttackKind;
use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead};
use fle_harness::{
    run_batch_range_grouped, run_sweep, sha256_hex, trial_seed, AttackSweep, BatchConfig,
    CoalitionSpec, CrashInstant, FaultSpec, FnKeySpec, HonestSweep, LatencySpec, ProtocolKind,
    ReportPartial, ScheduleSpec, SeedMode, SweepSpec, TargetSpec, TrialOutcome,
};
use proptest::prelude::*;
use ring_sim::{Engine, FailReason, FaultPlan, Outcome, Topology};

// ---------------------------------------------------------------------------
// 1. Zero-fault-plan differential: FaultPlan::none() ≡ the plain path.

/// Asserts that `run` on an engine carrying (a) the empty plan and (b) a
/// plan whose single fault can never fire produces exactly the reference
/// execution. Case (a) exercises the `is_empty` dispatch into the
/// no-fault monomorphized loop; case (b) exercises the *fault-hooked*
/// loop with a hook that never triggers — both must be bit-identical.
macro_rules! none_plan_identity {
    ($label:expr, $n:expr, $p:expr) => {{
        let p = $p;
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring($n));
        engine.set_fault_plan(&FaultPlan::none());
        assert_eq!(
            p.run_honest_in(&mut engine),
            reference,
            "{}: FaultPlan::none() diverged from the plain path",
            $label
        );
        engine.set_fault_plan(&FaultPlan::none().with_crash(0, u64::MAX, None));
        let exec = p.run_honest_in(&mut engine);
        assert_eq!(exec.stats.crashes, 0, "{}: nothing may fire", $label);
        assert_eq!(
            exec, reference,
            "{}: a never-firing plan diverged from the plain path",
            $label
        );
        engine.clear_fault_plan();
        assert_eq!(
            p.run_honest_in(&mut engine),
            reference,
            "{}: clear_fault_plan must restore the plain path",
            $label
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn none_plan_is_the_plain_path_for_all_protocols(seed in any::<u64>(), n in 4usize..24) {
        none_plan_identity!("basic", n, BasicLead::new(n).with_seed(seed));
        none_plan_identity!("alead", n, ALeadUni::new(n).with_seed(seed));
        none_plan_identity!(
            "phase",
            n,
            PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(seed ^ 7)
        );
        none_plan_identity!("phasesum", n, PhaseSumLead::new(n).with_seed(seed));
    }
}

/// Fault-free sweeps of every protocol: zero `crash_partition` failures,
/// no `fault` arm, and neither key in the serialized JSON — the byte-level
/// guarantee behind every pre-fault sha pin.
#[test]
fn fault_free_sweeps_never_mention_crashes() {
    for protocol in [
        ProtocolKind::BasicLead,
        ProtocolKind::ALeadUni,
        ProtocolKind::PhaseAsyncLead,
        ProtocolKind::PhaseSumLead,
    ] {
        let report = run_sweep(&SweepSpec::Honest(HonestSweep {
            protocol,
            n: 8,
            fn_key: 3,
            batch: BatchConfig {
                trials: 200,
                base_seed: 1,
                threads: 2,
            },
            batch_width: 0,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        }))
        .expect("valid spec");
        assert_eq!(report.fails.crash_partition, 0, "{protocol:?}");
        assert!(report.fault.is_none(), "{protocol:?}");
        let json = report.to_json();
        assert!(!json.contains("crash_partition"), "{protocol:?}: {json}");
        assert!(!json.contains("\"fault\""), "{protocol:?}: {json}");
    }
}

// ---------------------------------------------------------------------------
// 2. Fault-enabled sha pins, thread-count invariant.

/// The canonical fault-enabled honest sweep: `PhaseAsyncLead n=64`,
/// 500 trials, 2 crash-stop faults per trial inside the nominal 2n² = 8192
/// delivery window (what `fle_lab sweep --protocol phase --n 64
/// --trials 500 --seed 1 --crash 2` runs).
fn phase_n64_fault_sweep(threads: usize) -> SweepSpec {
    SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 64,
        fn_key: 0,
        batch: BatchConfig {
            trials: 500,
            base_seed: 1,
            threads,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: Some(FaultSpec {
            crashes: 2,
            window: CrashInstant::Deliveries(8192),
            recover: None,
        }),
    })
}

#[test]
fn fault_sweep_sha256_is_pinned_and_thread_invariant() {
    for threads in [1, 2, 8] {
        let report = run_sweep(&phase_n64_fault_sweep(threads)).expect("valid spec");
        assert!(report.fault.is_some(), "threads {threads}");
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            "8c7b72646b309bde9e2ce26f6665a7d37508d14f8776bd7dad2ec24fbd85ab70",
            "threads {threads}"
        );
    }
}

/// The canonical fault-enabled attack sweep: the `k=7` rushing coalition
/// on `A-LEADuni n=16` with one crash-stop fault per trial in the 2n² =
/// 512 delivery window (what `fle_lab attack-sweep --attack rushing
/// --n 16 --trials 500 --seed 1 --coalition spaced:7:1 --target fixed:3
/// --crash 1` runs).
#[test]
fn fault_attack_sweep_sha256_is_pinned_and_thread_invariant() {
    for threads in [1, 2, 8] {
        let report = fle_harness::run_attack_sweep(&AttackSweep {
            attack: AttackKind::Rushing,
            n: 16,
            fn_key: FnKeySpec::Fixed(0),
            batch: BatchConfig {
                trials: 500,
                base_seed: 1,
                threads,
            },
            coalition: CoalitionSpec::EquallySpaced { k: 7, offset: 1 },
            target: TargetSpec::Fixed(3),
            seed_mode: SeedMode::Derived,
            schedule: ScheduleSpec::Fifo,
            fault: Some(FaultSpec {
                crashes: 1,
                window: CrashInstant::Deliveries(512),
                recover: None,
            }),
        })
        .expect("valid spec");
        assert!(report.attack.is_some() && report.fault.is_some());
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            "87bc1c6236d319206f4d75fd25f30bb69b32eeece2a9b4017e7f5e94371f1f88",
            "threads {threads}"
        );
    }
}

/// The timed-scheduler fault pin: crash instants on the virtual clock
/// (`window_ns`), constant 100 ns links (what `fle_lab sweep --protocol
/// phase --n 16 --trials 200 --seed 1 --latency const:100
/// --crash 1@20000ns` runs).
#[test]
fn timed_fault_sweep_sha256_is_pinned_and_thread_invariant() {
    for threads in [1, 2, 8] {
        let report = run_sweep(&SweepSpec::Honest(HonestSweep {
            protocol: ProtocolKind::PhaseAsyncLead,
            n: 16,
            fn_key: 0,
            batch: BatchConfig {
                trials: 200,
                base_seed: 1,
                threads,
            },
            batch_width: 0,
            schedule: ScheduleSpec::Timed {
                latency: LatencySpec::Constant { ns: 100 },
                loss_permille: 0,
                dup_permille: 0,
            },
            fault: Some(FaultSpec {
                crashes: 1,
                window: CrashInstant::VirtualNs(20_000),
                recover: None,
            }),
        }))
        .expect("valid spec");
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            "fe215d83d7604dc9e867c6f814cf74f83ca042c1ecf25db5f6cc54891d1dcb6b",
            "threads {threads}"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Semantics: CrashPartition, recovery, determinism.

/// A crash that severs the unidirectional ring before the election can
/// complete quiesces with live non-terminated nodes — the outcome is
/// `CrashPartition`, never plain `Deadlock`, and the fired fault is
/// counted.
#[test]
fn severed_ring_fails_as_crash_partition() {
    let n = 8;
    let p = PhaseAsyncLead::new(n).with_seed(42);
    let mut engine = Engine::new(Topology::ring(n));
    // Node 3 crash-stops before the first delivery and never recovers:
    // every message routed through it is swallowed, so the ring is cut.
    engine.set_fault_plan(&FaultPlan::none().with_crash(3, 0, None));
    let exec = p.run_honest_in(&mut engine);
    assert_eq!(exec.outcome, Outcome::Fail(FailReason::CrashPartition));
    assert_eq!(exec.stats.crashes, 1, "the fault must count as fired");
}

/// Recovery monotonically restores survival: the faster a crashed node
/// restarts, the fewer deliveries are dropped, the more elections
/// complete. The counts are exact — the whole pipeline is deterministic —
/// so this doubles as a semantic pin of the recovery path
/// (`fle_lab sweep --protocol phase --n 8 --trials 100 --seed 1 --crash 1
/// [--recover D]`).
#[test]
fn recovery_monotonically_restores_survival() {
    let run = |recover: Option<u64>| {
        let report = run_sweep(&SweepSpec::Honest(HonestSweep {
            protocol: ProtocolKind::PhaseAsyncLead,
            n: 8,
            fn_key: 0,
            batch: BatchConfig {
                trials: 100,
                base_seed: 1,
                threads: 2,
            },
            batch_width: 0,
            schedule: ScheduleSpec::Fifo,
            fault: Some(FaultSpec {
                crashes: 1,
                window: CrashInstant::Deliveries(128),
                recover,
            }),
        }))
        .expect("valid spec");
        assert_eq!(
            report.fault.expect("fault arm").crashed_trials,
            100,
            "every trial's crash fires inside the 2n² window"
        );
        report.elected()
    };
    let crash_stop = run(None);
    let slow_recover = run(Some(4));
    let fast_recover = run(Some(1));
    assert_eq!(
        (crash_stop, slow_recover, fast_recover),
        (4, 66, 88),
        "exact survival counts of the deterministic recovery ladder"
    );
    assert!(crash_stop < slow_recover && slow_recover < fast_recover);
}

/// Same spec, same bytes — twice in-process — and the fault stream is
/// seed-sensitive: a different base seed draws different crash plans and
/// (overwhelmingly) different bytes.
#[test]
fn fault_sweeps_are_deterministic_and_seed_sensitive() {
    let a = run_sweep(&phase_n64_fault_sweep(2)).expect("valid spec");
    let b = run_sweep(&phase_n64_fault_sweep(2)).expect("valid spec");
    assert_eq!(a.to_json(), b.to_json());
    let SweepSpec::Honest(mut h) = phase_n64_fault_sweep(2) else {
        unreachable!()
    };
    h.batch.base_seed = 2;
    let c = run_sweep(&SweepSpec::Honest(h)).expect("valid spec");
    assert_ne!(a.to_json(), c.to_json());
}

// ---------------------------------------------------------------------------
// 4. Lockstep poisoning: a panic inside a batch group falls back to the
//    scalar rerun, and the fault lands on exactly its trial in the
//    report's `faults` section — for any trial count, batch width,
//    thread count and poison position.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn poisoned_group_trial_attributes_its_fault_in_the_report(
        trials in 8u64..48,
        width in 2usize..9,
        threads in 1usize..4,
        base_seed in any::<u64>(),
        poison_sel in any::<u64>(),
    ) {
        let poison = poison_sel % trials;
        let n = 8usize;
        let cfg = BatchConfig { trials, base_seed, threads };
        let value = |i: u64, seed: u64| TrialOutcome {
            outcome: ring_sim::Outcome::Elected(i % n as u64),
            messages: (i ^ seed) % 1000,
            steps: i.wrapping_add(seed) % 1000 + 1,
        };
        // The group stage panics mid-fill when its range contains the
        // poisoned trial; the scalar rerun panics again at exactly that
        // trial — so the group's *other* trials must still land, and the
        // fault must attribute to `poison` alone.
        let out = run_batch_range_grouped(
            &cfg, 0, trials, width,
            || (),
            |(), gstart, buf: &mut Vec<TrialOutcome>| {
                for j in 0..width as u64 {
                    let i = gstart + j;
                    assert!(i != poison, "poisoned group trial {i}");
                    buf.push(value(i, trial_seed(base_seed, i)));
                }
                true
            },
            |(), i, seed| {
                assert!(i != poison, "poisoned scalar trial {i}");
                value(i, seed)
            },
        );
        prop_assert_eq!(out.len() as u64, trials);
        // Fold into the report layer exactly as the sweep runner does.
        let mut partial = ReportPartial::new_honest("poisoned", n, base_seed, trials);
        for (i, slot) in out.into_iter().enumerate() {
            match slot {
                Ok(outcome) => {
                    prop_assert_eq!(
                        outcome,
                        value(i as u64, trial_seed(base_seed, i as u64)),
                        "healthy trial {} must carry the scalar-path value", i
                    );
                    partial.record(i as u64, outcome);
                }
                Err(fault) => {
                    prop_assert_eq!(fault.index, poison, "fault on the wrong trial");
                    prop_assert_eq!(fault.seed, trial_seed(base_seed, poison));
                    prop_assert!(fault.message.contains("poisoned"));
                    partial.record_fault(fault);
                }
            }
        }
        let report = partial.finish().expect("full coverage");
        prop_assert_eq!(report.trials, trials - 1, "the poisoned trial is excluded");
        prop_assert_eq!(report.faults.len(), 1);
        prop_assert_eq!(report.faults[0].index, poison);
        prop_assert_eq!(report.faults[0].seed, trial_seed(base_seed, poison));
        let has_faults_arm = report.to_json().contains(r#""faults":[{"index":"#);
        prop_assert!(has_faults_arm, "report JSON must carry the faults section");
    }
}

/// A fault-enabled spec round-trips through its JSON serialization, and
/// the parsed spec reproduces the pinned report — so checkpoint resumes
/// and `--spec` files cover faulty sweeps too.
#[test]
fn fault_spec_json_round_trips_to_the_same_bytes() {
    let spec = phase_n64_fault_sweep(1);
    let parsed = SweepSpec::parse_json(&spec.to_json()).expect("round trip");
    assert_eq!(parsed, spec);
    let report = run_sweep(&parsed).expect("valid spec");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "8c7b72646b309bde9e2ce26f6665a7d37508d14f8776bd7dad2ec24fbd85ab70"
    );
}
