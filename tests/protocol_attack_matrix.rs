//! End-to-end matrix: every protocol × every applicable attack, checking
//! exactly the paper's predicted winner in each cell.
//!
//! | protocol        | attack          | coalition         | predicted |
//! |-----------------|-----------------|-------------------|-----------|
//! | Basic-LEAD      | wait-and-cancel | k = 1             | attacker  |
//! | A-LEADuni       | rushing         | k = √n spaced     | attacker  |
//! | A-LEADuni       | rushing         | k < √n spaced     | protocol  |
//! | A-LEADuni       | cubic           | k ≈ 2∛n geometric | attacker  |
//! | A-LEADuni       | random-located  | Θ(√(n log n))     | attacker  |
//! | PhaseAsyncLead  | rushing         | k = √n + 3        | attacker  |
//! | PhaseAsyncLead  | rushing         | k ≤ √n/10         | protocol  |
//! | PhaseAsyncLead  | cubic-burst     | any               | protocol  |
//! | PhaseSumLead    | partial-sum     | k = 4             | attacker  |

use fle_attacks::{
    cubic_distances, BasicSingleAttack, CubicAttack, PhaseBurstAttack, PhaseRushingAttack,
    PhaseSumAttack, RandomLocatedAttack, RushingAttack,
};
use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead};
use fle_core::Coalition;
use ring_sim::Outcome;

const N: usize = 100;

#[test]
fn basic_lead_falls_to_one_adversary() {
    for seed in 0..5 {
        let p = BasicLead::new(N).with_seed(seed);
        let exec = BasicSingleAttack::new(37, 73).run(&p).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(73));
    }
}

#[test]
fn a_lead_uni_falls_to_sqrt_n_rushing() {
    let coalition = Coalition::equally_spaced(N, 10, 1).unwrap();
    for seed in 0..5 {
        let p = ALeadUni::new(N).with_seed(seed);
        let exec = RushingAttack::new(41).run(&p, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(41));
    }
}

#[test]
fn a_lead_uni_withstands_sub_sqrt_rushing() {
    for k in 2..10 {
        let coalition = Coalition::equally_spaced(N, k, 1).unwrap();
        let p = ALeadUni::new(N).with_seed(0);
        assert!(
            RushingAttack::new(0).run(&p, &coalition).is_err(),
            "k={k} should be infeasible on n={N}"
        );
    }
}

#[test]
fn a_lead_uni_falls_to_cubic() {
    let plan = cubic_distances(N).unwrap();
    assert!(
        plan.k() < 10,
        "cubic needs fewer than rushing: {}",
        plan.k()
    );
    for seed in 0..5 {
        let p = ALeadUni::new(N).with_seed(seed);
        let exec = CubicAttack::new(seed % N as u64).run(&p, &plan).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(seed % N as u64));
    }
}

#[test]
fn a_lead_uni_falls_to_random_located_in_regime() {
    let attack = RandomLocatedAttack::new(11, 4);
    let mut favourable_and_won = 0;
    let mut favourable = 0;
    for seed in 0..40 {
        let Some(coalition) = Coalition::random_bernoulli(N, 0.30, seed ^ 0xbeef) else {
            continue;
        };
        if !attack.layout_is_favourable(&coalition) {
            continue;
        }
        favourable += 1;
        let p = ALeadUni::new(N).with_seed(seed);
        if attack.run(&p, &coalition).unwrap().outcome == Outcome::Elected(11) {
            favourable_and_won += 1;
        }
    }
    assert!(favourable >= 5, "sample too small: {favourable}");
    assert_eq!(favourable_and_won, favourable);
}

#[test]
fn phase_async_falls_to_sqrt_n_plus_3_rushing() {
    let coalition = Coalition::equally_spaced(N, 13, 1).unwrap();
    for seed in 0..5 {
        let p = PhaseAsyncLead::new(N).with_seed(seed).with_fn_key(seed * 7);
        let exec = PhaseRushingAttack::new(5).run(&p, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(5), "seed={seed}");
    }
}

#[test]
fn phase_async_withstands_small_coalitions() {
    let p = PhaseAsyncLead::new(N).with_fn_key(3);
    for k in 2..=9 {
        let coalition = Coalition::equally_spaced(N, k, 1).unwrap();
        assert!(
            PhaseRushingAttack::new(0).run(&p, &coalition).is_err(),
            "k={k} must be infeasible against PhaseAsyncLead on n={N}"
        );
    }
}

#[test]
fn phase_async_detects_cubic_burst() {
    let coalition = Coalition::equally_spaced(N, 11, 1).unwrap();
    for seed in 0..5 {
        let p = PhaseAsyncLead::new(N).with_seed(seed).with_fn_key(seed);
        let exec = PhaseBurstAttack::new(1).run(&p, &coalition).unwrap();
        assert!(exec.outcome.is_fail(), "seed={seed}: {:?}", exec.outcome);
    }
}

#[test]
fn phase_sum_falls_to_four_adversaries() {
    let coalition = Coalition::equally_spaced(N, 4, 1).unwrap();
    for seed in 0..5 {
        let p = PhaseSumLead::new(N).with_seed(seed);
        let exec = PhaseSumAttack::new(99).run(&p, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(99));
    }
}

#[test]
fn all_protocols_succeed_honestly_and_sum_family_agrees() {
    let a = ALeadUni::new(N).with_seed(7).run_honest();
    let b = BasicLead::new(N).with_seed(7).run_honest();
    let c = PhaseSumLead::new(N).with_seed(7).run_honest();
    let d = PhaseAsyncLead::new(N)
        .with_seed(7)
        .with_fn_key(7)
        .run_honest();
    for exec in [&a, &b, &c, &d] {
        assert!(exec.outcome.elected().is_some());
    }
    // Same seed derives the same secrets, so the three sum-based
    // protocols elect the same leader.
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.outcome, c.outcome);
}

#[test]
fn attacked_executions_never_deliver_a_wrong_valid_outcome() {
    // Whatever the doomed burst attack does, the outcome must be either
    // FAIL or the honest value — never a silently biased election.
    let coalition = Coalition::equally_spaced(N, 11, 1).unwrap();
    for seed in 0..10 {
        let p = PhaseAsyncLead::new(N).with_seed(seed).with_fn_key(seed);
        let exec = PhaseBurstAttack::new(1).run(&p, &coalition).unwrap();
        match exec.outcome {
            Outcome::Fail(_) => {}
            Outcome::Elected(v) => {
                assert_eq!(v, p.run_honest().outcome.elected().unwrap());
            }
        }
    }
}
