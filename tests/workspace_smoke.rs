//! Workspace-wiring smoke test: each headline protocol of the paper builds,
//! runs honestly on a small ring, and elects a leader in `0..n`.

use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead};

fn assert_elects_in_range(protocol: &dyn FleProtocol) {
    let n = protocol.n();
    let exec = protocol.run_honest();
    let leader = exec.outcome.elected().unwrap_or_else(|| {
        panic!(
            "{}: honest run on n={n} did not elect: {:?}",
            protocol.name(),
            exec.outcome
        )
    });
    assert!(
        (leader as usize) < n,
        "{}: elected leader {leader} out of range 0..{n}",
        protocol.name()
    );
}

#[test]
fn basic_lead_elects_on_small_ring() {
    for seed in 0..8 {
        assert_elects_in_range(&BasicLead::new(9).with_seed(seed));
    }
}

#[test]
fn a_lead_uni_elects_on_small_ring() {
    for seed in 0..8 {
        assert_elects_in_range(&ALeadUni::new(9).with_seed(seed));
    }
}

#[test]
fn phase_async_lead_elects_on_small_ring() {
    for seed in 0..8 {
        assert_elects_in_range(&PhaseAsyncLead::new(9).with_seed(seed).with_fn_key(3));
    }
}
