//! Differential tests of the engine's virtual-clock (timed) path.
//!
//! The timed scheduler is a superset of the untimed engine: with the
//! all-zero [`TimedNetConfig`] (zero latency, no loss, no duplication,
//! no bandwidth queueing) every delivery fires at time 0 and ties break
//! by send sequence, which *is* the fused global-FIFO order. So for
//! every protocol, ring size and seed, the timed path must produce
//! bit-identical [`Execution`]s to the untimed fast path — outcome,
//! per-node outputs, and every counter. These property tests pin that
//! anchor for the four ring protocols and the cached attack path, and
//! pin determinism of the noisy configurations: a lossy/duplicating
//! net replays byte-identically from the same seed (the noise stream is
//! derived from the trial seed, never from global state).

use fle_attacks::{RushingAttack, RushingCache};
use fle_core::protocols::{
    run_ring_honest_timed_into, ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead,
};
use fle_core::Coalition;
use proptest::prelude::*;
use ring_sim::{
    ArenaBacked, Engine, Execution, LatencySpec, LinkProfile, Node, TimedNetConfig, TimedScheduler,
    Topology, TrialArena,
};

/// Runs `n` honest nodes through the timed path under `net` with the
/// engine, scheduler, arena and out-parameter reused across calls (the
/// sweep worker's actual life).
fn run_timed<M: Clone, N: Node<M> + ArenaBacked>(
    engine: &mut Engine<M>,
    timed: &mut TimedScheduler<M>,
    n: usize,
    wakes: &[usize],
    net: &TimedNetConfig,
    seed: u64,
    mut mono: impl FnMut(usize, &mut TrialArena) -> N,
) -> Execution {
    let mut arena = TrialArena::new();
    let mut nodes_buf: Vec<N> = Vec::new();
    let mut out = Execution::default();
    run_ring_honest_timed_into(
        engine,
        n,
        &mut mono,
        wakes,
        &mut nodes_buf,
        timed,
        net,
        seed,
        &mut arena,
        &mut out,
    );
    out
}

/// Asserts the zero-profile timed run equals the untimed reference,
/// twice over the same engine/scheduler (reuse must not perturb it).
fn assert_zero_profile_matches<M: Clone, N: Node<M> + ArenaBacked>(
    n: usize,
    wakes: &[usize],
    reference: &Execution,
    seed: u64,
    mut mono: impl FnMut(usize, &mut TrialArena) -> N,
) {
    let net = TimedNetConfig::default();
    let mut engine = Engine::new(Topology::ring(n));
    let mut timed = TimedScheduler::new();
    for pass in 0..2 {
        let out = run_timed(&mut engine, &mut timed, n, wakes, &net, seed, &mut mono);
        assert_eq!(&out, reference, "zero-profile timed (pass {pass})");
    }
}

/// A noisy but valid profile: jittered latency, loss and duplication.
fn noisy_net() -> TimedNetConfig {
    TimedNetConfig::uniform(LinkProfile {
        latency: LatencySpec::Uniform { lo: 0, hi: 500 },
        loss_permille: 100,
        dup_permille: 80,
        gap_ns: 25,
    })
}

/// Replays one noisy honest run twice from the same seed (fresh engine
/// vs. reused engine) and asserts byte-identical executions.
fn assert_noisy_replay_deterministic<M: Clone, N: Node<M> + ArenaBacked>(
    n: usize,
    wakes: &[usize],
    seed: u64,
    mut mono: impl FnMut(usize, &mut TrialArena) -> N,
) {
    let net = noisy_net();
    let mut engine = Engine::new(Topology::ring(n));
    let mut timed = TimedScheduler::new();
    let first = run_timed(&mut engine, &mut timed, n, wakes, &net, seed, &mut mono);
    // Same seed on the reused engine: identical replay.
    let again = run_timed(&mut engine, &mut timed, n, wakes, &net, seed, &mut mono);
    assert_eq!(first, again, "reused-engine replay");
    // Same seed on a fresh engine: identical replay.
    let mut fresh_engine = Engine::new(Topology::ring(n));
    let mut fresh_timed = TimedScheduler::new();
    let fresh = run_timed(
        &mut fresh_engine,
        &mut fresh_timed,
        n,
        wakes,
        &net,
        seed,
        &mut mono,
    );
    assert_eq!(first, fresh, "fresh-engine replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn basic_lead_timed_zero_profile_matches_fifo(seed in any::<u64>(), n in 2usize..24) {
        let p = BasicLead::new(n).with_seed(seed);
        let reference = p.run_honest();
        assert_zero_profile_matches(n, &p.wakes(), &reference, seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
        assert_noisy_replay_deterministic(n, &p.wakes(), seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
    }

    #[test]
    fn a_lead_uni_timed_zero_profile_matches_fifo(seed in any::<u64>(), n in 2usize..24) {
        let p = ALeadUni::new(n).with_seed(seed);
        let reference = p.run_honest();
        assert_zero_profile_matches(n, &p.wakes(), &reference, seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
        assert_noisy_replay_deterministic(n, &p.wakes(), seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
    }

    #[test]
    fn phase_async_timed_zero_profile_matches_fifo(
        seed in any::<u64>(),
        key in any::<u64>(),
        n in 4usize..24,
    ) {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(key);
        let reference = p.run_honest();
        assert_zero_profile_matches(n, &p.wakes(), &reference, seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
        assert_noisy_replay_deterministic(n, &p.wakes(), seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
    }

    #[test]
    fn phase_sum_timed_zero_profile_matches_fifo(seed in any::<u64>(), n in 4usize..24) {
        let p = PhaseSumLead::new(n).with_seed(seed);
        let reference = p.run_honest();
        assert_zero_profile_matches(n, &p.wakes(), &reference, seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
        assert_noisy_replay_deterministic(n, &p.wakes(), seed, |id, arena| {
            p.honest_ring_node_in(id, arena)
        });
    }

    /// The cached attack path (`run_in` over a `TrialCache`) with the
    /// zero-profile net installed must equal the untimed one-shot
    /// reference, and a noisy net must replay deterministically.
    #[test]
    fn rushing_attack_timed_paths_agree(seed in any::<u64>(), n in 16usize..26, w in 0u64..16) {
        let p = ALeadUni::new(n).with_seed(seed);
        let coalition = Coalition::equally_spaced(n, 5, 1).expect("valid layout");
        let attack = RushingAttack::new(w);
        prop_assume!(attack.plan(&p, &coalition).is_ok());
        let reference = attack.run(&p, &coalition).expect("planned");

        let mut cache = RushingCache::ring(n);
        cache.set_timed_net(Some(&TimedNetConfig::default()));
        cache.set_trial_seed(seed);
        for pass in 0..2 {
            let exec = attack.run_in(&p, &coalition, &mut cache).expect("planned");
            prop_assert_eq!(exec, &reference, "zero-profile timed attack pass {}", pass);
        }

        // Noisy net: replay determinism over the reused cache, and a
        // fresh cache must reproduce the same bytes.
        let net = noisy_net();
        cache.set_timed_net(Some(&net));
        cache.set_trial_seed(seed);
        let first = attack.run_in(&p, &coalition, &mut cache).expect("planned").clone();
        let again = attack.run_in(&p, &coalition, &mut cache).expect("planned").clone();
        prop_assert_eq!(&first, &again, "reused-cache noisy replay");
        let mut fresh = RushingCache::ring(n);
        fresh.set_timed_net(Some(&net));
        fresh.set_trial_seed(seed);
        let fresh_exec = attack.run_in(&p, &coalition, &mut fresh).expect("planned").clone();
        prop_assert_eq!(&first, &fresh_exec, "fresh-cache noisy replay");

        // Dropping back to the untimed path restores the reference.
        cache.set_timed_net(None);
        let exec = attack.run_in(&p, &coalition, &mut cache).expect("planned");
        prop_assert_eq!(exec, &reference, "untimed path restored");
    }
}

/// One timed scheduler serving many seeds back to back must match
/// fresh-scheduler runs throughout (no cross-trial noise leakage).
#[test]
fn timed_engine_reuse_across_seeds_matches_fresh_runs() {
    let n = 9;
    let net = noisy_net();
    let mut engine = Engine::new(Topology::ring(n));
    let mut timed = TimedScheduler::new();
    for seed in 0..40u64 {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(7);
        let reused = run_timed(
            &mut engine,
            &mut timed,
            n,
            &p.wakes(),
            &net,
            seed,
            |id, arena| p.honest_ring_node_in(id, arena),
        );
        let mut fresh_engine = Engine::new(Topology::ring(n));
        let mut fresh_timed = TimedScheduler::new();
        let fresh = run_timed(
            &mut fresh_engine,
            &mut fresh_timed,
            n,
            &p.wakes(),
            &net,
            seed,
            |id, arena| p.honest_ring_node_in(id, arena),
        );
        assert_eq!(reused, fresh, "seed {seed}");
    }
}
