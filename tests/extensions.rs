//! Integration tests for the extension layers: the Appendix G indexed
//! protocol, the Section 1.1 synchronous contrast, and fair consensus —
//! all interacting with the same substrates as the core reproduction.

use fle_core::consensus::FairConsensus;
use fle_core::protocols::{
    FleProtocol, IndexedPhaseLead, PhaseAsyncLead, SyncFixedValue, SyncLead, SyncWaitAndCancel,
};
use ring_sim::sync::SyncNode;

#[test]
fn indexed_and_plain_phase_protocols_agree_everywhere() {
    for n in [4usize, 10, 21, 40] {
        for seed in 0..4 {
            for key in 0..3 {
                let indexed = IndexedPhaseLead::new(n).with_seed(seed).with_fn_key(key);
                let plain = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(key);
                assert_eq!(
                    indexed.run_honest().outcome,
                    plain.run_honest().outcome,
                    "n={n} seed={seed} key={key}"
                );
            }
        }
    }
}

#[test]
fn consensus_decision_distribution_tracks_input_share() {
    let n = 12usize;
    for true_count in [3usize, 6, 9] {
        let inputs: Vec<bool> = (0..n).map(|i| i < true_count).collect();
        let trials = 1200u64;
        let mut trues = 0u64;
        for seed in 0..trials {
            let c = FairConsensus::new(inputs.clone()).with_seed(seed);
            if c.run_honest().expect("honest").0 {
                trues += 1;
            }
        }
        let freq = trues as f64 / trials as f64;
        let share = true_count as f64 / n as f64;
        assert!(
            (freq - share).abs() < 0.06,
            "true_count={true_count}: freq {freq} vs share {share}"
        );
    }
}

#[test]
fn synchrony_beats_the_wait_and_cancel_for_every_position() {
    let n = 10;
    for pos in 1..n {
        let p = SyncLead::new(n).with_seed(pos as u64);
        let exec = p.run_with(vec![(pos, Box::new(SyncWaitAndCancel::new(n, 3)))]);
        assert!(exec.outcome.is_fail(), "position {pos} went undetected");
    }
}

#[test]
fn sync_lead_resists_maximal_complying_coalitions() {
    // Any n−1 processors playing arbitrary fixed values leave the outcome
    // uniform over the lone honest processor's randomness.
    let n = 6usize;
    let honest_one = 4usize;
    let mut counts = vec![0u64; n];
    let trials = 3000u64;
    for seed in 0..trials {
        let p = SyncLead::new(n).with_seed(seed);
        let overrides = (0..n)
            .filter(|&id| id != honest_one)
            .map(|id| {
                let node: Box<dyn SyncNode<u64>> =
                    Box::new(SyncFixedValue::new(n, (id % 3) as u64));
                (id, node)
            })
            .collect();
        let exec = p.run_with(overrides);
        counts[exec.outcome.elected().expect("complying run") as usize] += 1;
    }
    let expect = trials as f64 / n as f64;
    for &c in &counts {
        assert!((c as f64 - expect).abs() < expect * 0.25, "{counts:?}");
    }
}

#[test]
fn consensus_inherits_the_election_seed_determinism() {
    let inputs = vec![true, false, false, true, true, false, false, true];
    let a = FairConsensus::new(inputs.clone())
        .with_seed(42)
        .run_honest();
    let b = FairConsensus::new(inputs).with_seed(42).run_honest();
    assert_eq!(a, b);
}
