//! Locates the resilience crossovers empirically and checks they fall
//! where the theorems put them: the *shape* reproduction at the heart of
//! this repo (who wins, at which coalition size, for which layout).

use fle_attacks::{plan_with_k, PhaseRushingAttack, RushingAttack};
use fle_core::protocols::{ALeadUni, PhaseAsyncLead};
use fle_core::Coalition;

/// Smallest k for which the equally-spaced rushing attack is feasible.
fn rushing_threshold(n: usize) -> usize {
    (1..n)
        .find(|&k| {
            Coalition::equally_spaced(n, k, 1)
                .is_ok_and(|c| RushingAttack::new(0).plan(&ALeadUni::new(n), &c).is_ok())
        })
        .expect("some k always works")
}

/// Smallest k for which a cubic plan exists.
fn cubic_threshold(n: usize) -> usize {
    (2..n)
        .find(|&k| plan_with_k(n, k).is_ok())
        .expect("some k always works")
}

/// Smallest k for which the equally-spaced phase rushing attack is
/// feasible.
fn phase_threshold(n: usize) -> usize {
    let p = PhaseAsyncLead::new(n).with_fn_key(1);
    (2..n)
        .find(|&k| {
            Coalition::equally_spaced(n, k, 1)
                .is_ok_and(|c| PhaseRushingAttack::new(0).plan(&p, &c).is_ok())
        })
        .expect("some k always works")
}

#[test]
fn rushing_crossover_tracks_sqrt_n() {
    for n in [64usize, 144, 400, 1024] {
        let k = rushing_threshold(n);
        let sqrt_n = (n as f64).sqrt();
        assert!(
            (k as f64) >= sqrt_n * 0.9 && (k as f64) <= sqrt_n * 1.2 + 2.0,
            "n={n}: threshold {k}, sqrt(n)={sqrt_n}"
        );
    }
}

#[test]
fn cubic_crossover_tracks_cbrt_n() {
    for n in [64usize, 216, 1000, 4096] {
        let k = cubic_threshold(n);
        let cbrt = (n as f64).cbrt();
        assert!(
            (k as f64) >= cbrt * 0.9 && (k as f64) <= 2.0 * cbrt + 2.0,
            "n={n}: threshold {k}, cbrt(n)={cbrt}"
        );
    }
}

#[test]
fn cubic_needs_strictly_fewer_adversaries_than_rushing() {
    for n in [216usize, 1000, 4096] {
        let cubic = cubic_threshold(n);
        let rushing = rushing_threshold(n);
        assert!(
            cubic < rushing,
            "n={n}: cubic {cubic} should undercut rushing {rushing}"
        );
        if n >= 1000 {
            // The gap is asymptotic (∛n vs √n): demand a 2x factor once
            // n is large enough for the constants to separate.
            assert!(
                cubic * 2 < rushing,
                "n={n}: cubic {cubic} should be far below rushing {rushing}"
            );
        }
    }
}

#[test]
fn phase_crossover_tracks_sqrt_n_too() {
    // PhaseAsyncLead's attack threshold coincides with the rushing
    // threshold (k ≈ √n) — the point of Theorem 6.1 is that *nothing
    // below that* works, unlike A-LEADuni where the cubic attack slips
    // under at ∛n.
    for n in [100usize, 400, 1024] {
        let k = phase_threshold(n);
        let sqrt_n = (n as f64).sqrt();
        assert!(
            (k as f64) >= sqrt_n * 0.9 && (k as f64) <= sqrt_n * 1.2 + 3.0,
            "n={n}: threshold {k}, sqrt(n)={sqrt_n}"
        );
    }
}

#[test]
fn consecutive_crossover_is_half_n() {
    for n in [33usize, 65, 129] {
        let threshold = (1..n)
            .find(|&k| {
                Coalition::consecutive(n, k, 1)
                    .is_ok_and(|c| RushingAttack::new(0).plan(&ALeadUni::new(n), &c).is_ok())
            })
            .unwrap();
        assert_eq!(threshold, n.div_ceil(2), "n={n}");
    }
}

#[test]
fn the_resilience_hierarchy_holds() {
    // The paper's headline ordering for the same ring size:
    //   Basic-LEAD (k=1) < A-LEADuni (k ~ cbrt n) < PhaseAsyncLead (k ~ sqrt n)
    let n = 1000;
    let basic = 1;
    let alead = cubic_threshold(n);
    let phase = phase_threshold(n);
    assert!(
        basic < alead && alead < phase,
        "{basic} < {alead} < {phase}"
    );
}
