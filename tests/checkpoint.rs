//! In-process tests of sweep checkpoint/resume.
//!
//! The checkpoint layer's contract: a run that snapshots every `N` trials
//! produces the same bytes as the plain run; a run that *resumes* from a
//! mid-sweep checkpoint (the crash case, simulated here by writing the
//! checkpoint file by hand) also produces the same bytes; and a
//! checkpoint belonging to a different spec is an error, never a silent
//! restart. The subprocess SIGKILL version of the crash case lives in
//! `crates/experiments/tests/checkpoint_resume.rs`.

use std::path::PathBuf;

use fle_harness::{
    run_sweep, run_sweep_checkpointed, run_sweep_partial, sha256_hex, write_checkpoint,
    BatchConfig, HonestSweep, ProtocolKind, ScheduleSpec, SweepCheckpoint, SweepSpec,
};

const TRIALS: u64 = 300;

fn spec(base_seed: u64) -> SweepSpec {
    SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 8,
        fn_key: 9,
        batch: BatchConfig {
            trials: TRIALS,
            base_seed,
            threads: 2,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

/// A collision-free temp path that cleans up on drop, so a failing
/// assertion doesn't leak state into the next run.
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "fle_checkpoint_test_{}_{name}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn checkpointed_run_matches_plain_run() {
    let spec = spec(1);
    let plain = run_sweep(&spec).expect("valid spec");
    let tmp = TempPath::new("plain");
    let run = run_sweep_checkpointed(&spec, &tmp.0, 100, 0, TRIALS).expect("checkpointed run");
    assert_eq!(run.resumed_from, None);
    assert_eq!(run.checkpoints_written, 3);
    let report = run.partial.finish().expect("full coverage");
    assert_eq!(report.to_json(), plain.to_json());

    // The final checkpoint file is left for the caller and must parse
    // back as a complete snapshot of the whole range.
    let src = std::fs::read_to_string(&tmp.0).expect("checkpoint file exists");
    let cp = SweepCheckpoint::parse_json(&src).expect("valid checkpoint");
    assert_eq!(cp.completed(), TRIALS);
    assert_eq!(
        cp.spec_sha256,
        sha256_hex(spec.to_json().as_bytes()),
        "checkpoint is bound to its spec"
    );
    assert_eq!(
        cp.partial.finish().expect("full coverage").to_json(),
        plain.to_json()
    );
}

/// The crash case: a checkpoint covering `[0, 120)` exists (as if the
/// process died mid-sweep); rerunning fast-forwards past it and the final
/// report is byte-identical to the uninterrupted run.
#[test]
fn resume_from_mid_sweep_checkpoint_is_byte_identical() {
    let spec = spec(1);
    let plain = run_sweep(&spec).expect("valid spec");
    let tmp = TempPath::new("resume");
    let prefix = run_sweep_partial(&spec, 0, 120).expect("valid range");
    write_checkpoint(
        &tmp.0,
        &SweepCheckpoint {
            spec_sha256: sha256_hex(spec.to_json().as_bytes()),
            start: 0,
            end: TRIALS,
            partial: prefix,
        },
    )
    .expect("checkpoint written");

    let run = run_sweep_checkpointed(&spec, &tmp.0, 100, 0, TRIALS).expect("resumed run");
    assert_eq!(run.resumed_from, Some(120));
    assert_eq!(run.checkpoints_written, 2, "chunks [120,220) and [220,300)");
    let report = run.partial.finish().expect("full coverage");
    assert_eq!(report.to_json(), plain.to_json());
}

/// A checkpoint written by a *different* spec must be rejected loudly —
/// resuming it would silently splice two unrelated seed schedules.
#[test]
fn mismatched_spec_hash_is_an_error() {
    let tmp = TempPath::new("mismatch");
    let other = spec(99);
    let prefix = run_sweep_partial(&other, 0, 50).expect("valid range");
    write_checkpoint(
        &tmp.0,
        &SweepCheckpoint {
            spec_sha256: sha256_hex(other.to_json().as_bytes()),
            start: 0,
            end: TRIALS,
            partial: prefix,
        },
    )
    .expect("checkpoint written");

    let err = run_sweep_checkpointed(&spec(1), &tmp.0, 100, 0, TRIALS).unwrap_err();
    assert!(err.contains("different spec"), "unexpected message: {err}");
}

/// `--checkpoint-every 0` means "snapshot only at the end": exactly one
/// write, same bytes.
#[test]
fn every_zero_checkpoints_once_at_the_end() {
    let spec = spec(1);
    let plain = run_sweep(&spec).expect("valid spec");
    let tmp = TempPath::new("once");
    let run = run_sweep_checkpointed(&spec, &tmp.0, 0, 0, TRIALS).expect("checkpointed run");
    assert_eq!(run.checkpoints_written, 1);
    let report = run.partial.finish().expect("full coverage");
    assert_eq!(report.to_json(), plain.to_json());
}

/// A completed checkpoint resumes to a no-op: zero further trials run,
/// zero further writes, identical bytes — so retrying a command that
/// crashed *after* its last checkpoint but before output is safe.
#[test]
fn resuming_a_completed_checkpoint_is_a_noop() {
    let spec = spec(1);
    let tmp = TempPath::new("noop");
    let first = run_sweep_checkpointed(&spec, &tmp.0, 100, 0, TRIALS).expect("first run");
    let second = run_sweep_checkpointed(&spec, &tmp.0, 100, 0, TRIALS).expect("second run");
    assert_eq!(second.resumed_from, Some(TRIALS));
    assert_eq!(second.checkpoints_written, 0);
    assert_eq!(second.partial, first.partial);
}

/// A corrupted checkpoint file — garbage bytes, not JSON — is a named
/// error (the CLI turns it into exit 2), never a panic and never a
/// silent restart.
#[test]
fn corrupted_checkpoint_is_a_named_error() {
    let tmp = TempPath::new("corrupt");
    std::fs::write(&tmp.0, b"\x00\xff not a checkpoint {{{").expect("write garbage");
    let err = run_sweep_checkpointed(&spec(1), &tmp.0, 100, 0, TRIALS).unwrap_err();
    assert!(
        err.contains("checkpoint") && err.contains("fle_checkpoint_test"),
        "error must name the file: {err}"
    );
}

/// A *truncated* checkpoint — a valid snapshot cut off mid-write, the
/// shape a non-atomic writer would leave after a crash — is equally a
/// named error. Every truncation point must fail cleanly, not just the
/// ones that break JSON nesting.
#[test]
fn truncated_checkpoint_is_a_named_error_at_every_cut() {
    let spec = spec(1);
    let tmp = TempPath::new("truncated");
    let prefix = run_sweep_partial(&spec, 0, 120).expect("valid range");
    let full = SweepCheckpoint {
        spec_sha256: sha256_hex(spec.to_json().as_bytes()),
        start: 0,
        end: TRIALS,
        partial: prefix,
    }
    .to_json();
    // A spread of cuts: almost-empty, mid-header, mid-partial, almost-whole.
    for frac in [1, 10, 30, 60, 90, 99] {
        let cut = full.len() * frac / 100;
        std::fs::write(&tmp.0, &full[..cut]).expect("write truncated checkpoint");
        let err = run_sweep_checkpointed(&spec, &tmp.0, 100, 0, TRIALS)
            .expect_err("truncated checkpoint must not parse");
        assert!(err.contains("checkpoint"), "cut at {cut}: {err}");
    }
}

/// A stale `<path>.tmp` sibling (an atomic write interrupted between
/// `write` and `rename`) is consumed by the next successful checkpoint
/// write and never survives a completed run.
#[test]
fn stale_tmp_sibling_is_cleaned_by_next_write() {
    let spec = spec(1);
    let tmp = TempPath::new("staletmp");
    let stale = tmp.0.with_extension("json.tmp");
    std::fs::write(&stale, b"interrupted half-written snapshot").expect("write stale tmp");
    let run = run_sweep_checkpointed(&spec, &tmp.0, 100, 0, TRIALS).expect("checkpointed run");
    assert!(run.checkpoints_written > 0);
    assert!(
        !stale.exists(),
        "stale .tmp must be consumed by the next atomic write"
    );
    // The checkpoint itself holds the real snapshot, not the stale bytes.
    let src = std::fs::read_to_string(&tmp.0).expect("checkpoint file exists");
    let cp = SweepCheckpoint::parse_json(&src).expect("valid checkpoint");
    assert_eq!(cp.completed(), TRIALS);
    let _ = std::fs::remove_file(&stale);
}

/// Checkpoint JSON round-trips through its parser.
#[test]
fn checkpoint_json_round_trips() {
    let spec = spec(1);
    let partial = run_sweep_partial(&spec, 0, 120).expect("valid range");
    let cp = SweepCheckpoint {
        spec_sha256: sha256_hex(spec.to_json().as_bytes()),
        start: 0,
        end: TRIALS,
        partial,
    };
    let parsed = SweepCheckpoint::parse_json(&cp.to_json()).expect("round trip");
    assert_eq!(parsed, cp);
    assert_eq!(parsed.completed(), 120);
}
