//! Differential tests of the engine's execution paths.
//!
//! The engine exposes one semantics through several entry points tuned for
//! different callers: the one-shot `SimBuilder` (fresh working set per
//! run), the boxed `Engine::run` / `Engine::run_into` (allocation reuse
//! over `Box<dyn Node>`), and the monomorphized `Engine::run_mono` /
//! `run_mono_into` honest fast path (no boxing, static dispatch). Every
//! pair must produce *identical* `Execution`s — outcome, per-node outputs,
//! and every counter — for every protocol, ring size and seed. These
//! property tests are the oracle that keeps the fast paths honest.

use fle_core::protocols::{
    run_ring_honest_in, ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead,
};
use proptest::prelude::*;
use ring_sim::{default_step_limit, Engine, Execution, FifoScheduler, Node, Topology};

/// Drives one protocol instance through every engine entry point against
/// the `SimBuilder` reference execution. The engine and the `run_into`
/// out-parameter are reused across paths, so buffer-reuse bugs surface as
/// cross-run contamination.
fn assert_paths_agree<M: 'static, N: Node<M>>(
    n: usize,
    wakes: &[usize],
    reference: &Execution,
    engine: &mut Engine<M>,
    mut boxed: impl FnMut() -> Vec<Box<dyn Node<M>>>,
    mut mono: impl FnMut(usize) -> N,
) {
    let limit = default_step_limit(n);

    let via_run = engine.run(&mut boxed(), wakes, &mut FifoScheduler::new(), limit);
    assert_eq!(&via_run, reference, "Engine::run vs SimBuilder");

    // The out-parameter starts dirty (filled by the previous path) and is
    // reused below — run_into must overwrite it completely each time.
    let mut out = via_run;
    engine.run_into(
        &mut boxed(),
        wakes,
        &mut FifoScheduler::new(),
        limit,
        &mut out,
    );
    assert_eq!(&out, reference, "Engine::run_into vs SimBuilder");

    let mut mono_nodes: Vec<N> = (0..n).map(&mut mono).collect();
    let mut scheduler = FifoScheduler::new();
    let via_mono = engine.run_mono(&mut mono_nodes, wakes, &mut scheduler, limit);
    assert_eq!(&via_mono, reference, "Engine::run_mono vs SimBuilder");

    // Reused scheduler + reused out-parameter: the zero-allocation path.
    let mut mono_nodes: Vec<N> = (0..n).map(&mut mono).collect();
    engine.run_mono_into(&mut mono_nodes, wakes, &mut scheduler, limit, &mut out);
    assert_eq!(&out, reference, "Engine::run_mono_into vs SimBuilder");

    let via_honest_in = run_ring_honest_in(engine, n, mono, wakes);
    assert_eq!(
        &via_honest_in, reference,
        "run_ring_honest_in vs SimBuilder"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn basic_lead_paths_agree(seed in any::<u64>(), n in 2usize..24) {
        let p = BasicLead::new(n).with_seed(seed);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
        );
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }

    #[test]
    fn a_lead_uni_paths_agree(seed in any::<u64>(), n in 2usize..24) {
        let p = ALeadUni::new(n).with_seed(seed);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
        );
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }

    #[test]
    fn phase_async_paths_agree(seed in any::<u64>(), key in any::<u64>(), n in 4usize..24) {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(key);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
        );
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }

    #[test]
    fn phase_sum_paths_agree(seed in any::<u64>(), n in 4usize..24) {
        let p = PhaseSumLead::new(n).with_seed(seed);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
        );
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }
}

/// One engine serving many seeds back to back (the sweep worker's actual
/// life) must match per-seed fresh references throughout.
#[test]
fn engine_reuse_across_seeds_matches_fresh_runs() {
    let n = 9;
    let mut engine = Engine::new(Topology::ring(n));
    for seed in 0..40u64 {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(7);
        assert_eq!(p.run_honest_in(&mut engine), p.run_honest(), "seed {seed}");
    }
}
