//! Differential tests of the engine's execution paths.
//!
//! The engine exposes one semantics through several entry points tuned for
//! different callers: the one-shot `SimBuilder` (fresh working set per
//! run), the boxed `Engine::run` / `Engine::run_into` (allocation reuse
//! over `Box<dyn Node>`), the monomorphized `Engine::run_mono` /
//! `run_mono_into` honest fast path (no boxing, static dispatch), the
//! arena-pooled `run_ring_honest_pooled_into` batch loop, and the
//! `run_with_in`/`TrialCache` attack fast path. Since the packed-token /
//! link-slab engine landed, each protocol additionally runs through an
//! `Engine::new_with_general_links` oracle — the general-topology
//! `VecDeque` link layout — against the default ring `LinkSlab` layout.
//! Every pair must produce *identical* `Execution`s — outcome, per-node
//! outputs, and every counter — for every protocol, ring size and seed.
//! These property tests are the oracle that keeps the fast paths honest.

use fle_attacks::{
    BasicSingleAttack, BasicSingleCache, PhaseGuessAttack, PhaseRushingAttack, PhaseRushingCache,
    PhaseSumAttack, RushingAttack, RushingCache,
};
use fle_core::protocols::{
    run_ring_honest_in, run_ring_honest_pooled_into, ALeadTrialCache, ALeadUni, BasicLead,
    BasicTrialCache, FleProtocol, PhaseAsyncLead, PhaseSumLead, PhaseTrialCache,
};
use fle_core::Coalition;
use proptest::prelude::*;
use ring_sim::{
    default_step_limit, ArenaBacked, Engine, Execution, FifoScheduler, Node, Topology, TrialArena,
};

/// Drives one protocol instance through every engine entry point against
/// the `SimBuilder` reference execution. The engine and the `run_into`
/// out-parameter are reused across paths, so buffer-reuse bugs surface as
/// cross-run contamination.
fn assert_paths_agree<M: 'static, N: Node<M> + ArenaBacked>(
    n: usize,
    wakes: &[usize],
    reference: &Execution,
    engine: &mut Engine<M>,
    mut boxed: impl FnMut() -> Vec<Box<dyn Node<M>>>,
    mut mono: impl FnMut(usize) -> N,
    mut pooled: impl FnMut(usize, &mut TrialArena) -> N,
) {
    let limit = default_step_limit(n);

    let via_run = engine.run(&mut boxed(), wakes, &mut FifoScheduler::new(), limit);
    assert_eq!(&via_run, reference, "Engine::run vs SimBuilder");

    // The out-parameter starts dirty (filled by the previous path) and is
    // reused below — run_into must overwrite it completely each time.
    let mut out = via_run;
    engine.run_into(
        &mut boxed(),
        wakes,
        &mut FifoScheduler::new(),
        limit,
        &mut out,
    );
    assert_eq!(&out, reference, "Engine::run_into vs SimBuilder");

    let mut mono_nodes: Vec<N> = (0..n).map(&mut mono).collect();
    let mut scheduler = FifoScheduler::new();
    let via_mono = engine.run_mono(&mut mono_nodes, wakes, &mut scheduler, limit);
    assert_eq!(&via_mono, reference, "Engine::run_mono vs SimBuilder");

    // Reused scheduler + reused out-parameter: the zero-allocation path.
    let mut mono_nodes: Vec<N> = (0..n).map(&mut mono).collect();
    engine.run_mono_into(&mut mono_nodes, wakes, &mut scheduler, limit, &mut out);
    assert_eq!(&out, reference, "Engine::run_mono_into vs SimBuilder");

    // The arena-pooled batch loop, twice over the same arena and node
    // buffer: the second pass runs entirely on reclaimed stores, so a
    // stale or mis-reset buffer surfaces as a mismatch.
    let mut arena = TrialArena::new();
    let mut nodes_buf: Vec<N> = Vec::new();
    for pass in 0..2 {
        run_ring_honest_pooled_into(
            engine,
            n,
            &mut pooled,
            wakes,
            &mut nodes_buf,
            &mut scheduler,
            &mut arena,
            &mut out,
        );
        assert_eq!(
            &out, reference,
            "run_ring_honest_pooled_into (pass {pass}) vs SimBuilder"
        );
    }

    let via_honest_in = run_ring_honest_in(engine, n, mono, wakes);
    assert_eq!(
        &via_honest_in, reference,
        "run_ring_honest_in vs SimBuilder"
    );
}

/// Runs the same honest instance through every engine storage layout:
/// the fused global-FIFO stream (what `FifoScheduler` rides) on both the
/// ring `LinkSlab` engine and the forced general-topology `VecDeque`
/// engine, plus the *split* token/link path driven by
/// `ring_sim::reference::FifoScheduler` (identical pop order,
/// `is_global_fifo` = false) on both layouts. All four must equal the
/// `SimBuilder` reference. Engines are reused for a second pass so a
/// stale slab cursor or dirty-list bug surfaces as a second-run mismatch.
fn assert_link_layouts_agree<M, N: Node<M> + ArenaBacked>(
    n: usize,
    wakes: &[usize],
    reference: &Execution,
    mut mono: impl FnMut(usize) -> N,
) {
    let limit = default_step_limit(n);
    let mut slab = Engine::new(Topology::ring(n));
    let mut general = Engine::new_with_general_links(Topology::ring(n));
    assert!(slab.uses_ring_slab() && !general.uses_ring_slab());
    for pass in 0..2 {
        let via_slab = run_ring_honest_in(&mut slab, n, &mut mono, wakes);
        assert_eq!(&via_slab, reference, "fused on slab engine (pass {pass})");
        let via_general = run_ring_honest_in(&mut general, n, &mut mono, wakes);
        assert_eq!(
            &via_general, reference,
            "fused on general-links engine (pass {pass})"
        );
        let mut nodes: Vec<N> = (0..n).map(&mut mono).collect();
        let split_slab = slab.run_mono(
            &mut nodes,
            wakes,
            &mut ring_sim::reference::FifoScheduler::new(),
            limit,
        );
        assert_eq!(&split_slab, reference, "split LinkSlab path (pass {pass})");
        let mut nodes: Vec<N> = (0..n).map(&mut mono).collect();
        let split_general = general.run_mono(
            &mut nodes,
            wakes,
            &mut ring_sim::reference::FifoScheduler::new(),
            limit,
        );
        assert_eq!(
            &split_general, reference,
            "split VecDeque-links path (pass {pass})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn basic_lead_paths_agree(seed in any::<u64>(), n in 2usize..24) {
        let p = BasicLead::new(n).with_seed(seed);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
            |id, arena| p.honest_ring_node_in(id, arena),
        );
        assert_link_layouts_agree(n, &p.wakes(), &reference, |id| p.honest_ring_node(id));
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }

    #[test]
    fn a_lead_uni_paths_agree(seed in any::<u64>(), n in 2usize..24) {
        let p = ALeadUni::new(n).with_seed(seed);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
            |id, arena| p.honest_ring_node_in(id, arena),
        );
        assert_link_layouts_agree(n, &p.wakes(), &reference, |id| p.honest_ring_node(id));
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }

    #[test]
    fn phase_async_paths_agree(seed in any::<u64>(), key in any::<u64>(), n in 4usize..24) {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(key);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
            |id, arena| p.honest_ring_node_in(id, arena),
        );
        assert_link_layouts_agree(n, &p.wakes(), &reference, |id| p.honest_ring_node(id));
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }

    #[test]
    fn phase_sum_paths_agree(seed in any::<u64>(), n in 4usize..24) {
        let p = PhaseSumLead::new(n).with_seed(seed);
        let reference = p.run_honest();
        let mut engine = Engine::new(Topology::ring(n));
        assert_paths_agree(
            n,
            &p.wakes(),
            &reference,
            &mut engine,
            || (0..n).map(|id| p.honest_node(id)).collect(),
            |id| p.honest_ring_node(id),
            |id, arena| p.honest_ring_node_in(id, arena),
        );
        assert_link_layouts_agree(n, &p.wakes(), &reference, |id| p.honest_ring_node(id));
        prop_assert_eq!(p.run_honest_in(&mut engine), reference);
    }
}

// ---------------------------------------------------------------------------
// Attack-path differentials: `run_with_in` (cached engine + MixNode) vs
// `SimBuilder::run_with`, for every protocol. The cache is reused across
// two runs per case so cross-trial contamination in the attack fast path
// would surface as a second-run mismatch.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn basic_single_attack_paths_agree(
        seed in any::<u64>(),
        n in 3usize..24,
        adv in 0usize..24,
        w in 0u64..24,
    ) {
        let adv = adv % n;
        let w = w % n as u64;
        let p = BasicLead::new(n).with_seed(seed);
        let attack = BasicSingleAttack::new(adv, w);
        let reference = attack.run(&p).expect("always feasible in range");
        // Boxed mix through the generic cache…
        let mut cache = BasicTrialCache::ring(n);
        for pass in 0..2 {
            let nodes = vec![attack.adversary_node(&p).expect("feasible")];
            let exec = p.run_with_in(nodes, &mut cache);
            prop_assert_eq!(exec, &reference, "boxed pass {}", pass);
        }
        // …and the fully monomorphized single-deviator fast path.
        let mut cache = BasicSingleCache::ring(n);
        for pass in 0..2 {
            let exec = attack.run_in(&p, &mut cache).expect("feasible");
            prop_assert_eq!(exec, &reference, "concrete pass {}", pass);
        }
    }

    #[test]
    fn rushing_attack_paths_agree(seed in any::<u64>(), n in 16usize..26, w in 0u64..16) {
        let p = ALeadUni::new(n).with_seed(seed);
        let coalition = Coalition::equally_spaced(n, 5, 1).expect("valid layout");
        let attack = RushingAttack::new(w);
        prop_assume!(attack.plan(&p, &coalition).is_ok());
        let reference = attack.run(&p, &coalition).expect("planned");
        // Boxed coalition through the generic cache…
        let mut cache = ALeadTrialCache::ring(n);
        for pass in 0..2 {
            let nodes = attack.adversary_nodes(&p, &coalition).expect("planned");
            let exec = p.run_with_in(nodes, &mut cache);
            prop_assert_eq!(exec, &reference, "boxed pass {}", pass);
        }
        // …and the homogeneous coalition fully unboxed (concrete Rusher).
        let mut cache = RushingCache::ring(n);
        for pass in 0..2 {
            let exec = attack.run_in(&p, &coalition, &mut cache).expect("planned");
            prop_assert_eq!(exec, &reference, "unboxed pass {}", pass);
        }
    }

    #[test]
    fn phase_rushing_attack_paths_agree(
        seed in any::<u64>(),
        key in any::<u64>(),
        n in 16usize..26,
        w in 0u64..16,
    ) {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(key);
        let coalition = Coalition::equally_spaced(n, 7, 1).expect("valid layout");
        let attack = PhaseRushingAttack::new(w);
        prop_assume!(attack.plan(&p, &coalition).is_ok());
        let reference = attack.run(&p, &coalition).expect("planned");
        // Boxed coalition through the generic cache…
        let mut cache = PhaseTrialCache::ring(n);
        for pass in 0..2 {
            let nodes = attack.adversary_nodes(&p, &coalition).expect("planned");
            let exec = p.run_with_in(nodes, &mut cache);
            prop_assert_eq!(exec, &reference, "boxed pass {}", pass);
        }
        // …and the homogeneous coalition fully unboxed (concrete
        // PhaseRusher).
        let mut cache = PhaseRushingCache::ring(n);
        for pass in 0..2 {
            let exec = attack.run_in(&p, &coalition, &mut cache).expect("planned");
            prop_assert_eq!(exec, &reference, "unboxed pass {}", pass);
        }
    }

    #[test]
    fn phase_guess_attack_paths_agree(
        seed in any::<u64>(),
        key in any::<u64>(),
        n in 4usize..20,
        pos in 0usize..20,
    ) {
        let pos = 1 + pos % (n - 1);
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(key);
        let attack = PhaseGuessAttack::new(pos);
        let reference = attack.run(&p).expect("valid position");
        let mut cache = PhaseTrialCache::ring(n);
        for pass in 0..2 {
            let exec = attack.run_in(&p, &mut cache).expect("valid position");
            prop_assert_eq!(exec, &reference, "pass {}", pass);
        }
    }

    #[test]
    fn phase_sum_attack_paths_agree(seed in any::<u64>(), n_quarter in 4usize..7, w in 0u64..16) {
        let n = 4 * n_quarter;
        let w = w % n as u64;
        let p = PhaseSumLead::new(n).with_seed(seed);
        let coalition = Coalition::equally_spaced(n, 4, 1).expect("valid layout");
        let attack = PhaseSumAttack::new(w);
        prop_assume!(attack.plan(&p, &coalition).is_ok());
        let reference = {
            let nodes = attack.adversary_nodes(&p, &coalition).expect("planned");
            p.run_with(nodes)
        };
        let mut cache = PhaseTrialCache::ring(n);
        for pass in 0..2 {
            let nodes = attack.adversary_nodes(&p, &coalition).expect("planned");
            let exec = p.run_with_in(nodes, &mut cache);
            prop_assert_eq!(exec, &reference, "pass {}", pass);
        }
    }
}

/// Times the *split* token/link path (non-global-FIFO schedulers) on the
/// ring `LinkSlab` layout vs. the general `VecDeque` layout, for the two
/// non-FIFO schedulers the suite ships. Ignored by default: it is a
/// measurement, not an assertion — run it in release to (re)settle the
/// keep-or-delete question for the slab's non-FIFO branch:
///
/// ```text
/// cargo test --release -p fle-bench --test engine_paths -- \
///     --ignored --nocapture split_path_slab_vs_vecdeque_timing
/// ```
///
/// Recorded 2026-08-08 (PR 7, 1-core container, PhaseAsyncLead n=64,
/// 300 trials/config, two runs): Lifo slab 199–226 µs/trial vs general
/// 219–251 µs/trial (slab ~1.10x faster); Random slab 285–298 µs/trial
/// vs general 293–357 µs/trial (parity to ~1.25x — the scheduler's
/// `swap_remove` dominates). Verdict: keep the slab branch — it never
/// loses on either non-FIFO scheduler, and deleting it would fork the
/// engine's link storage per scheduler for no win.
#[test]
#[ignore = "release-mode timing measurement; run explicitly with --nocapture"]
fn split_path_slab_vs_vecdeque_timing() {
    use ring_sim::{LifoScheduler, RandomScheduler, Scheduler};
    use std::time::Instant;

    let n = 64;
    let trials = 300u64;
    let limit = default_step_limit(n);
    fn time_config<S: Scheduler>(
        label: &str,
        engine: &mut Engine<fle_core::protocols::PhaseMsg>,
        mut scheduler: S,
        n: usize,
        trials: u64,
        limit: u64,
    ) -> std::time::Duration {
        // Warm-up trial so allocations reach steady state before timing.
        for pass in 0..2 {
            let start = Instant::now();
            for seed in 0..trials {
                let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(7);
                let mut nodes: Vec<_> = (0..n).map(|id| p.honest_ring_node(id)).collect();
                let exec = engine.run_mono(&mut nodes, &p.wakes(), &mut scheduler, limit);
                assert!(exec.outcome.elected().is_some(), "{label} seed {seed}");
            }
            if pass == 1 {
                let per = start.elapsed() / trials as u32;
                println!("{label}: {per:?}/trial");
                return start.elapsed();
            }
        }
        unreachable!()
    }

    for layout in ["slab", "general"] {
        let mut engine = if layout == "slab" {
            Engine::new(Topology::ring(n))
        } else {
            Engine::new_with_general_links(Topology::ring(n))
        };
        time_config(
            &format!("lifo/{layout}"),
            &mut engine,
            LifoScheduler::new(),
            n,
            trials,
            limit,
        );
        time_config(
            &format!("random/{layout}"),
            &mut engine,
            RandomScheduler::new(42),
            n,
            trials,
            limit,
        );
    }
}

// ---------------------------------------------------------------------------
// Lockstep-batch differentials: the structure-of-arrays
// `run_honest_batch_into` fast path vs the scalar per-trial engine, for
// every protocol and batch width. Caches are reused across widths and
// seed groups, so cross-group contamination in the SoA state surfaces as
// a later-lane mismatch.

use fle_core::protocols::{ALeadBatchCache, BasicBatchCache, PhaseBatchCache};
use fle_harness::{
    batched_trials, run_sweep_partial, trial_seed, BatchConfig, HonestSweep, ProtocolKind,
    ScheduleSpec, SweepSpec,
};

/// Widths around the interesting boundaries: scalar-equivalent 1, the
/// smallest real batch, a non-power-of-two, the default, and one wider
/// than every ring under test.
const BATCH_WIDTHS: [usize; 5] = [1, 2, 7, 8, 64];

/// Runs `widths`-sized lockstep groups over consecutive derived seeds and
/// asserts every lane equals its scalar reference `Execution` exactly.
fn assert_batch_lanes_match(
    label: &str,
    base: u64,
    widths: &[usize],
    mut batch: impl FnMut(&[u64]) -> Vec<Execution>,
    scalar: impl Fn(u64) -> Execution,
) {
    let mut next = 0u64;
    for &width in widths {
        let seeds: Vec<u64> = (0..width as u64)
            .map(|j| trial_seed(base, next + j))
            .collect();
        next += width as u64;
        let lanes = batch(&seeds);
        assert_eq!(lanes.len(), width, "{label} width {width} filled");
        for (lane, exec) in lanes.iter().enumerate() {
            let reference = scalar(seeds[lane]);
            assert_eq!(
                exec, &reference,
                "{label} width {width} lane {lane} vs scalar"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_vs_scalar_basic(base in any::<u64>(), n in 2usize..24) {
        let p = BasicLead::new(n);
        let mut cache = BasicBatchCache::ring(n);
        assert_batch_lanes_match(
            "basic",
            base,
            &BATCH_WIDTHS,
            |seeds| {
                assert!(p.run_honest_batch_into(seeds, &mut cache), "honest never diverges");
                let mut lanes = vec![Execution::default(); seeds.len()];
                for (lane, out) in lanes.iter_mut().enumerate() {
                    cache.execution_into(lane, out);
                }
                lanes
            },
            |seed| p.clone().with_seed(seed).run_honest(),
        );
    }

    #[test]
    fn batch_vs_scalar_a_lead_uni(base in any::<u64>(), n in 2usize..24) {
        let p = ALeadUni::new(n);
        let mut cache = ALeadBatchCache::ring(n);
        assert_batch_lanes_match(
            "alead",
            base,
            &BATCH_WIDTHS,
            |seeds| {
                assert!(p.run_honest_batch_into(seeds, &mut cache), "honest never diverges");
                let mut lanes = vec![Execution::default(); seeds.len()];
                for (lane, out) in lanes.iter_mut().enumerate() {
                    cache.execution_into(lane, out);
                }
                lanes
            },
            |seed| p.clone().with_seed(seed).run_honest(),
        );
    }

    #[test]
    fn batch_vs_scalar_phase_async(base in any::<u64>(), key in any::<u64>(), n in 4usize..24) {
        let p = PhaseAsyncLead::new(n).with_fn_key(key);
        let mut cache = PhaseBatchCache::ring(n);
        assert_batch_lanes_match(
            "phase",
            base,
            &BATCH_WIDTHS,
            |seeds| {
                assert!(p.run_honest_batch_into(seeds, &mut cache), "honest never diverges");
                let mut lanes = vec![Execution::default(); seeds.len()];
                for (lane, out) in lanes.iter_mut().enumerate() {
                    cache.execution_into(lane, out);
                }
                lanes
            },
            |seed| p.with_seed(seed).run_honest(),
        );
    }

    #[test]
    fn batch_vs_scalar_phase_sum(base in any::<u64>(), n in 4usize..24) {
        let p = PhaseSumLead::new(n);
        let mut cache = PhaseBatchCache::ring(n);
        assert_batch_lanes_match(
            "phasesum",
            base,
            &BATCH_WIDTHS,
            |seeds| {
                assert!(p.run_honest_batch_into(seeds, &mut cache), "honest never diverges");
                let mut lanes = vec![Execution::default(); seeds.len()];
                for (lane, out) in lanes.iter_mut().enumerate() {
                    cache.execution_into(lane, out);
                }
                lanes
            },
            |seed| p.with_seed(seed).run_honest(),
        );
    }

    /// Arbitrary sub-ranges of the trial index space, batched vs scalar
    /// through the real sweep dispatch: the mid-chunk-resume shape. Ranges
    /// deliberately do not align to the batch width, so every case
    /// exercises the group realignment and the scalar ragged tail.
    #[test]
    fn batched_partial_matches_scalar_over_arbitrary_ranges(
        start in 0u64..40,
        len in 0u64..40,
        width in 1usize..12,
        threads in 1usize..4,
    ) {
        let spec = |batch_width| {
            SweepSpec::Honest(HonestSweep {
                protocol: ProtocolKind::PhaseAsyncLead,
                n: 8,
                fn_key: 9,
                batch: BatchConfig {
                    trials: 80,
                    base_seed: 1,
                    threads,
                },
                batch_width,
                schedule: ScheduleSpec::Fifo,
                fault: None,
            })
        };
        let batched = run_sweep_partial(&spec(width), start, start + len).expect("valid range");
        let scalar = run_sweep_partial(&spec(1), start, start + len).expect("valid range");
        prop_assert_eq!(batched, scalar);
    }
}

/// A full batched sweep must serialize byte-identically to the scalar
/// sweep — for every protocol, at a width (7) that leaves a ragged tail —
/// and the lockstep path must actually have run (not silently fallen back
/// to scalar).
#[test]
fn batched_sweeps_match_scalar_sweeps_bytewise() {
    let spec = |protocol, batch_width| {
        SweepSpec::Honest(HonestSweep {
            protocol,
            n: 9,
            fn_key: 4,
            batch: BatchConfig {
                trials: 61,
                base_seed: 3,
                threads: 1,
            },
            batch_width,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        })
    };
    for protocol in [
        ProtocolKind::BasicLead,
        ProtocolKind::ALeadUni,
        ProtocolKind::PhaseAsyncLead,
        ProtocolKind::PhaseSumLead,
    ] {
        let before = batched_trials();
        let batched = fle_harness::run_sweep(&spec(protocol, 7)).expect("valid spec");
        assert!(
            batched_trials() >= before + 56,
            "{protocol:?}: lockstep path did not run"
        );
        let scalar = fle_harness::run_sweep(&spec(protocol, 1)).expect("valid spec");
        assert_eq!(batched.to_json(), scalar.to_json(), "{protocol:?}");
    }
}

/// The batched sweep's JSON is invariant under the worker thread count,
/// exactly like the scalar path (batch groups realign to each worker's
/// chunk, so the merged report cannot depend on the split).
#[test]
fn batched_sweep_json_is_thread_invariant() {
    let spec = |threads| {
        SweepSpec::Honest(HonestSweep {
            protocol: ProtocolKind::PhaseAsyncLead,
            n: 8,
            fn_key: 9,
            batch: BatchConfig {
                trials: 100,
                base_seed: 1,
                threads,
            },
            batch_width: 8,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        })
    };
    let one = fle_harness::run_sweep(&spec(1))
        .expect("valid spec")
        .to_json();
    for threads in [2, 8] {
        let multi = fle_harness::run_sweep(&spec(threads)).expect("valid spec");
        assert_eq!(multi.to_json(), one, "threads {threads}");
    }
}

/// One engine serving many seeds back to back (the sweep worker's actual
/// life) must match per-seed fresh references throughout.
#[test]
fn engine_reuse_across_seeds_matches_fresh_runs() {
    let n = 9;
    let mut engine = Engine::new(Topology::ring(n));
    for seed in 0..40u64 {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(7);
        assert_eq!(p.run_honest_in(&mut engine), p.run_honest(), "seed {seed}");
    }
}
