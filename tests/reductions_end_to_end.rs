//! Section 8 end-to-end: coin tosses built from real protocol executions
//! and elections built from real coins, under honest play and under
//! attack, with the bias bounds of Theorem 8.1 checked on measurements.

use fle_attacks::{BasicSingleAttack, RushingAttack};
use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol};
use fle_core::reductions::{
    coin_bias_from_fle, coin_outcome_of_fle, elect_from_coins, fle_prob_bound_from_coin,
    CoinFromFle,
};
use fle_core::Coalition;
use ring_sim::Outcome;

#[test]
fn honest_fle_gives_a_fair_coin() {
    let trials = 3000u64;
    let mut ones = 0;
    for seed in 0..trials {
        let coin = CoinFromFle::new(ALeadUni::new(16).with_seed(seed));
        if coin.toss() == Outcome::Elected(1) {
            ones += 1;
        }
    }
    let bias = (ones as f64 / trials as f64 - 0.5).abs();
    assert!(bias < 0.03, "measured bias {bias}");
}

#[test]
fn attacked_fle_gives_a_dictated_coin() {
    // The Claim B.1 adversary picks the leader, hence the coin: forcing
    // an odd leader makes the coin constantly 1.
    let n = 16;
    for seed in 0..50 {
        let p = BasicLead::new(n).with_seed(seed);
        let exec = BasicSingleAttack::new(3, 9).run(&p).unwrap();
        assert_eq!(coin_outcome_of_fle(exec.outcome), Outcome::Elected(1));
    }
}

#[test]
fn rushing_attack_dictates_the_derived_coin_on_a_lead_uni() {
    let n = 64;
    let coalition = Coalition::equally_spaced(n, 8, 1).unwrap();
    for seed in 0..20 {
        let p = ALeadUni::new(n).with_seed(seed);
        // Forcing an even leader forces coin = 0.
        let exec = RushingAttack::new(42).run(&p, &coalition).unwrap();
        assert_eq!(coin_outcome_of_fle(exec.outcome), Outcome::Elected(0));
    }
}

#[test]
fn election_from_honest_coins_is_fair() {
    let bits = 3;
    let n = 1usize << bits;
    let trials = 2400u64;
    let mut counts = vec![0u64; n];
    for seed in 0..trials {
        let outcome = elect_from_coins(bits, |i| {
            let fle = ALeadUni::new(8).with_seed(seed * 31 + i as u64);
            coin_outcome_of_fle(fle.run_honest().outcome)
        });
        counts[outcome.elected().unwrap() as usize] += 1;
    }
    let expect = trials as f64 / n as f64;
    for &c in &counts {
        assert!((c as f64 - expect).abs() < expect * 0.3, "{counts:?}");
    }
}

#[test]
fn election_from_a_dictated_coin_is_a_dictated_election() {
    // All three coins forced to 1 elect leader 0b111 = 7 always — the
    // worst case of the (1/2 + eps)^log(n) bound with eps = 1/2.
    let bits = 3;
    for seed in 0..20 {
        let outcome = elect_from_coins(bits, |i| {
            let p = BasicLead::new(8).with_seed(seed * 3 + i as u64);
            let exec = BasicSingleAttack::new(2, 1).run(&p).unwrap();
            coin_outcome_of_fle(exec.outcome)
        });
        assert_eq!(outcome, Outcome::Elected(7));
    }
    assert!((fle_prob_bound_from_coin(0.5, 8) - 1.0).abs() < 1e-12);
}

#[test]
fn failure_propagates_through_both_reductions() {
    // A failing FLE trial fails the coin; a failing coin fails the
    // election — solution preference survives composition.
    let fail = Outcome::Fail(ring_sim::FailReason::Abort);
    assert_eq!(coin_outcome_of_fle(fail), fail);
    let out = elect_from_coins(3, |i| if i == 2 { fail } else { Outcome::Elected(0) });
    assert_eq!(out, fail);
}

#[test]
fn theorem_8_1_bound_is_tight_for_indicator_bias() {
    // eps-unbiased FLE -> (n*eps/2)-unbiased coin: with n = 4 and a
    // +eps boost concentrated on one odd leader, the coin's measured
    // bias approaches n*eps/2... here we check the formula's shape.
    assert!(coin_bias_from_fle(0.0, 10) == 0.0);
    assert!(coin_bias_from_fle(0.1, 10) == 0.5);
    assert!(fle_prob_bound_from_coin(0.0, 16) == 0.0625);
}
