//! Exhaustive small-`n` schedule checking — a tiny model checker for the
//! paper's Section 2 claim that on a unidirectional ring the outcome of an
//! honest execution is independent of the oblivious message schedule.
//!
//! [`ring_sim::for_each_schedule`] enumerates *every* oblivious token
//! interleaving by depth-first search over
//! [`ring_sim::EnumerativeScheduler`] choice points (pending tokens for
//! the same link collapse — popping either delivers the same front
//! message, so the pruning loses no distinct execution). For each
//! schedule we run the full honest protocol and assert the execution
//! elects exactly one leader — and the *same* leader in every
//! interleaving. This backs the [`ring_sim::Scheduler`] trait's
//! eventual-delivery contract with an enumeration instead of sampling.

use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead};
use ring_sim::{for_each_schedule, FailReason, Node, Outcome, SimBuilder, Topology};

/// Tally of one exhaustive sweep.
struct SweepTally {
    schedules: u64,
    /// `leaders[v]` = schedules that unanimously elected `v`.
    leaders: Vec<u64>,
    /// Schedules that failed closed (abort or deadlock).
    failed: u64,
}

/// Runs every oblivious schedule of an honest ring protocol instance and
/// asserts the core safety invariant of the outcome function: a schedule
/// either elects a single leader in `[0, n)` unanimously or fails closed
/// (abort / deadlock) — no schedule ever produces disagreement or runs
/// away into the step limit.
fn exhaust_and_check<M: 'static>(
    n: usize,
    honest: impl Fn(usize) -> Box<dyn Node<M>>,
    wakes: &[usize],
    reference: Outcome,
    max_schedules: u64,
    label: &str,
) -> SweepTally {
    let leader = reference
        .elected()
        .unwrap_or_else(|| panic!("{label}: honest reference run failed"));
    assert!(leader < n as u64, "{label}: leader out of range");
    let mut tally = SweepTally {
        schedules: 0,
        leaders: vec![0; n],
        failed: 0,
    };
    let sweep = for_each_schedule(max_schedules, |sched| {
        let mut b = SimBuilder::new(Topology::ring(n));
        for i in 0..n {
            b = b.boxed_node(i, honest(i));
        }
        for &w in wakes {
            b = b.wake(w);
        }
        match b.scheduler(sched).run().outcome {
            Outcome::Elected(v) if (v as usize) < n => tally.leaders[v as usize] += 1,
            Outcome::Fail(FailReason::Abort) | Outcome::Fail(FailReason::Deadlock) => {
                tally.failed += 1
            }
            out => panic!(
                "{label}: schedule {} produced {out:?} (reference {reference:?})",
                tally.schedules
            ),
        }
        tally.schedules += 1;
    });
    assert!(
        !sweep.truncated,
        "{label}: enumeration truncated at {} schedules — raise the limit",
        sweep.schedules
    );
    assert!(
        tally.leaders[leader as usize] >= 1,
        "{label}: no schedule reproduced the reference election"
    );
    tally
}

/// The strong form for origin-wake protocols (the paper's Section 2
/// observation): *every* schedule elects the same single leader.
fn assert_all_schedules_elect<M: 'static>(
    n: usize,
    honest: impl Fn(usize) -> Box<dyn Node<M>>,
    wakes: &[usize],
    reference: Outcome,
    max_schedules: u64,
    label: &str,
) -> u64 {
    let tally = exhaust_and_check(n, honest, wakes, reference, max_schedules, label);
    assert_eq!(
        tally.failed, 0,
        "{label}: {} of {} schedules failed instead of electing",
        tally.failed, tally.schedules
    );
    let reference = reference.elected().expect("checked") as usize;
    for (v, &count) in tally.leaders.iter().enumerate() {
        if v != reference {
            assert_eq!(
                count, 0,
                "{label}: {count} schedules elected {v} instead of {reference}"
            );
        }
    }
    tally.schedules
}

#[test]
fn basic_lead_schedules_elect_unanimously_or_fail_closed() {
    // All n processors wake concurrently, so the schedule space is the
    // full interleaving of n wake-ups with n² deliveries — the largest
    // space per n in this suite.
    //
    // Model-checker findings (kept as regressions): Basic-LEAD is *not*
    // schedule-independent once wake-ups interleave obliviously with
    // deliveries. A processor that receives its predecessor's value
    // before its own spontaneous wake-up forwards it early and counts it
    // against the wrong round; most such races are caught by the
    // full-circle validation and fail closed (abort / deadlock), but at
    // n ≥ 3 colliding data values can slip through validation and elect
    // a *different* leader than the all-wakes-first reference schedule.
    // Either way every schedule satisfies the outcome function's safety
    // contract — one unanimous leader or FAIL — which is what this test
    // pins. The recorded experiment tables are unaffected: the default
    // FIFO schedule pops all wake-ups before any delivery.
    let mut wake_races_failed = 0u64;
    let mut divergent_elections = 0u64;
    // Measured space sizes (structural, data-value independent): 18
    // schedules at n = 2, 14_313 at n = 3. The limits leave headroom but
    // keep a runaway enumeration from hanging the suite.
    for (n, max) in [(2usize, 1_000), (3, 50_000)] {
        for seed in 0..3 {
            let p = BasicLead::new(n).with_seed(seed);
            let reference = p.run_honest().outcome;
            let tally = exhaust_and_check(
                n,
                |id| p.honest_node(id),
                &p.wakes(),
                reference,
                max,
                &format!("Basic-LEAD n={n} seed={seed}"),
            );
            let reference = reference.elected().expect("honest") as usize;
            let divergent: u64 = tally
                .leaders
                .iter()
                .enumerate()
                .filter(|&(v, _)| v != reference)
                .map(|(_, &c)| c)
                .sum();
            println!(
                "Basic-LEAD n={n} seed={seed}: {} schedules ({} elected ref, {divergent} elected other, {} failed closed)",
                tally.schedules, tally.leaders[reference], tally.failed
            );
            wake_races_failed += tally.failed;
            divergent_elections += divergent;
        }
    }
    assert!(
        wake_races_failed > 0,
        "expected wake-race failures; did engine wake semantics change?"
    );
    assert!(
        divergent_elections > 0,
        "expected schedule-dependent elections at n=3; did engine wake semantics change?"
    );
}

#[test]
fn a_lead_uni_all_schedules_elect_one_leader() {
    // A-LEADuni is a single-token wave: only the origin wakes, and every
    // delivery triggers exactly one send, so at most one token is ever
    // pending and the schedule space has exactly *one* element per
    // instance. The enumeration proves that — the strongest possible form
    // of schedule independence — rather than assuming it.
    for (n, max) in [(2, 1_000), (3, 1_000), (4, 1_000)] {
        for seed in 0..3 {
            let p = ALeadUni::new(n).with_seed(seed);
            let count = assert_all_schedules_elect(
                n,
                |id| p.honest_node(id),
                &p.wakes(),
                p.run_honest().outcome,
                max,
                &format!("A-LEADuni n={n} seed={seed}"),
            );
            println!("A-LEADuni n={n} seed={seed}: {count} schedules");
        }
    }
}

#[test]
fn phase_async_lead_all_schedules_elect_one_leader() {
    let n = 4;
    for seed in 0..2 {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(9);
        // Measured space size: 280 schedules (the data wave and the
        // validation wave of adjacent rounds overlap by a few tokens).
        let count = assert_all_schedules_elect(
            n,
            |id| p.honest_node(id),
            &p.wakes(),
            p.run_honest().outcome,
            10_000,
            &format!("PhaseAsyncLead n={n} seed={seed}"),
        );
        println!("PhaseAsyncLead n={n} seed={seed}: {count} schedules");
    }
}
