//! Cross-model integration tests for the Section 1.1 related-work
//! substrates: the fully-connected Shamir election, the synchronous ring,
//! and the full-information protocols — checking that the *relative*
//! resilience landscape the paper sketches holds across our
//! implementations.

use fle_core::protocols::{FleProtocol, SyncRingLead, SyncRingWaiter};
use fle_fullinfo::{coalition_power, BatonGame, LightestBin, Majority, Parity};
use fle_secretshare::{run_fc_attack, ALeadFc};

#[test]
fn resilience_landscape_orders_as_the_paper_says() {
    // At matched n and k = ceil(n/2) - 1: the fully-connected Shamir
    // election resists, while the asynchronous ring protocols have long
    // fallen (their thresholds are O(sqrt n)); the synchronous ring
    // resists even n - 1.
    let n = 8usize;
    let k = n.div_ceil(2) - 1;
    let coalition: Vec<usize> = (0..k).collect();
    let target = 1u64;
    let mut fc_forced = 0;
    let trials = 30u64;
    for seed in 0..trials {
        let p = ALeadFc::new(n).with_seed(seed);
        if run_fc_attack(&p, &coalition, target).outcome.elected() == Some(target) {
            fc_forced += 1;
        }
    }
    assert!(
        fc_forced < trials / 2,
        "A-LEADfc fell below its threshold: {fc_forced}/{trials}"
    );
}

#[test]
fn synchronous_ring_detects_waiting_at_every_position() {
    let n = 10;
    for pos in 0..n {
        let p = SyncRingLead::new(n).with_seed(3);
        let exec = p.run_with(vec![(pos, Box::new(SyncRingWaiter))]);
        assert!(exec.outcome.is_fail(), "waiter at {pos} undetected");
    }
}

#[test]
fn full_information_hierarchy_parity_majority_baton() {
    // One player: parity falls, majority barely moves, baton gives zero.
    let parity = coalition_power(&Parity::new(9), 1);
    let majority = coalition_power(&Majority::new(9), 1);
    let baton = BatonGame::new(9, 1);
    assert!(parity.bias() > 0.49);
    assert!(majority.bias() < 0.2);
    assert!(baton.bias().abs() < 1e-9);
    // The ordering: baton <= majority <= parity.
    assert!(baton.bias() <= majority.bias() + 1e-12);
    assert!(majority.bias() <= parity.bias() + 1e-12);
}

#[test]
fn lightest_bin_and_baton_both_fall_to_majority_coalitions() {
    let n = 16;
    let k = 12;
    let baton = BatonGame::new(n, k).corrupt_leader_probability();
    let bin = LightestBin::new(n, k).corrupt_leader_rate(5, 300);
    assert!(baton > 0.85, "baton {baton}");
    assert!(bin > 0.65, "bin {bin}");
    // And the plain bin protocol is the weaker of the two at moderate
    // fractions — the measured gap the linear-resilience constructions
    // exist to close.
    let baton_mid = BatonGame::new(32, 8).corrupt_leader_probability();
    let bin_mid = LightestBin::new(32, 8).corrupt_leader_rate(5, 300);
    assert!(bin_mid > baton_mid, "bin {bin_mid} vs baton {baton_mid}");
}

#[test]
fn shamir_election_message_complexity_is_cubic() {
    // The paper's ring protocols are Theta(n^2) messages; the
    // fully-connected reveal phase pays Theta(n^3) — the price of the
    // stronger resilience.
    for n in [4usize, 6, 8] {
        let exec = ALeadFc::new(n).with_seed(1).run_honest();
        let n64 = n as u64;
        assert_eq!(
            exec.stats.total_sent(),
            n64 * (n64 - 1) + n64 * (n64 - 1) + n64 * n64 * (n64 - 1),
            "n = {n}"
        );
    }
}

#[test]
fn fc_and_sync_ring_honest_outcomes_are_uniformish() {
    let n = 6usize;
    let trials = 360u64;
    let mut fc_counts = vec![0u32; n];
    let mut ring_counts = vec![0u32; n];
    for seed in 0..trials {
        let w = ALeadFc::new(n)
            .with_seed(seed)
            .run_honest()
            .outcome
            .elected()
            .expect("honest");
        fc_counts[w as usize] += 1;
        let w = SyncRingLead::new(n)
            .with_seed(seed)
            .run_honest()
            .outcome
            .elected()
            .expect("honest");
        ring_counts[w as usize] += 1;
    }
    let expect = trials as f64 / n as f64;
    for counts in [&fc_counts, &ring_counts] {
        for &c in counts.iter() {
            assert!((c as f64 - expect).abs() < expect * 0.45, "{counts:?}");
        }
    }
}
