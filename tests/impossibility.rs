//! Section 7 / Appendix F end-to-end: k-simulated trees, the two-party
//! dichotomy, Claim F.5, and the dictating tree coalition.

use fle_topology::tree_fle::{theorem_7_2_demo, TreeSumFle};
use fle_topology::two_party::{assures, dichotomy, AlternatingProtocol, Party, Verdict};
use fle_topology::{figure2_graph, Graph, TreePartition};

#[test]
fn figure2_coalition_of_4_dictates_a_16_node_graph() {
    let (g, partition) = figure2_graph();
    assert_eq!(partition.k(), 4);
    let fle = TreeSumFle::new(&g, &partition, 99);
    assert_eq!(fle.dictator_coalition().len(), 4);
    for w in 0..16 {
        assert_eq!(fle.run_with_dictator(w).outcome.elected(), Some(w));
    }
}

#[test]
fn every_connected_graph_is_half_n_simulated() {
    for (name, g) in [
        ("path", Graph::path(15)),
        ("cycle", Graph::cycle(14)),
        ("complete", Graph::complete(11)),
        ("grid", Graph::grid(4, 5)),
        ("random", Graph::random_connected(21, 0.15, 8)),
        ("tree", Graph::random_tree(18, 2)),
    ] {
        let p = TreePartition::claim_f5(&g);
        assert!(p.k() <= g.len().div_ceil(2), "{name}: k={}", p.k());
        let (k, outcome) = theorem_7_2_demo(&g, 7, 1);
        assert!(k <= g.len().div_ceil(2), "{name}");
        assert_eq!(outcome.elected(), Some(1), "{name}");
    }
}

#[test]
fn lemma_f2_dichotomy_verified_over_random_protocol_space() {
    let mut favourable = 0;
    let mut dictators = 0;
    for seed in 0..120 {
        let p = AlternatingProtocol::random(seed, 4, 2, 3);
        match dichotomy(&p) {
            Verdict::Favourable { bit, by_a, by_b } => {
                favourable += 1;
                for input in 0..3 {
                    assert_eq!(p.run_against(Party::A, &by_a, input), bit);
                    assert_eq!(p.run_against(Party::B, &by_b, input), bit);
                }
            }
            Verdict::Dictator {
                party,
                force_0,
                force_1,
            } => {
                dictators += 1;
                for input in 0..3 {
                    assert_eq!(p.run_against(party, &force_0, input), 0);
                    assert_eq!(p.run_against(party, &force_1, input), 1);
                }
            }
        }
    }
    assert!(favourable > 0 && dictators > 0, "{favourable}/{dictators}");
}

#[test]
fn no_two_party_coin_toss_resists_both_parties() {
    // Theorem 7.2 specialized: a fair two-party coin toss would need BOTH
    // "A cannot assure any bit" and "B cannot assure any bit"; the
    // dichotomy makes that impossible. Verify directly on a sample.
    for seed in 0..30 {
        let p = AlternatingProtocol::random(seed, 4, 2, 4);
        let a_powerless = assures(&p, Party::A, 0).is_none() && assures(&p, Party::A, 1).is_none();
        let b_powerless = assures(&p, Party::B, 0).is_none() && assures(&p, Party::B, 1).is_none();
        // If A can bias nothing, B must be able to force at least one
        // outcome (and vice versa): a 1-resilient fair coin toss cannot
        // exist in this model.
        assert!(
            !(a_powerless && b_powerless),
            "seed={seed}: a perfectly resilient protocol appeared"
        );
    }
}

#[test]
fn deeper_trees_still_have_a_dictating_part() {
    // A three-level caterpillar of triangles: parts of size 3 simulate it.
    let mut g = Graph::new(12);
    for c in 0..4 {
        let b = 3 * c;
        g.add_edge(b, b + 1);
        g.add_edge(b + 1, b + 2);
        g.add_edge(b, b + 2);
    }
    g.add_edge(2, 3);
    g.add_edge(5, 6);
    g.add_edge(8, 9);
    let parts = (0..4).map(|c| vec![3 * c, 3 * c + 1, 3 * c + 2]).collect();
    let partition = TreePartition::new(&g, parts).unwrap();
    assert_eq!(partition.k(), 3);
    let fle = TreeSumFle::new(&g, &partition, 5);
    for w in [0u64, 6, 11] {
        assert_eq!(fle.run_with_dictator(w).outcome.elected(), Some(w));
    }
}

#[test]
fn honest_tree_fle_is_fair_across_seeds() {
    let (g, partition) = figure2_graph();
    let mut counts = vec![0u32; 16];
    let trials = 1600;
    for seed in 0..trials {
        let fle = TreeSumFle::new(&g, &partition, seed);
        counts[fle.run_honest().outcome.elected().unwrap() as usize] += 1;
    }
    let expect = trials as f64 / 16.0;
    for &c in &counts {
        assert!((c as f64 - expect).abs() < expect * 0.35, "{counts:?}");
    }
}
