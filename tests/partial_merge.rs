//! Property-based tests of the crash-safe partial-report algebra.
//!
//! The resilience layer's contract is *byte-identity*: however a sweep's
//! trial range is split — shards, checkpoint chunks, thread counts — the
//! merged [`ReportPartial`] must [`finish`](ReportPartial::finish) to the
//! exact JSON of the monolithic run, and `merge` must be associative so
//! the fold order never matters. These properties are what make
//! `fle_lab sweep --shard I/K` + `merge-reports` and checkpoint/resume
//! sound; this suite searches for counterexamples instead of trusting
//! three hand-picked split points.

use fle_harness::{
    run_sweep, run_sweep_partial, AttackSweep, BatchConfig, CoalitionSpec, FnKeySpec, HonestSweep,
    ProtocolKind, ReportPartial, ScheduleSpec, SeedMode, SweepSpec, TargetSpec,
};
use proptest::prelude::*;

const TRIALS: u64 = 48;

/// A small honest sweep — cheap enough for many proptest cases in debug.
fn honest_spec(threads: usize) -> SweepSpec {
    SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 8,
        fn_key: 9,
        batch: BatchConfig {
            trials: TRIALS,
            base_seed: 1,
            threads,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

/// A small adversarial sweep (the Theorem 4.2 rushing cell).
fn attack_spec(threads: usize) -> SweepSpec {
    SweepSpec::Attack(AttackSweep {
        attack: fle_attacks::AttackKind::Rushing,
        n: 16,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials: TRIALS,
            base_seed: 1,
            threads,
        },
        coalition: CoalitionSpec::EquallySpaced { k: 4, offset: 1 },
        target: TargetSpec::Fixed(3),
        seed_mode: SeedMode::Derived,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

/// Splits `0..TRIALS` at the (sorted) cut points and runs each segment as
/// its own partial, then merges them back *last to first* so the fold
/// also exercises out-of-order merging. Empty segments are kept — merging
/// an empty partial must be a no-op, not an error.
fn run_split(spec: &SweepSpec, cuts: &mut [u64]) -> ReportPartial {
    cuts.sort_unstable();
    let mut bounds = vec![0u64];
    bounds.extend_from_slice(cuts);
    bounds.push(TRIALS);
    let parts: Vec<ReportPartial> = bounds
        .windows(2)
        .map(|w| run_sweep_partial(spec, w[0], w[1]).expect("valid range"))
        .collect();
    let mut merged = parts.last().expect("at least one segment").clone();
    for part in parts.iter().rev().skip(1) {
        merged.merge(part).expect("disjoint segments");
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any split of an honest sweep's range, at any thread count, merges
    /// and finishes to the monolithic run's exact bytes.
    #[test]
    fn honest_any_split_finishes_byte_identical(
        a in 0..TRIALS + 1,
        b in 0..TRIALS + 1,
        threads_idx in 0usize..3,
    ) {
        let threads = [1, 2, 8][threads_idx];
        let spec = honest_spec(threads);
        let monolithic = run_sweep(&spec).expect("valid spec");
        let merged = run_split(&spec, &mut [a, b]);
        let report = merged.finish().expect("full coverage");
        prop_assert_eq!(report.to_json(), monolithic.to_json());
        prop_assert_eq!(report.to_csv(), monolithic.to_csv());
    }

    /// The same byte-identity for attack sweeps (success/infeasible
    /// bookkeeping and the Wilson-CI arm included).
    #[test]
    fn attack_any_split_finishes_byte_identical(
        a in 0..TRIALS + 1,
        b in 0..TRIALS + 1,
        threads_idx in 0usize..3,
    ) {
        let threads = [1, 2, 8][threads_idx];
        let spec = attack_spec(threads);
        let monolithic = run_sweep(&spec).expect("valid spec");
        let merged = run_split(&spec, &mut [a, b]);
        let report = merged.finish().expect("full coverage");
        prop_assert_eq!(report.to_json(), monolithic.to_json());
        prop_assert_eq!(report.to_csv(), monolithic.to_csv());
    }

    /// `merge` is associative: `(a + b) + c == a + (b + c)` for any three
    /// disjoint segments — so shard files can be folded in any grouping.
    #[test]
    fn merge_is_associative(a in 0..TRIALS + 1, b in 0..TRIALS + 1) {
        let spec = honest_spec(1);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pa = run_sweep_partial(&spec, 0, lo).expect("valid range");
        let pb = run_sweep_partial(&spec, lo, hi).expect("valid range");
        let pc = run_sweep_partial(&spec, hi, TRIALS).expect("valid range");

        let mut left = pa.clone();
        left.merge(&pb).expect("disjoint");
        left.merge(&pc).expect("disjoint");

        let mut bc = pb.clone();
        bc.merge(&pc).expect("disjoint");
        let mut right = pa.clone();
        right.merge(&bc).expect("disjoint");

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.to_json(), right.to_json());
    }

    /// Proportional `I/K` sharding (what `fle_lab sweep --shard` uses)
    /// reassembles exactly for any shard count, shards merged in rotated
    /// order.
    #[test]
    fn any_shard_count_reassembles(k in 1u64..9, rot in 0usize..8, attack in any::<bool>()) {
        let spec = if attack { attack_spec(1) } else { honest_spec(1) };
        let monolithic = run_sweep(&spec).expect("valid spec");
        let parts: Vec<ReportPartial> = (0..k)
            .map(|i| {
                let lo = (i as u128 * TRIALS as u128 / k as u128) as u64;
                let hi = ((i + 1) as u128 * TRIALS as u128 / k as u128) as u64;
                run_sweep_partial(&spec, lo, hi).expect("valid range")
            })
            .collect();
        let rot = rot % parts.len();
        let mut merged = parts[rot].clone();
        for i in 1..parts.len() {
            merged.merge(&parts[(rot + i) % parts.len()]).expect("disjoint shards");
        }
        let report = merged.finish().expect("full coverage");
        prop_assert_eq!(report.to_json(), monolithic.to_json());
    }

    /// Shard partials survive their JSON wire format: parse ∘ serialize
    /// is the identity, and merging *parsed* shards still reassembles the
    /// monolithic bytes — exactly the `merge-reports` code path.
    #[test]
    fn shard_json_round_trip_preserves_merge(cut in 0..TRIALS + 1, attack in any::<bool>()) {
        let spec = if attack { attack_spec(1) } else { honest_spec(1) };
        let monolithic = run_sweep(&spec).expect("valid spec");
        let left = run_sweep_partial(&spec, 0, cut).expect("valid range");
        let right = run_sweep_partial(&spec, cut, TRIALS).expect("valid range");
        let mut parsed_left = ReportPartial::parse_json(&left.to_json()).expect("round trip");
        let parsed_right = ReportPartial::parse_json(&right.to_json()).expect("round trip");
        prop_assert_eq!(&parsed_left, &left);
        prop_assert_eq!(&parsed_right, &right);
        parsed_left.merge(&parsed_right).expect("disjoint shards");
        let report = parsed_left.finish().expect("full coverage");
        prop_assert_eq!(report.to_json(), monolithic.to_json());
    }
}
