//! Integration tests for the Appendix H unknown-ids model: `WakeLead`
//! end-to-end, the id-lie utility argument, and the masking attack's
//! interplay with the Lemma 4.1 feasibility boundary.

use fle_attacks::{RushingAttack, WakeupIdLieAttack, WakeupMaskAttack};
use fle_core::protocols::{ALeadUni, FleProtocol, WakeLead};
use fle_core::Coalition;

#[test]
fn wake_lead_and_a_lead_uni_agree_on_the_winning_position() {
    // With the same seed, WakeLead's election phase is A-LEADuni shifted
    // to the believed origin: the winning *position* offset matches the
    // data-sum arithmetic of both protocols.
    for seed in 0..10 {
        let n = 7;
        let wake = WakeLead::new(n).with_seed(seed);
        let winner_id = wake.run_honest().outcome.elected().expect("honest");
        let winner_pos = wake
            .ids()
            .iter()
            .position(|&id| id == winner_id)
            .expect("winner is a member");
        let origin_pos = (0..n).min_by_key(|&i| wake.ids()[i]).expect("nonempty");
        let sum: u64 = wake.honest_values().iter().sum::<u64>() % n as u64;
        assert_eq!(winner_pos, (origin_pos + sum as usize) % n, "seed {seed}");
    }
}

#[test]
fn id_lie_utility_converges_to_k_over_n_across_layouts() {
    // The Appendix H utility argument is layout-independent: scattered or
    // consecutive liars reach the same E[u0] = k/n.
    let n = 10;
    let trials = 300u64;
    for positions in [vec![0, 5], vec![3, 4]] {
        let coalition = Coalition::new(n, positions.clone()).expect("valid");
        let mut ghosts = 0u32;
        for seed in 0..trials {
            let protocol = WakeLead::new(n).with_seed(seed);
            let exec = WakeupIdLieAttack::new()
                .run(&protocol, &coalition)
                .expect("always feasible");
            if WakeupIdLieAttack::is_ghost(exec.outcome.elected().expect("succeeds")) {
                ghosts += 1;
            }
        }
        let rate = ghosts as f64 / trials as f64;
        assert!(
            (rate - 0.2).abs() < 0.08,
            "positions {positions:?}: ghost rate {rate}"
        );
    }
}

#[test]
fn mask_attack_and_rushing_share_the_same_feasibility_boundary() {
    // The masking attack needs exactly the Lemma 4.1 layout that the
    // known-ids rushing attack needs.
    let n = 36;
    for k in [3usize, 4, 5, 6, 7] {
        let coalition = Coalition::equally_spaced(n, k, 1).expect("valid");
        let wake = WakeLead::new(n).with_seed(1);
        let known = ALeadUni::new(n).with_seed(1);
        let mask_feasible = WakeupMaskAttack::new(0).plan(&wake, &coalition).is_ok();
        let rush_feasible = RushingAttack::new(0).plan(&known, &coalition).is_ok();
        assert_eq!(mask_feasible, rush_feasible, "k = {k}");
    }
}

#[test]
fn mask_attack_elects_a_ghost_everywhere_it_is_feasible() {
    let n = 25;
    let coalition = Coalition::equally_spaced(n, 5, 2).expect("valid");
    for seed in 0..8 {
        let protocol = WakeLead::new(n).with_seed(seed);
        let attack = WakeupMaskAttack::new(seed as usize % 5);
        let plan = attack.plan(&protocol, &coalition).expect("feasible");
        let exec = attack.run(&protocol, &coalition).expect("feasible");
        assert_eq!(exec.outcome.elected(), Some(plan.target_id), "seed {seed}");
        assert!(WakeupIdLieAttack::is_ghost(plan.target_id));
        // Per-segment origins: one per non-empty segment, all honest.
        assert_eq!(plan.segment_origins.len(), 5);
        for &(_, origin, _) in &plan.segment_origins {
            assert!(!coalition.contains(origin));
        }
    }
}

#[test]
fn honest_wake_lead_never_elects_a_ghost() {
    for seed in 0..30 {
        let protocol = WakeLead::new(9).with_seed(seed);
        let winner = protocol.run_honest().outcome.elected().expect("honest");
        assert!(!WakeupIdLieAttack::is_ghost(winner));
        assert!(protocol.ids().contains(&winner));
    }
}
