//! Failure injection: corrupted forwarding, parity violations, silent
//! drops, premature termination. The solution-preference contract demands
//! that every such deviation yields `FAIL` (or the honest outcome) —
//! never a biased valid election.

use fle_core::protocols::{ALeadUni, FleProtocol, PhaseAsyncLead, PhaseMsg};
use fle_core::{Coalition, NodeId};
use ring_sim::{Ctx, Node, Outcome};

/// Forwards like an honest pipe but corrupts the `at`-th message by `+1`.
struct Corruptor {
    n: u64,
    at: u64,
    seen: u64,
}

impl Node<u64> for Corruptor {
    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        self.seen += 1;
        let m = if self.seen == self.at {
            (msg + 1) % self.n
        } else {
            msg % self.n
        };
        ctx.send(m);
    }
}

/// Stops participating entirely after `quota` messages.
struct Mute {
    quota: u64,
    seen: u64,
}

impl Node<u64> for Mute {
    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        self.seen += 1;
        if self.seen <= self.quota {
            ctx.send(msg);
        }
    }
}

/// Swaps the message kind parity in PhaseAsyncLead once.
struct ParityFlipper {
    flipped: bool,
}

impl Node<PhaseMsg> for ParityFlipper {
    fn on_message(&mut self, _from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        let out = if !self.flipped {
            self.flipped = true;
            match msg {
                PhaseMsg::Data(v) => PhaseMsg::Val(v),
                PhaseMsg::Val(v) => PhaseMsg::Data(v),
            }
        } else {
            msg
        };
        ctx.send(out);
    }
}

#[test]
fn corrupting_any_single_message_fails_a_lead_uni() {
    let n = 12;
    for at in [1u64, 3, 7, 12] {
        for pos in [1usize, 5, 11] {
            let p = ALeadUni::new(n).with_seed(4);
            let exec = p.run_with(vec![(
                pos,
                Box::new(Corruptor {
                    n: n as u64,
                    at,
                    seen: 0,
                }),
            )]);
            assert!(
                exec.outcome.is_fail(),
                "at={at} pos={pos}: {:?}",
                exec.outcome
            );
        }
    }
}

#[test]
fn going_silent_fails_a_lead_uni_by_starvation() {
    let n = 10;
    for quota in [0u64, 1, 5] {
        let p = ALeadUni::new(n).with_seed(1);
        let exec = p.run_with(vec![(3, Box::new(Mute { quota, seen: 0 }))]);
        assert!(exec.outcome.is_fail(), "quota={quota}: {:?}", exec.outcome);
    }
}

#[test]
fn parity_violation_fails_phase_async_lead() {
    let n = 10;
    let p = PhaseAsyncLead::new(n).with_seed(3).with_fn_key(8);
    let exec = p.run_with(vec![(4, Box::new(ParityFlipper { flipped: false }))]);
    assert!(exec.outcome.is_fail(), "{:?}", exec.outcome);
}

/// A phase node that replays the honest pipe behaviour for data but
/// replaces one forwarded validation value.
struct ValTamperer {
    buffer: u64,
    round: u64,
    tamper_round: u64,
}

impl Node<PhaseMsg> for ValTamperer {
    fn on_message(&mut self, _from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        match msg {
            PhaseMsg::Data(x) => {
                self.round += 1;
                ctx.send(PhaseMsg::Data(self.buffer));
                self.buffer = x;
            }
            PhaseMsg::Val(v) => {
                let out = if self.round == self.tamper_round {
                    v ^ 1
                } else {
                    v
                };
                ctx.send(PhaseMsg::Val(out));
            }
        }
    }
}

#[test]
fn tampering_with_a_validation_value_is_caught_by_its_validator() {
    let n = 12;
    for tamper_round in [2u64, 5, 9] {
        let p = PhaseAsyncLead::new(n).with_seed(6).with_fn_key(2);
        // Node 7 forwards honestly except in `tamper_round`. Its own data
        // value never enters the stream (it pipes), which is itself a
        // second deviation — both must end in FAIL.
        let exec = p.run_with(vec![(
            7,
            Box::new(ValTamperer {
                buffer: 0,
                round: 0,
                tamper_round,
            }),
        )]);
        assert!(
            exec.outcome.is_fail(),
            "round={tamper_round}: {:?}",
            exec.outcome
        );
    }
}

#[test]
fn duplicating_messages_fails_a_lead_uni() {
    struct Duplicator {
        n: u64,
        dup_at: u64,
        seen: u64,
    }
    impl Node<u64> for Duplicator {
        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            self.seen += 1;
            ctx.send(msg % self.n);
            if self.seen == self.dup_at {
                ctx.send(msg % self.n);
            }
        }
    }
    let n = 10;
    let p = ALeadUni::new(n).with_seed(2);
    let exec = p.run_with(vec![(
        5,
        Box::new(Duplicator {
            n: n as u64,
            dup_at: 4,
            seen: 0,
        }),
    )]);
    assert!(exec.outcome.is_fail(), "{:?}", exec.outcome);
}

#[test]
fn honest_control_runs_still_pass() {
    // Sanity: with no injected fault the same configurations succeed.
    assert!(matches!(
        ALeadUni::new(12).with_seed(4).run_honest().outcome,
        Outcome::Elected(_)
    ));
    assert!(matches!(
        PhaseAsyncLead::new(12)
            .with_seed(6)
            .with_fn_key(2)
            .run_honest()
            .outcome,
        Outcome::Elected(_)
    ));
}

#[test]
fn multiple_simultaneous_faults_still_fail_cleanly() {
    let n = 16;
    let coalition = Coalition::new(n, vec![3, 9]).unwrap();
    let p = ALeadUni::new(n).with_seed(8);
    let overrides: Vec<(NodeId, Box<dyn Node<u64>>)> = coalition
        .positions()
        .iter()
        .map(|&pos| {
            let node: Box<dyn Node<u64>> = Box::new(Corruptor {
                n: n as u64,
                at: pos as u64 + 1,
                seen: 0,
            });
            (pos, node)
        })
        .collect();
    let exec = p.run_with(overrides);
    assert!(exec.outcome.is_fail());
}
