//! Seeded golden-outcome regression tests.
//!
//! Each case pins the elected leader, message count and step count of a
//! fixed `(protocol, n, seed)` triple, plus harness-level aggregates
//! (seed derivation, win vectors, a full JSON report). Any refactor that
//! silently changes RNG consumption order, seed derivation, engine
//! scheduling or report serialization fails these tests loudly instead of
//! shifting every Monte-Carlo table by an undetectable epsilon.
//!
//! If a change *intends* to alter executions (e.g. a protocol fix), the
//! pinned values must be re-derived and the change called out in review —
//! that is the point.

use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead};
use fle_harness::{run_sweep, trial_seed, BatchConfig, ProtocolKind, SweepConfig};
use ring_sim::Execution;

/// Asserts the full observable signature of one honest execution.
fn assert_golden(label: &str, exec: &Execution, leader: u64, messages: u64, steps: u64) {
    assert_eq!(exec.outcome.elected(), Some(leader), "{label}: leader");
    assert_eq!(exec.stats.total_sent(), messages, "{label}: messages");
    assert_eq!(exec.stats.steps, steps, "{label}: steps");
}

#[test]
fn protocol_executions_are_pinned() {
    assert_golden(
        "Basic-LEAD n=5 seed=42",
        &BasicLead::new(5).with_seed(42).run_honest(),
        3,
        25,
        30,
    );
    assert_golden(
        "Basic-LEAD n=16 seed=7",
        &BasicLead::new(16).with_seed(7).run_honest(),
        6,
        256,
        272,
    );
    assert_golden(
        "A-LEADuni n=8 seed=7",
        &ALeadUni::new(8).with_seed(7).run_honest(),
        2,
        64,
        65,
    );
    assert_golden(
        "A-LEADuni n=12 seed=2024",
        &ALeadUni::new(12).with_seed(2024).run_honest(),
        7,
        144,
        145,
    );
    assert_golden(
        "PhaseAsyncLead n=8 seed=3 key=9",
        &PhaseAsyncLead::new(8)
            .with_seed(3)
            .with_fn_key(9)
            .run_honest(),
        7,
        128,
        129,
    );
    assert_golden(
        "PhaseAsyncLead n=16 seed=2024 key=7",
        &PhaseAsyncLead::new(16)
            .with_seed(2024)
            .with_fn_key(7)
            .run_honest(),
        15,
        512,
        513,
    );
    assert_golden(
        "PhaseSumLead n=9 seed=5",
        &PhaseSumLead::new(9).with_seed(5).run_honest(),
        1,
        162,
        163,
    );
}

/// The harness seed derivation is part of the reproducibility contract:
/// changing it re-seeds every recorded sweep.
#[test]
fn trial_seed_derivation_is_pinned() {
    assert_eq!(trial_seed(0, 0), 8874072687412486912);
    assert_eq!(trial_seed(1, 0), 18192674930141563172);
    assert_eq!(trial_seed(1, 1), 8310453540754005676);
    assert_eq!(trial_seed(42, 999), 1322880520096769120);
}

#[test]
fn sweep_reports_are_pinned() {
    let report = run_sweep(&SweepConfig {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 8,
        fn_key: 9,
        batch: BatchConfig {
            trials: 32,
            base_seed: 1,
            threads: 1,
        },
    });
    assert_eq!(report.wins, vec![3, 6, 5, 5, 2, 3, 3, 5]);
    assert_eq!(
        report.to_json(),
        concat!(
            "{\"protocol\":\"PhaseAsyncLead\",\"n\":8,\"trials\":32,\"base_seed\":1,",
            "\"elected\":32,\"out_of_range\":0,",
            "\"fails\":{\"abort\":0,\"disagreement\":0,\"deadlock\":0,\"step_limit\":0},",
            "\"wins\":[3,6,5,5,2,3,3,5],",
            "\"messages\":{\"min\":128,\"max\":128,\"mean\":128.000000,",
            "\"p50\":128,\"p90\":128,\"p99\":128},",
            "\"steps\":{\"min\":129,\"max\":129,\"mean\":129.000000,",
            "\"p50\":129,\"p90\":129,\"p99\":129}}"
        )
    );

    let report = run_sweep(&SweepConfig {
        protocol: ProtocolKind::ALeadUni,
        n: 5,
        fn_key: 0,
        batch: BatchConfig {
            trials: 24,
            base_seed: 7,
            threads: 1,
        },
    });
    assert_eq!(report.wins, vec![1, 4, 7, 6, 6]);
}

/// The engine-reuse fast path must agree with the pinned builder-path
/// values (same golden signature through `run_honest_in`).
#[test]
fn engine_path_matches_pinned_values() {
    let mut engine = ring_sim::Engine::new(ring_sim::Topology::ring(8));
    let p = PhaseAsyncLead::new(8).with_seed(3).with_fn_key(9);
    // Twice on the same engine: reuse must not perturb the execution.
    for _ in 0..2 {
        assert_golden(
            "PhaseAsyncLead via Engine",
            &p.run_honest_in(&mut engine),
            7,
            128,
            129,
        );
    }
}
