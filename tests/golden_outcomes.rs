//! Seeded golden-outcome regression tests.
//!
//! Each case pins the elected leader, message count and step count of a
//! fixed `(protocol, n, seed)` triple, plus harness-level aggregates
//! (seed derivation, win vectors, a full JSON report). Any refactor that
//! silently changes RNG consumption order, seed derivation, engine
//! scheduling or report serialization fails these tests loudly instead of
//! shifting every Monte-Carlo table by an undetectable epsilon.
//!
//! If a change *intends* to alter executions (e.g. a protocol fix), the
//! pinned values must be re-derived and the change called out in review —
//! that is the point.

use fle_attacks::{AttackKind, PhaseRushingAttack, PhaseRushingCache, RushingAttack};
use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead};
use fle_core::Coalition;
use fle_harness::{
    run_batch, run_sweep, run_sweep_partial, sha256_hex, trial_seed, AttackSweep, BatchConfig,
    CoalitionSpec, FnKeySpec, HonestSweep, ProtocolKind, ScheduleSpec, SeedMode, SweepSpec,
    TargetSpec, TrialOutcome, TrialReport,
};
use ring_sim::Execution;

/// Asserts the full observable signature of one honest execution.
fn assert_golden(label: &str, exec: &Execution, leader: u64, messages: u64, steps: u64) {
    assert_eq!(exec.outcome.elected(), Some(leader), "{label}: leader");
    assert_eq!(exec.stats.total_sent(), messages, "{label}: messages");
    assert_eq!(exec.stats.steps, steps, "{label}: steps");
}

#[test]
fn protocol_executions_are_pinned() {
    assert_golden(
        "Basic-LEAD n=5 seed=42",
        &BasicLead::new(5).with_seed(42).run_honest(),
        3,
        25,
        30,
    );
    assert_golden(
        "Basic-LEAD n=16 seed=7",
        &BasicLead::new(16).with_seed(7).run_honest(),
        6,
        256,
        272,
    );
    assert_golden(
        "A-LEADuni n=8 seed=7",
        &ALeadUni::new(8).with_seed(7).run_honest(),
        2,
        64,
        65,
    );
    assert_golden(
        "A-LEADuni n=12 seed=2024",
        &ALeadUni::new(12).with_seed(2024).run_honest(),
        7,
        144,
        145,
    );
    assert_golden(
        "PhaseAsyncLead n=8 seed=3 key=9",
        &PhaseAsyncLead::new(8)
            .with_seed(3)
            .with_fn_key(9)
            .run_honest(),
        7,
        128,
        129,
    );
    assert_golden(
        "PhaseAsyncLead n=16 seed=2024 key=7",
        &PhaseAsyncLead::new(16)
            .with_seed(2024)
            .with_fn_key(7)
            .run_honest(),
        15,
        512,
        513,
    );
    assert_golden(
        "PhaseSumLead n=9 seed=5",
        &PhaseSumLead::new(9).with_seed(5).run_honest(),
        1,
        162,
        163,
    );
}

/// The harness seed derivation is part of the reproducibility contract:
/// changing it re-seeds every recorded sweep.
#[test]
fn trial_seed_derivation_is_pinned() {
    assert_eq!(trial_seed(0, 0), 8874072687412486912);
    assert_eq!(trial_seed(1, 0), 18192674930141563172);
    assert_eq!(trial_seed(1, 1), 8310453540754005676);
    assert_eq!(trial_seed(42, 999), 1322880520096769120);
}

#[test]
fn sweep_reports_are_pinned() {
    let report = run_sweep(&SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 8,
        fn_key: 9,
        batch: BatchConfig {
            trials: 32,
            base_seed: 1,
            threads: 1,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    assert_eq!(report.wins, vec![3, 6, 5, 5, 2, 3, 3, 5]);
    assert_eq!(
        report.to_json(),
        concat!(
            "{\"protocol\":\"PhaseAsyncLead\",\"n\":8,\"trials\":32,\"base_seed\":1,",
            "\"elected\":32,\"out_of_range\":0,",
            "\"fails\":{\"abort\":0,\"disagreement\":0,\"deadlock\":0,\"step_limit\":0},",
            "\"wins\":[3,6,5,5,2,3,3,5],",
            "\"messages\":{\"min\":128,\"max\":128,\"mean\":128.000000,",
            "\"p50\":128,\"p90\":128,\"p99\":128},",
            "\"steps\":{\"min\":129,\"max\":129,\"mean\":129.000000,",
            "\"p50\":129,\"p90\":129,\"p99\":129}}"
        )
    );

    let report = run_sweep(&SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::ALeadUni,
        n: 5,
        fn_key: 0,
        batch: BatchConfig {
            trials: 24,
            base_seed: 7,
            threads: 1,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    assert_eq!(report.wins, vec![1, 4, 7, 6, 6]);
}

/// Builds the canonical `PhaseAsyncLead n=64, seed=1, fn_key=0` sweep
/// config (exactly what `fle_lab sweep --protocol phase --n 64 --seed 1`
/// runs) — the workload the README's performance numbers and the
/// `BENCH_3.json` trajectory are stated about.
fn phase_n64_sweep(trials: u64) -> SweepSpec {
    SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 64,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads: 1,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

/// SHA-256 pin of a mid-size sweep's JSON: cheap enough to run in every
/// tier-1 pass, yet any drift in RNG consumption, seed derivation, engine
/// scheduling or report serialization flips it.
///
/// The pinned digest was first derived on the pre-optimization (PR 2)
/// engine; the zero-allocation/monomorphized engine reproducing it proves
/// the refactor is byte-invisible in output.
#[test]
fn sweep_json_sha256_is_pinned() {
    let report = run_sweep(&phase_n64_sweep(500)).expect("valid spec");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "b48a93b6398cec11f10e77363e7e00ca7d57eeae94eaa512c600b07f78bf016c"
    );
}

/// The full 10 000-trial `PhaseAsyncLead n=64` sweep of the recorded
/// experiment tables, sha256-pinned against the PR 2 engine's output.
///
/// `fle_lab sweep --protocol phase --n 64 --trials 10000 --seed 1` prints
/// exactly this JSON plus a trailing newline (the newline-inclusive file
/// digest is `7866a0a0e5c1c7156d59604f002e4188f3fe58761aff96ba345055f97b5b191e`).
///
/// Ignored by default (a few seconds of simulation in release, much more
/// in debug); CI runs it explicitly in release alongside the other golden
/// suites.
#[test]
#[ignore = "multi-second sweep; run explicitly in release (CI does)"]
fn full_10k_sweep_json_sha256_is_pinned() {
    let report = run_sweep(&phase_n64_sweep(10_000)).expect("valid spec");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "3001849b911e21739d42048ea699659cc662da9466873125127b4673124019e4"
    );
}

/// The lockstep-batched engine's byte-identity oracle: the canonical
/// 500-trial sweep at an explicit `--batch 8` and at forced scalar width
/// 1 both hash to the pre-batching golden digest, so the SoA fast path is
/// provably byte-invisible in output.
#[test]
fn batched_sweep_hits_the_scalar_pin() {
    for batch_width in [1, 8] {
        let SweepSpec::Honest(mut h) = phase_n64_sweep(500) else {
            unreachable!()
        };
        h.batch_width = batch_width;
        let report = run_sweep(&SweepSpec::Honest(h)).expect("valid spec");
        assert_eq!(
            sha256_hex(report.to_json().as_bytes()),
            "b48a93b6398cec11f10e77363e7e00ca7d57eeae94eaa512c600b07f78bf016c",
            "batch width {batch_width}"
        );
    }
}

/// The full 10 000-trial recorded sweep through the lockstep engine at
/// the explicit default width reproduces the scalar-era pin bit for bit.
/// Ignored for the same cost reason as the monolithic 10k pin; CI runs it
/// in release.
#[test]
#[ignore = "multi-second sweep; run explicitly in release (CI does)"]
fn full_10k_batched_sweep_json_sha256_is_pinned() {
    let SweepSpec::Honest(mut h) = phase_n64_sweep(10_000) else {
        unreachable!()
    };
    h.batch_width = 8;
    let report = run_sweep(&SweepSpec::Honest(h)).expect("valid spec");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "3001849b911e21739d42048ea699659cc662da9466873125127b4673124019e4"
    );
}

/// The crash-safety layer's byte-identity oracle: the 500-trial canonical
/// sweep run as three uneven shards, merged *out of order*, must finish
/// to the exact pinned bytes of the monolithic run.
#[test]
fn sharded_sweep_merge_reproduces_pinned_sha() {
    let spec = phase_n64_sweep(500);
    let mut merged = run_sweep_partial(&spec, 350, 500).expect("valid range");
    let mid = run_sweep_partial(&spec, 200, 350).expect("valid range");
    merged.merge(&mid).expect("disjoint shards");
    let head = run_sweep_partial(&spec, 0, 200).expect("valid range");
    merged.merge(&head).expect("disjoint shards");
    let report = merged.finish().expect("full coverage");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "b48a93b6398cec11f10e77363e7e00ca7d57eeae94eaa512c600b07f78bf016c"
    );
}

/// k-way shard/merge of the full 10 000-trial recorded sweep reproduces
/// the monolithic pin exactly — the acceptance oracle for multi-process
/// sharding (`fle_lab sweep --shard I/K` + `merge-reports`). Ignored for
/// the same cost reason as the monolithic 10k pin; CI runs it in release.
#[test]
#[ignore = "multi-second sweep; run explicitly in release (CI does)"]
fn full_10k_sharded_merge_sha256_is_pinned() {
    let spec = phase_n64_sweep(10_000);
    let k = 4u64;
    let parts: Vec<_> = (0..k)
        .map(|i| {
            let lo = i * 10_000 / k;
            let hi = (i + 1) * 10_000 / k;
            run_sweep_partial(&spec, lo, hi).expect("valid range")
        })
        .collect();
    let mut merged = parts[2].clone();
    for i in [0usize, 3, 1] {
        merged.merge(&parts[i]).expect("disjoint shards");
    }
    let report = merged.finish().expect("full coverage");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "3001849b911e21739d42048ea699659cc662da9466873125127b4673124019e4"
    );
}

/// Builds the canonical attack sweep: 500 trials of the `√n + 3` rushing
/// coalition (`k = 7` equally spaced) against `PhaseAsyncLead n=16`, one
/// derived seed per trial, run through the cached-engine attack fast path
/// (`run_in` over a per-worker [`PhaseRushingCache`] — since the
/// coalition-mix enum widening, the homogeneous coalition runs fully
/// unboxed; the sha256 pin below proving the switch is byte-invisible).
fn rushing_n16_report(trials: u64) -> TrialReport {
    let n = 16;
    let base_seed = 1;
    let attack = PhaseRushingAttack::new(3);
    let coalition = Coalition::equally_spaced(n, 7, 1).expect("valid layout");
    let outcomes = run_batch(
        &BatchConfig {
            trials,
            base_seed,
            threads: 1,
        },
        || PhaseRushingCache::ring(n),
        |cache, _i, seed| {
            let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(9);
            let exec = attack.run_in(&p, &coalition, cache).expect("feasible");
            TrialOutcome::of(exec)
        },
    );
    TrialReport::from_trials("PhaseRushing-n16", n, base_seed, &outcomes)
}

/// SHA-256 pin of the attack fast path's aggregate output — the
/// byte-identical regression oracle for `run_in`/`TrialCache`, mirroring
/// the honest sweep pins above. The digest was first derived through
/// `SimBuilder::run_with` (`PhaseRushingAttack::run`), so it also proves
/// the cached-engine path reproduces the one-shot path exactly.
#[test]
fn rushing_attack_sweep_json_sha256_is_pinned() {
    let report = rushing_n16_report(500);
    // The rushing coalition controls the outcome: all 500 trials elect
    // target 3 (w=3 wins every trial; everything else zero).
    assert_eq!(report.wins[3], 500);
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "a05b7ec457fe54acce4827023c6828ad34bb39427cbefe39925264ee45f8153a"
    );
}

/// The same 500 trials through the one-shot `SimBuilder` path must
/// aggregate to the identical report (differential form of the pin, so a
/// drift in either path is attributed immediately).
#[test]
fn rushing_attack_sweep_matches_simbuilder_path() {
    let n = 16;
    let attack = PhaseRushingAttack::new(3);
    let coalition = Coalition::equally_spaced(n, 7, 1).expect("valid layout");
    let fast = rushing_n16_report(40);
    let outcomes: Vec<TrialOutcome> = (0..40)
        .map(|i| {
            let p = PhaseAsyncLead::new(n)
                .with_seed(trial_seed(1, i))
                .with_fn_key(9);
            TrialOutcome::of(&attack.run(&p, &coalition).expect("feasible"))
        })
        .collect();
    let slow = TrialReport::from_trials("PhaseRushing-n16", n, 1, &outcomes);
    assert_eq!(fast.to_json(), slow.to_json());
}

/// The canonical spec-level attack sweep: 500 trials of the Theorem 4.2
/// rushing attack (`k = 4 = √n` equally spaced, offset 1 — every segment
/// `l_j = 3 = k − 1`, so the plan is feasible and the coalition controls
/// every outcome) against `A-LEADuni n=16`, derived seeds, fixed target 3.
fn canonical_attack_sweep(threads: usize) -> SweepSpec {
    SweepSpec::Attack(AttackSweep {
        attack: AttackKind::Rushing,
        n: 16,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials: 500,
            base_seed: 1,
            threads,
        },
        coalition: CoalitionSpec::EquallySpaced { k: 4, offset: 1 },
        target: TargetSpec::Fixed(3),
        seed_mode: SeedMode::Derived,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

/// SHA-256 pins of the canonical attack sweep's JSON *and* CSV — the
/// byte-identical regression oracle for the whole spec → runner →
/// aggregation → serialization pipeline (attack arm, Wilson CI
/// formatting included), mirroring the honest sweep pins above.
#[test]
fn attack_sweep_json_and_csv_sha256_are_pinned() {
    let report = run_sweep(&canonical_attack_sweep(1)).expect("valid spec");
    let arm = report.attack.expect("attack sweeps carry the arm");
    // Thm 4.2: at k = √n the rushing coalition always elects its target.
    assert_eq!(arm.successes, 500);
    assert_eq!(arm.infeasible, 0);
    assert_eq!(report.wins[3], 500);
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "1d5514fee155d268d19f3b691e80d5835c163bbb31f08789424f2bb712115915"
    );
    assert_eq!(
        sha256_hex(report.to_csv().as_bytes()),
        "ea1a4c60b2ce161d254585b05a7f018b589a0361a983cb3e94f7601814b2e264"
    );
}

/// The canonical attack sweep must serialize byte-identically at every
/// thread count (the same invariant the honest pins enjoy).
#[test]
fn attack_sweep_is_thread_count_invariant() {
    let baseline = run_sweep(&canonical_attack_sweep(1)).expect("valid spec");
    for threads in [2, 8] {
        let report = run_sweep(&canonical_attack_sweep(threads)).expect("valid spec");
        assert_eq!(report.to_json(), baseline.to_json(), "threads={threads}");
        assert_eq!(report.to_csv(), baseline.to_csv(), "threads={threads}");
    }
}

/// Differential pin for the t42 migration: one of the table's
/// `(n, k)` cells, run through `run_sweep(SweepSpec::Attack)`, must
/// reproduce the pre-migration per-seed loop (raw-index seeds, target
/// `(seed * 31) mod n`) success for success.
#[test]
fn migrated_t42_cell_matches_premigration_loop() {
    let (n, k, trials) = (64usize, 8usize, 20u64);
    let report = run_sweep(&SweepSpec::Attack(AttackSweep {
        attack: AttackKind::Rushing,
        n,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials,
            base_seed: 0,
            threads: 1,
        },
        coalition: CoalitionSpec::EquallySpaced { k, offset: 1 },
        target: TargetSpec::SeedProduct { multiplier: 31 },
        seed_mode: SeedMode::RawIndex,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    let coalition = Coalition::equally_spaced(n, k, 1).expect("valid layout");
    let mut successes = 0u64;
    for seed in 0..trials {
        let protocol = ALeadUni::new(n).with_seed(seed);
        let w = (seed * 31) % n as u64;
        if RushingAttack::new(w)
            .run(&protocol, &coalition)
            .is_ok_and(|e| e.outcome.elected() == Some(w))
        {
            successes += 1;
        }
    }
    let arm = report.attack.expect("attack sweeps carry the arm");
    assert_eq!(arm.successes, successes);
    assert_eq!(arm.infeasible, 0);
    assert_eq!(report.trials, trials);
    // Thm 4.2 at k = √n: the pre-migration loop always won, and so must
    // the sweep.
    assert_eq!(successes, trials);
}

/// The canonical *timed* honest sweep: `PhaseAsyncLead n=16` under a
/// jittered, lossy, duplicating virtual-clock net. The profile is
/// deliberately non-degenerate (every noise knob exercised) so the pin
/// covers the whole timed delivery pipeline, not just the zero-profile
/// anchor that `tests/timed_paths.rs` proves equal to FIFO.
fn timed_honest_sweep(threads: usize) -> SweepSpec {
    SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 16,
        fn_key: 9,
        batch: BatchConfig {
            trials: 200,
            base_seed: 1,
            threads,
        },
        batch_width: 0,
        schedule: fle_harness::ScheduleSpec::Timed {
            latency: fle_harness::LatencySpec::Uniform { lo: 0, hi: 1000 },
            loss_permille: 50,
            dup_permille: 20,
        },
        fault: None,
    })
}

/// The canonical timed attack sweep: the Theorem 4.2 rushing cell under
/// two-point latency stalls (no loss, so feasibility is unaffected and
/// only delivery order moves).
fn timed_attack_sweep(threads: usize) -> SweepSpec {
    SweepSpec::Attack(AttackSweep {
        attack: AttackKind::Rushing,
        n: 16,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials: 200,
            base_seed: 1,
            threads,
        },
        coalition: CoalitionSpec::EquallySpaced { k: 4, offset: 1 },
        target: TargetSpec::Fixed(3),
        seed_mode: SeedMode::Derived,
        schedule: fle_harness::ScheduleSpec::Timed {
            latency: fle_harness::LatencySpec::TwoPoint {
                lo: 10,
                hi: 1000,
                hi_permille: 100,
            },
            loss_permille: 0,
            dup_permille: 0,
        },
        fault: None,
    })
}

/// SHA-256 pins of the timed sweeps' JSON — the regression oracle for
/// the virtual-clock scheduler's event ordering, noise-stream seeding
/// (`NET_STREAM_SALT` derivation) and latency draws. Any drift in RNG
/// consumption order inside the timed path flips these.
#[test]
fn timed_sweep_json_sha256_is_pinned() {
    let report = run_sweep(&timed_honest_sweep(1)).expect("valid spec");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "bc81febbb00a984ffa78755683790b2316adc18fa2d0ac457687a1e99ade83f3"
    );
    let report = run_sweep(&timed_attack_sweep(1)).expect("valid spec");
    assert_eq!(
        sha256_hex(report.to_json().as_bytes()),
        "1ca6ba58d1ae104512965cf239b3cc3d4a51d1f3070c05bc6077f07d304d9c95"
    );
}

/// Timed sweeps must serialize byte-identically at every thread count:
/// the virtual clock and its noise streams are derived per trial, so
/// scheduling trials across workers cannot reorder anything observable.
#[test]
fn timed_sweeps_are_thread_count_invariant() {
    let honest = run_sweep(&timed_honest_sweep(1)).expect("valid spec");
    let attack = run_sweep(&timed_attack_sweep(1)).expect("valid spec");
    for threads in [2, 8] {
        assert_eq!(
            run_sweep(&timed_honest_sweep(threads))
                .expect("valid spec")
                .to_json(),
            honest.to_json(),
            "honest threads={threads}"
        );
        assert_eq!(
            run_sweep(&timed_attack_sweep(threads))
                .expect("valid spec")
                .to_json(),
            attack.to_json(),
            "attack threads={threads}"
        );
    }
}

/// The engine-reuse fast path must agree with the pinned builder-path
/// values (same golden signature through `run_honest_in`).
#[test]
fn engine_path_matches_pinned_values() {
    let mut engine = ring_sim::Engine::new(ring_sim::Topology::ring(8));
    let p = PhaseAsyncLead::new(8).with_seed(3).with_fn_key(9);
    // Twice on the same engine: reuse must not perturb the execution.
    for _ in 0..2 {
        assert_golden(
            "PhaseAsyncLead via Engine",
            &p.run_honest_in(&mut engine),
            7,
            128,
            129,
        );
    }
}
