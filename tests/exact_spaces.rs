//! Integration tests for the exact-enumeration layer: the paper's
//! definitions checked as integer identities on complete input spaces,
//! cross-validated against Monte-Carlo estimates.

use fle_attacks::{BasicSingleAttack, RushingAttack};
use fle_core::exact::{exact_distribution, for_each_assignment};
use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol};
use fle_core::Coalition;

#[test]
fn both_ring_protocols_are_exactly_fair_on_tiny_rings() {
    for n in [2usize, 3, 4] {
        let free: Vec<usize> = (0..n).collect();
        let basic = exact_distribution(n, &free, |values| {
            BasicLead::new(n)
                .with_values(values.to_vec())
                .run_honest()
                .outcome
        });
        assert!(basic.is_exactly_uniform(), "Basic-LEAD n={n}: {basic:?}");
        let a_lead = exact_distribution(n, &free, |values| {
            ALeadUni::new(n)
                .with_values(values.to_vec())
                .run_honest()
                .outcome
        });
        assert!(a_lead.is_exactly_uniform(), "A-LEADuni n={n}: {a_lead:?}");
        assert_eq!(basic.total, (n as u64).pow(n as u32));
    }
}

#[test]
fn claim_b1_forcing_is_exact_for_every_adversary_position_and_target() {
    let n = 4usize;
    for adv in 0..n {
        for target in 0..n as u64 {
            let free: Vec<usize> = (0..n).filter(|&p| p != adv).collect();
            let dist = exact_distribution(n, &free, |values| {
                let protocol = BasicLead::new(n).with_values(values.to_vec());
                BasicSingleAttack::new(adv, target)
                    .run(&protocol)
                    .expect("feasible")
                    .outcome
            });
            assert_eq!(dist.fails, 0, "adv {adv} target {target}");
            assert_eq!(
                dist.counts[target as usize], dist.total,
                "adv {adv} target {target}: {dist:?}"
            );
        }
    }
}

#[test]
fn rushing_attack_is_exact_on_an_enumerable_ring() {
    // n = 4, k = 2 opposite: every segment has l = 1 <= k - 1 = 1; the
    // rushing attack must force the target on every one of the 4^2 = 16
    // honest inputs.
    let n = 4usize;
    let coalition = Coalition::new(n, vec![1, 3]).expect("valid");
    let target = 2u64;
    let free: Vec<usize> = vec![0, 2];
    let dist = exact_distribution(n, &free, |values| {
        let protocol = ALeadUni::new(n).with_values(values.to_vec());
        RushingAttack::new(target)
            .run(&protocol, &coalition)
            .expect("feasible layout")
            .outcome
    });
    assert_eq!(dist.counts[target as usize], dist.total, "{dist:?}");
    assert_eq!(dist.total, 16);
}

#[test]
fn exact_epsilon_matches_monte_carlo_estimate() {
    // For the honest protocol both must be ~0; exact is exactly 0.
    let n = 4usize;
    let free: Vec<usize> = (0..n).collect();
    let exact = exact_distribution(n, &free, |values| {
        BasicLead::new(n)
            .with_values(values.to_vec())
            .run_honest()
            .outcome
    });
    assert_eq!(exact.epsilon(), 0.0);
    // Monte-Carlo over seeds converges to the same per-leader frequency.
    let trials = 2000u64;
    let mut counts = vec![0u64; n];
    for seed in 0..trials {
        let w = BasicLead::new(n)
            .with_seed(seed)
            .run_honest()
            .outcome
            .elected()
            .expect("honest");
        counts[w as usize] += 1;
    }
    let max = counts.iter().copied().max().expect("nonempty") as f64 / trials as f64;
    assert!((max - 0.25).abs() < 0.05, "{counts:?}");
}

#[test]
fn odometer_and_distribution_sizes_agree() {
    let mut visits = 0u64;
    for_each_assignment(5, 3, |_| visits += 1);
    assert_eq!(visits, 125);
    let dist = exact_distribution(3, &[0, 1], |_| ring_sim::Outcome::Elected(0));
    assert_eq!(dist.total, 9);
    assert_eq!(dist.counts[0], 9);
}
