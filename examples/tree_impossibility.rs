//! Theorem 7.2 live: a 16-node graph that is a 4-simulated tree
//! (Figure 2), where 4 colluding processors dictate any fair leader
//! election — plus the Lemma F.2 two-party dictator extraction.
//!
//! ```text
//! cargo run --example tree_impossibility
//! ```

use fle_topology::tree_fle::{theorem_7_2_demo, TreeSumFle};
use fle_topology::two_party::{dichotomy, AlternatingProtocol, Verdict};
use fle_topology::{figure2_graph, Graph, TreePartition};

fn main() {
    // Figure 2: four 4-cliques glued into a tree shape.
    let (graph, partition) = figure2_graph();
    println!(
        "figure-2 graph: {} nodes, {} edges, k-simulated tree with k = {}",
        graph.len(),
        graph.edge_count(),
        partition.k()
    );
    for (i, part) in partition.parts().iter().enumerate() {
        println!("  part {i}: {part:?}");
    }
    println!("  quotient tree edges: {:?}", partition.quotient_edges());

    // The coalition = the root part (4 processors of 16) picks any leader.
    let fle = TreeSumFle::new(&graph, &partition, 11);
    println!("\nhonest tree-sum election: {}", fle.run_honest().outcome);
    println!("coalition {:?} dictates:", fle.dictator_coalition());
    for target in [0u64, 7, 15] {
        println!(
            "  forcing leader {target}: {}",
            fle.run_with_dictator(target).outcome
        );
    }

    // Claim F.5: ANY connected graph is a ceil(n/2)-simulated tree.
    println!("\nClaim F.5 partitions (k <= ceil(n/2)):");
    for (name, g) in [
        ("cycle(11)", Graph::cycle(11)),
        ("complete(9)", Graph::complete(9)),
        ("grid(3x5)", Graph::grid(3, 5)),
    ] {
        let p = TreePartition::claim_f5(&g);
        let (k, outcome) = theorem_7_2_demo(&g, 3, 2);
        println!(
            "  {name:<12} k = {:>2} (bound {:>2}), dictated outcome: {outcome}",
            p.k(),
            g.len().div_ceil(2),
            outcome = outcome
        );
        let _ = k;
    }

    // Lemma F.2 in miniature: extract the dictator of the XOR coin toss.
    println!("\nLemma F.2 on the naive XOR coin toss:");
    match dichotomy(&AlternatingProtocol::xor_coin()) {
        Verdict::Dictator { party, .. } => {
            println!("  {party:?} (the second mover) dictates both outcomes")
        }
        Verdict::Favourable { bit, .. } => println!("  favourable value {bit}"),
    }
}
