//! The asynchronous fully-connected election `A-LEADfc` (paper Section
//! 1.1): Shamir sharing, the deal/ready/reveal flow, and the tight
//! `⌈n/2⌉` crossover.
//!
//! ```text
//! cargo run --release -p fle-experiments --example secret_sharing
//! ```

use fle_core::protocols::FleProtocol;
use fle_secretshare::{consistent, reconstruct, run_fc_attack, share, ALeadFc, Gf};
use ring_sim::rng::SplitMix64;

fn main() {
    println!("== Shamir (t, n) sharing over GF(2^61 - 1) ==");
    let mut rng = SplitMix64::new(42);
    let secret = Gf::new(123_456_789);
    let (t, n) = (3usize, 8usize);
    let shares = share(secret, t, n, &mut rng).expect("t < n");
    println!("secret {secret} split into {n} shares, threshold t = {t}");
    let sub = &shares[2..6];
    println!(
        "any t+1 = {} shares reconstruct: {}",
        t + 1,
        reconstruct(sub, t).expect("enough shares")
    );
    println!(
        "all shares consistent with one degree-{t} polynomial: {}\n",
        consistent(&shares, t).expect("enough shares")
    );

    println!("== A-LEADfc: honest elections ==");
    let protocol = ALeadFc::new(8).with_seed(7);
    for seed in 0..4 {
        let exec = ALeadFc::new(8).with_seed(seed).run_honest();
        println!(
            "seed {seed}: elected {:?}",
            exec.outcome.elected().expect("honest")
        );
    }
    println!();

    println!("== the ceil(n/2) crossover ==");
    let target = 5u64;
    let below: Vec<usize> = (0..3).collect(); // k = 3 < ceil(8/2)
    let at: Vec<usize> = (0..4).collect(); //    k = 4 = ceil(8/2)
    let mut below_hits = 0;
    let mut at_hits = 0;
    let trials = 20;
    for seed in 0..trials {
        let p = ALeadFc::new(8).with_seed(seed);
        if run_fc_attack(&p, &below, target).outcome.elected() == Some(target) {
            below_hits += 1;
        }
        if run_fc_attack(&p, &at, target).outcome.elected() == Some(target) {
            at_hits += 1;
        }
    }
    println!("k = 3 (< n/2):  forced the target in {below_hits}/{trials} runs (≈ chance)");
    println!("k = 4 (= n/2):  forced the target in {at_hits}/{trials} runs (always)");
    println!("\nmatches the paper: resilient to n/2 - 1, impossible at ceil(n/2) (Thm 7.2)");
    let _ = protocol;
}
