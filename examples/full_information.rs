//! Tour of the full-information coin-flipping model (paper Section 1.1):
//! one-round boolean games, Ben-Or & Linial's iterated majority, Saks'
//! baton passing, and lightest-bin leader election.
//!
//! ```text
//! cargo run --release -p fle-experiments --example full_information
//! ```

use fle_fullinfo::{
    best_coalition, coalition_power, BatonGame, IteratedMajority, LightestBin, Majority, Parity,
};

fn main() {
    println!("== one-round games: who controls the coin? ==");
    for n in [5usize, 9, 13] {
        let maj = Majority::new(n);
        let p1 = coalition_power(&maj, 1);
        let psqrt = coalition_power(&maj, (1 << (n as f64).sqrt() as usize) - 1);
        println!(
            "majority({n}):  1 voter bias {:+.3}   sqrt(n) voters bias {:+.3}",
            p1.bias(),
            psqrt.bias()
        );
    }
    let par = Parity::new(9);
    let p = coalition_power(&par, 1);
    println!(
        "parity(9):    1 rushing voter controls with prob {:.3} — a dictator\n",
        p.control
    );

    println!("== best coalitions, found exhaustively ==");
    let maj = Majority::new(9);
    for k in [1usize, 2, 3] {
        let (mask, power) = best_coalition(&maj, k);
        println!(
            "majority(9), k={k}: best mask {mask:#011b}, control {:.3}",
            power.control
        );
    }
    println!();

    println!("== iterated majority-of-3: the n^0.63 threshold ==");
    for h in 1..=5u32 {
        let g = IteratedMajority::new(h);
        let cheap = g.cheapest_controlling_set();
        println!(
            "height {h}: n = {:>4}, cheapest controlling set = {:>3} leaves (n^{:.2}), control = {:.3}",
            g.n(),
            cheap.len(),
            (cheap.len() as f64).ln() / (g.n() as f64).ln(),
            g.control_probability(&cheap),
        );
    }
    println!();

    println!("== leader election: corrupt-leader probability vs fair share ==");
    let n = 64;
    println!(
        "{:>4} {:>8} {:>14} {:>14}",
        "k", "k/n", "baton (exact)", "lightest-bin"
    );
    for k in [1usize, 4, 8, 16, 32] {
        let baton = BatonGame::new(n, k);
        let bin = LightestBin::new(n, k);
        println!(
            "{k:>4} {:>8.3} {:>14.3} {:>14.3}",
            k as f64 / n as f64,
            baton.corrupt_leader_probability(),
            bin.corrupt_leader_rate(7, 400),
        );
    }
    println!("\nSaks' baton resists O(n/log n); plain 2-bin lightest-bin falls even faster —");
    println!("the gap the linear-resilience constructions [9,11,25] close with more machinery.");
}
