//! Quickstart: elect a leader fairly among rational agents, then watch a
//! coalition try — and fail — to steal the election.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fle_attacks::PhaseRushingAttack;
use fle_core::protocols::{FleProtocol, PhaseAsyncLead};
use fle_core::Coalition;

fn main() {
    // A ring of 64 processors running the paper's Θ(√n)-resilient
    // protocol. The seed fixes every processor's secret values; the
    // function key fixes the protocol's random function f.
    let n = 64;
    let protocol = PhaseAsyncLead::new(n).with_seed(2024).with_fn_key(7);

    // Honest execution: everyone follows the protocol.
    let execution = protocol.run_honest();
    println!("honest outcome:        {}", execution.outcome);
    println!(
        "messages exchanged:    {} (= 2n^2 = {})",
        execution.stats.total_sent(),
        2 * n * n
    );

    // A small coalition (k = 5 < sqrt(64)/10 rounded up... well below the
    // threshold) cannot even mount the rushing attack: its honest
    // segments are longer than its slack.
    let small = Coalition::equally_spaced(n, 5, 1).expect("valid coalition");
    match PhaseRushingAttack::new(13).run(&protocol, &small) {
        Err(err) => println!("k=5 coalition:         {err}"),
        Ok(exec) => println!("k=5 coalition:         unexpectedly ran: {}", exec.outcome),
    }

    // A coalition of sqrt(n) + 3 = 11, however, controls the outcome
    // completely (the paper's tightness remark after Theorem 6.1).
    let big = Coalition::equally_spaced(n, 11, 1).expect("valid coalition");
    let forced = PhaseRushingAttack::new(13)
        .run(&protocol, &big)
        .expect("feasible at sqrt(n) + 3");
    println!("k=11 coalition forces: {}", forced.outcome);

    // Different seeds elect different leaders — fairness in action.
    print!("ten honest elections:  ");
    for seed in 0..10 {
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(7);
        print!("{} ", p.run_honest().outcome.elected().expect("honest"));
    }
    println!();
}
