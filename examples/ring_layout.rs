//! Figure 1, interactively: coalition layouts, honest segments, and why
//! layout decides which attack is possible.
//!
//! ```text
//! cargo run --example ring_layout
//! ```

use fle_attacks::{cubic_distances, RushingAttack};
use fle_core::protocols::ALeadUni;
use fle_core::Coalition;

fn describe(name: &str, c: &Coalition) {
    println!("{name} (n = {}, k = {}):", c.n(), c.k());
    println!("  {}", c.render_ascii(c.n()).replace('\n', "\n  "));
    println!(
        "  distances l_j = {:?}  (exposed adversaries: {})",
        c.distances(),
        c.exposed().len()
    );
    let feasible = RushingAttack::new(0).plan(&ALeadUni::new(c.n()), c).is_ok();
    println!(
        "  rushing attack (needs every l_j <= k - 1 = {}): {}",
        c.k() - 1,
        if feasible { "FEASIBLE" } else { "infeasible" }
    );
    println!();
}

fn main() {
    let n = 60;

    describe(
        "equally spaced, k = 8 (sqrt(n) ~ 7.7)",
        &Coalition::equally_spaced(n, 8, 1).unwrap(),
    );
    describe(
        "equally spaced, k = 5 (below sqrt(n))",
        &Coalition::equally_spaced(n, 5, 1).unwrap(),
    );
    describe(
        "consecutive, k = 20 (below (n+1)/2)",
        &Coalition::consecutive(n, 20, 1).unwrap(),
    );
    describe(
        "consecutive, k = 31 (above (n+1)/2)",
        &Coalition::consecutive(n, 31, 1).unwrap(),
    );
    describe(
        "bernoulli p = 0.2",
        &Coalition::random_bernoulli(n, 0.2, 3).unwrap(),
    );

    // The cubic layout: geometric distances squeeze k down to ~2·cbrt(n).
    let plan = cubic_distances(n).unwrap();
    println!(
        "cubic layout (Thm 4.3): k = {} with distances {:?}",
        plan.k(),
        plan.distances()
    );
    describe("cubic-planned coalition", &plan.coalition());
}
