//! The attack gallery: every adversarial deviation from the paper, run
//! against its victim protocol on one ring size.
//!
//! ```text
//! cargo run --example attack_gallery
//! ```

use fle_attacks::{
    cubic_distances, BasicSingleAttack, CubicAttack, PhaseBurstAttack, PhaseRushingAttack,
    PhaseSumAttack, RandomLocatedAttack, RushingAttack,
};
use fle_core::protocols::{ALeadUni, BasicLead, PhaseAsyncLead, PhaseSumLead};
use fle_core::Coalition;

fn main() {
    let n = 100;
    let target = 42u64;
    println!("ring size n = {n}, every attack aims at leader {target}\n");

    // Claim B.1 — one adversary vs Basic-LEAD.
    let basic = BasicLead::new(n).with_seed(1);
    let exec = BasicSingleAttack::new(7, target).run(&basic).unwrap();
    println!("Claim B.1   Basic-LEAD,     k = 1:   {}", exec.outcome);

    // Lemma 4.1 / Theorem 4.2 — rushing with k = sqrt(n).
    let alead = ALeadUni::new(n).with_seed(1);
    let coalition = Coalition::equally_spaced(n, 10, 1).unwrap();
    let exec = RushingAttack::new(target).run(&alead, &coalition).unwrap();
    println!("Thm 4.2     A-LEADuni,      k = 10:  {}", exec.outcome);

    // Theorem 4.3 — the cubic attack with k ≈ 2·cbrt(n).
    let plan = cubic_distances(n).unwrap();
    let exec = CubicAttack::new(target).run(&alead, &plan).unwrap();
    println!(
        "Thm 4.3     A-LEADuni,      k = {}:   {}   (distances {:?})",
        plan.k(),
        exec.outcome,
        plan.distances()
    );

    // Theorem C.1 — randomly located adversaries, k and l_j unknown.
    let random = Coalition::random_bernoulli(n, 0.3, 9).unwrap();
    let attack = RandomLocatedAttack::new(target, 4);
    let exec = attack.run(&alead, &random).unwrap();
    println!(
        "Thm C.1     A-LEADuni,      k = {} (random): {}",
        random.k(),
        exec.outcome
    );

    // Theorem 6.1 tightness — rushing vs PhaseAsyncLead at sqrt(n) + 3.
    let phase = PhaseAsyncLead::new(n).with_seed(1).with_fn_key(5);
    let coalition = Coalition::equally_spaced(n, 13, 1).unwrap();
    let exec = PhaseRushingAttack::new(target)
        .run(&phase, &coalition)
        .unwrap();
    println!("Thm 6.1     PhaseAsyncLead, k = 13:  {}", exec.outcome);

    // …but the protocol holds below the threshold.
    let small = Coalition::equally_spaced(n, 6, 1).unwrap();
    match PhaseRushingAttack::new(target).run(&phase, &small) {
        Err(e) => println!("Thm 6.1     PhaseAsyncLead, k = 6:   refused ({e})"),
        Ok(exec) => println!("Thm 6.1     PhaseAsyncLead, k = 6:   {}", exec.outcome),
    }

    // …and detects the cubic burst outright.
    let burst_coalition = Coalition::equally_spaced(n, 11, 1).unwrap();
    let exec = PhaseBurstAttack::new(target)
        .run(&phase, &burst_coalition)
        .unwrap();
    println!("Sec 6       PhaseAsyncLead, burst:   {}", exec.outcome);

    // Appendix E.4 — four adversaries vs the sum-output ablation.
    let sum = PhaseSumLead::new(n).with_seed(1);
    let four = Coalition::equally_spaced(n, 4, 1).unwrap();
    let exec = PhaseSumAttack::new(target).run(&sum, &four).unwrap();
    println!("App E.4     PhaseSumLead,   k = 4:   {}", exec.outcome);
}
