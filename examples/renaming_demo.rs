//! Fair renaming on top of the election machinery (Afek et al. [5] /
//! paper Section 8 reductions): rotation renaming and uniform-permutation
//! renaming.
//!
//! ```text
//! cargo run --release -p fle-experiments --example renaming_demo
//! ```

use fle_core::renaming::{permutation_renaming, rotation_renaming};

fn main() {
    let n = 8;
    println!("== rotation renaming: one election, marginally uniform names ==");
    for seed in 0..4 {
        let r = rotation_renaming(n, seed).expect("honest elections succeed");
        println!("seed {seed}: names {:?} (valid: {})", r.names, r.is_valid());
    }
    println!();

    println!("== permutation renaming: elections -> unbiased coins -> Fisher-Yates ==");
    for seed in 0..4 {
        let r = permutation_renaming(n, seed).expect("honest elections succeed");
        println!(
            "seed {seed}: names {:?} using {} elections",
            r.names, r.elections
        );
    }
    println!();
    println!("rotation costs 1 election but correlates names;");
    println!("permutation costs Theta(n) elections and is uniform over all n! assignments.");
}
