//! Section 8: fair coin toss ⇄ fair leader election, with live bias
//! measurements under honesty and under attack.
//!
//! ```text
//! cargo run --example coin_toss
//! ```

use fle_attacks::BasicSingleAttack;
use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol};
use fle_core::reductions::{
    coin_bias_from_fle, coin_outcome_of_fle, elect_from_coins, fle_prob_bound_from_coin,
    CoinFromFle,
};
use ring_sim::Outcome;

fn main() {
    let trials = 2000u64;

    // FLE -> coin: parity of the elected leader.
    let mut ones = 0;
    for seed in 0..trials {
        let coin = CoinFromFle::new(ALeadUni::new(16).with_seed(seed));
        if coin.toss() == Outcome::Elected(1) {
            ones += 1;
        }
    }
    println!(
        "coin from honest A-LEADuni(16): Pr[1] = {:.3} (bound from eps=0: {:.3})",
        ones as f64 / trials as f64,
        0.5 + coin_bias_from_fle(0.0, 16)
    );

    // The same coin when the source election is dictated (Claim B.1).
    let mut ones = 0;
    for seed in 0..200 {
        let p = BasicLead::new(16).with_seed(seed);
        let exec = BasicSingleAttack::new(3, 11).run(&p).unwrap(); // odd leader
        if coin_outcome_of_fle(exec.outcome) == Outcome::Elected(1) {
            ones += 1;
        }
    }
    println!(
        "coin from dictated Basic-LEAD:  Pr[1] = {:.3} (adversary chose an odd leader)",
        ones as f64 / 200.0
    );

    // Coins -> FLE: three independent honest coins elect one of 8 leaders.
    let mut counts = [0u64; 8];
    for seed in 0..trials {
        let out = elect_from_coins(3, |i| {
            let fle = ALeadUni::new(8).with_seed(seed * 3 + i as u64);
            coin_outcome_of_fle(fle.run_honest().outcome)
        });
        counts[out.elected().expect("honest coins land") as usize] += 1;
    }
    println!(
        "\nelection from 3 honest coins over 8 leaders ({} trials):",
        trials
    );
    for (leader, &c) in counts.iter().enumerate() {
        println!(
            "  leader {leader}: {:.3}  (fair share 0.125, bound {:.3})",
            c as f64 / trials as f64,
            fle_prob_bound_from_coin(0.0, 8)
        );
    }
}
