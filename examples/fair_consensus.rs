//! Fair consensus for rational agents (the Afek et al. building block):
//! elect a leader fairly, decide the leader's input — so no processor can
//! bias *what* is decided any more than it can bias *who* is elected.
//!
//! ```text
//! cargo run --example fair_consensus
//! ```

use fle_core::consensus::FairConsensus;

fn main() {
    let n = 10;
    // Four processors propose `true`, six propose `false`.
    let inputs: Vec<bool> = (0..n).map(|i| i % 5 < 2).collect();
    println!("proposals: {inputs:?}");

    // One run: the elected leader's proposal wins.
    let consensus = FairConsensus::new(inputs.clone()).with_seed(2024);
    let (decision, leader) = consensus.run_honest().expect("honest runs succeed");
    println!("seed 2024: leader {leader} proposed {decision} -> decided {decision}");

    // Fairness: over many seeds the decision frequency tracks the input
    // frequency (4/10 here) — a rational agent that wants `true` decided
    // gains nothing beyond its fair share.
    let trials = 3000u64;
    let mut trues = 0u64;
    for seed in 0..trials {
        let c = FairConsensus::new(inputs.clone()).with_seed(seed);
        if c.run_honest().expect("honest").0 {
            trues += 1;
        }
    }
    println!(
        "over {trials} seeds: Pr[decide true] = {:.3}  (input share = {:.3})",
        trues as f64 / trials as f64,
        inputs.iter().filter(|&&b| b).count() as f64 / n as f64
    );

    // Unanimity is always respected (validity).
    for value in [true, false] {
        let c = FairConsensus::new(vec![value; n]).with_seed(7);
        assert_eq!(c.run_honest().expect("honest").0, value);
    }
    println!("unanimous proposals are always decided verbatim (validity holds)");
}
