//! End-to-end CLI tests of crash-safe sweeps through the `fle_lab`
//! binary: checkpoint/resume, `--shard` + `merge-reports`, and (ignored,
//! release-only) a real SIGKILL mid-sweep followed by a resume that must
//! reproduce the pinned golden bytes.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn fle_lab() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fle_lab"))
}

/// Runs `fle_lab` with `args`, asserting exit success, and returns the
/// captured output.
fn run_ok(args: &[&str]) -> Output {
    let out = fle_lab().args(args).output().expect("spawn fle_lab");
    assert!(
        out.status.success(),
        "fle_lab {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A collision-free temp path that cleans up on drop (and `.tmp` beside
/// it), so a failing assertion doesn't leak state into the next run.
struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "fle_lab_cli_test_{}_{name}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().expect("temp path is valid UTF-8")
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("json.tmp"));
    }
}

const SMALL_SWEEP: &[&str] = &[
    "sweep",
    "--protocol",
    "phase",
    "--n",
    "8",
    "--trials",
    "300",
    "--seed",
    "1",
    "--threads",
    "2",
];

/// A checkpointed run prints the same bytes as the plain run and deletes
/// its checkpoint file once the output is emitted.
#[test]
fn cli_checkpointed_sweep_matches_plain_and_cleans_up() {
    let plain = run_ok(SMALL_SWEEP);
    let cp = TempPath::new("checkpointed");
    let mut args = SMALL_SWEEP.to_vec();
    args.extend_from_slice(&["--checkpoint", cp.as_str(), "--checkpoint-every", "100"]);
    let checkpointed = run_ok(&args);
    assert_eq!(checkpointed.stdout, plain.stdout);
    assert!(
        !cp.0.exists(),
        "completed run must delete its checkpoint file"
    );
}

/// Three `--shard I/3` partials folded by `merge-reports` print the same
/// bytes as the monolithic sweep — the multi-process path end to end,
/// partial files included.
#[test]
fn cli_shard_merge_matches_monolithic() {
    let monolithic = run_ok(SMALL_SWEEP);
    let mut shard_files = Vec::new();
    for i in 0..3 {
        let mut args = SMALL_SWEEP.to_vec();
        let shard = format!("{i}/3");
        args.extend_from_slice(&["--shard", &shard]);
        let out = run_ok(&args);
        let tmp = TempPath::new(&format!("shard{i}"));
        std::fs::write(&tmp.0, &out.stdout).expect("write shard file");
        shard_files.push(tmp);
    }
    // Merge out of order: the fold must not care.
    let merged = run_ok(&[
        "merge-reports",
        shard_files[2].as_str(),
        shard_files[0].as_str(),
        shard_files[1].as_str(),
    ]);
    assert_eq!(merged.stdout, monolithic.stdout);
}

/// `merge-reports` over partials whose trial ranges overlap must fail
/// naming the colliding ranges (never silently double-count), exit
/// code 2. Shards `0/2` and `0/3` of the same sweep cover `[0,150)` and
/// `[0,100)` — a strict overlap.
#[test]
fn cli_merge_reports_rejects_overlapping_ranges() {
    let mut files = Vec::new();
    for (i, shard) in ["0/2", "0/3"].iter().enumerate() {
        let mut args = SMALL_SWEEP.to_vec();
        args.extend_from_slice(&["--shard", shard]);
        let out = run_ok(&args);
        let tmp = TempPath::new(&format!("overlap{i}"));
        std::fs::write(&tmp.0, &out.stdout).expect("write shard file");
        files.push(tmp);
    }
    let out = fle_lab()
        .args(["merge-reports", files[0].as_str(), files[1].as_str()])
        .output()
        .expect("spawn fle_lab");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("overlapping trial ranges [0,100) and [0,150)"),
        "stderr must name the colliding ranges: {stderr}"
    );
    // A file listed twice is the same mistake in disguise.
    let out = fle_lab()
        .args(["merge-reports", files[0].as_str(), files[0].as_str()])
        .output()
        .expect("spawn fle_lab");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("overlapping"), "stderr: {stderr}");
}

/// `--shard` with `--format csv` must be rejected up front (partials are
/// JSON-only), exit code 2.
#[test]
fn cli_shard_rejects_csv() {
    let mut args = SMALL_SWEEP.to_vec();
    args.extend_from_slice(&["--shard", "0/3", "--format", "csv"]);
    let out = fle_lab().args(&args).output().expect("spawn fle_lab");
    assert_eq!(out.status.code(), Some(2));
}

/// An invalid spec reaches the CLI's exit-2 path as a printed error, not
/// a worker panic (satellite of the fault-containment work).
#[test]
fn cli_invalid_attack_spec_exits_2() {
    let out = fle_lab()
        .args([
            "attack-sweep",
            "--attack",
            "rushing",
            "--n",
            "16",
            "--trials",
            "10",
            "--coalition",
            "spaced:99",
        ])
        .output()
        .expect("spawn fle_lab");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("coalition"), "stderr: {stderr}");
}

/// The acceptance crash drill: SIGKILL a checkpointed 10k-trial sweep
/// mid-run, rerun the identical command, and require the resumed output
/// to hash to the monolithic golden pin. Ignored by default (release CI
/// runs it: the sweep is multi-second even there).
#[test]
#[ignore = "multi-second subprocess sweep; run explicitly in release (CI does)"]
fn sigkill_resume_reproduces_pinned_sha() {
    let cp = TempPath::new("sigkill");
    let args = [
        "sweep",
        "--protocol",
        "phase",
        "--n",
        "64",
        "--trials",
        "10000",
        "--seed",
        "1",
        "--threads",
        "1",
        "--checkpoint",
        cp.as_str(),
        "--checkpoint-every",
        "250",
    ];
    let mut child = fle_lab()
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fle_lab");
    // Wait for at least one checkpoint to land, then kill without any
    // chance of cleanup. If the sweep somehow finishes first, the resume
    // below degenerates to a fresh run — the assertion still holds.
    for _ in 0..6000 {
        if cp.0.exists() || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    child.kill().ok();
    child.wait().expect("reap child");

    let resumed = run_ok(&args);
    let report = resumed
        .stdout
        .strip_suffix(b"\n")
        .expect("report line ends with newline");
    assert_eq!(
        fle_harness::sha256_hex(report),
        "3001849b911e21739d42048ea699659cc662da9466873125127b4673124019e4",
        "resumed sweep diverged from the monolithic pin"
    );
    assert!(
        !cp.0.exists(),
        "completed resume must delete its checkpoint file"
    );
}

/// The 500-trial golden sweep, sharded across three CLI processes and
/// folded by `merge-reports`, hashes to the monolithic pin — the
/// file-level counterpart of the in-process shard test in
/// `tests/golden_outcomes.rs`. Ignored for the same cost reason.
#[test]
#[ignore = "multi-second subprocess sweeps; run explicitly in release (CI does)"]
fn cli_shard_merge_reproduces_pinned_sha() {
    let base = [
        "sweep",
        "--protocol",
        "phase",
        "--n",
        "64",
        "--trials",
        "500",
        "--seed",
        "1",
        "--threads",
        "1",
    ];
    let mut shard_files = Vec::new();
    for i in 0..3 {
        let mut args = base.to_vec();
        let shard = format!("{i}/3");
        args.extend_from_slice(&["--shard", &shard]);
        let out = run_ok(&args);
        let tmp = TempPath::new(&format!("pin_shard{i}"));
        std::fs::write(&tmp.0, &out.stdout).expect("write shard file");
        shard_files.push(tmp);
    }
    let merged = run_ok(&[
        "merge-reports",
        shard_files[1].as_str(),
        shard_files[2].as_str(),
        shard_files[0].as_str(),
    ]);
    let report = merged
        .stdout
        .strip_suffix(b"\n")
        .expect("report line ends with newline");
    assert_eq!(
        fle_harness::sha256_hex(report),
        "b48a93b6398cec11f10e77363e7e00ca7d57eeae94eaa512c600b07f78bf016c"
    );
}
