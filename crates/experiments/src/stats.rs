//! Statistics for the experiment harness: summary moments, binomial
//! confidence intervals, and a χ² uniformity test (the tool used to check
//! the *fairness* of honest executions).

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Wilson score interval for a binomial proportion at confidence `z`
/// standard deviations (z = 1.96 ≈ 95%).
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// Pearson χ² statistic and p-value for the hypothesis that `counts` are
/// uniform draws over `counts.len()` categories.
///
/// # Panics
///
/// Panics if fewer than two categories are given.
pub fn chi_square_uniform(counts: &[u64]) -> (f64, f64) {
    assert!(counts.len() >= 2, "need at least two categories");
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return (0.0, 1.0);
    }
    let expected = total as f64 / counts.len() as f64;
    let stat: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = (counts.len() - 1) as f64;
    (stat, gamma_q(dof / 2.0, stat / 2.0))
}

/// Total variation distance between the empirical distribution of
/// `counts` and the uniform distribution.
pub fn total_variation_uniform(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 0.0;
    }
    let uniform = 1.0 / counts.len() as f64;
    0.5 * counts
        .iter()
        .map(|&c| (c as f64 / total as f64 - uniform).abs())
        .sum::<f64>()
}

/// Upper regularized incomplete gamma `Q(a, x) = Γ(a, x) / Γ(a)` —
/// the χ² survival function is `Q(k/2, x/2)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes 6.2). Accurate to ~1e-10 for the ranges used here.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

fn ln_gamma(z: f64) -> f64 {
    // Lanczos approximation (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if z < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * z).sin()).ln() - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138).abs() < 0.01);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]).1, 0.0);
    }

    #[test]
    fn wilson_interval_contains_p() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.06);
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn gamma_q_known_values() {
        // Q(0.5, x/2) is the χ²₁ survival function: Q at x=3.841 ≈ 0.05.
        assert!((gamma_q(0.5, 3.841 / 2.0) - 0.05).abs() < 1e-3);
        // χ²₁₀ at 18.307 ≈ 0.05.
        assert!((gamma_q(5.0, 18.307 / 2.0) - 0.05).abs() < 1e-3);
        assert!((gamma_q(1.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_accepts_uniform_rejects_skewed() {
        let uniform = vec![100u64; 10];
        let (_, p) = chi_square_uniform(&uniform);
        assert!(p > 0.99);
        let skewed = vec![500, 100, 100, 100, 100, 100, 100, 100, 100, 100];
        let (_, p) = chi_square_uniform(&skewed);
        assert!(p < 1e-6);
    }

    #[test]
    fn tv_distance_bounds() {
        assert_eq!(total_variation_uniform(&[5, 5, 5, 5]), 0.0);
        let tv = total_variation_uniform(&[100, 0, 0, 0]);
        assert!((tv - 0.75).abs() < 1e-12);
    }
}
