//! Parallel Monte-Carlo execution over trial seeds.
//!
//! Since the `fle-harness` crate landed, this module is a façade: the
//! implementation (deterministic seed slots, worker pool, thread-count
//! independence) lives in [`fle_harness`], and every experiment rides on
//! it. `fle-lab --threads N` sets the pool size process-wide via
//! [`fle_harness::set_default_threads`].

/// Runs `f(seed)` for `seed in 0..trials`, fanning out over the worker
/// pool, and returns the results in seed order.
///
/// Every simulation in this workspace is deterministic in its seed, so
/// results are reproducible regardless of thread count. Seeds are the raw
/// trial indices — the spelling every recorded experiment table was
/// produced with. See [`fle_harness::run_batch`] for the engine-reusing
/// batch API underneath.
///
/// # Examples
///
/// ```
/// use fle_experiments::par_seeds;
///
/// let squares = par_seeds(8, |s| s * s);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_seeds<T: Send>(trials: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    fle_harness::par_seeds(trials, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = par_seeds(100, |s| s + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert!(par_seeds(0, |s| s).is_empty());
        assert_eq!(par_seeds(1, |s| s), vec![0]);
    }
}
