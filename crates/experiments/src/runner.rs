//! Parallel Monte-Carlo execution over trial seeds.

/// Runs `f(seed)` for `seed in 0..trials`, fanning out over the available
/// cores with `std::thread::scope`, and returns the results in seed order.
///
/// Every simulation in this workspace is deterministic in its seed, so
/// results are reproducible regardless of thread count.
///
/// # Examples
///
/// ```
/// use fle_experiments::par_seeds;
///
/// let squares = par_seeds(8, |s| s * s);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_seeds<T: Send>(trials: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(trials.max(1) as usize);
    if threads <= 1 || trials <= 1 {
        return (0..trials).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, piece) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in piece.iter_mut().enumerate() {
                    *slot = Some(f((t * chunk + i) as u64));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = par_seeds(100, |s| s + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert!(par_seeds(0, |s| s).is_empty());
        assert_eq!(par_seeds(1, |s| s), vec![0]);
    }
}
