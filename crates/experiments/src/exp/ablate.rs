//! Ablations of `PhaseAsyncLead`'s design choices (Section 6).
//!
//! The protocol fixes two magic quantities: the validation-value range
//! `m = 2n²` and the cutoff `l = ⌈10√n⌉`. The `e4` experiment already
//! ablates the third choice (the random `f` vs a sum). This experiment
//! isolates `m`: a deviating processor that substitutes a guess for one
//! round's validation value survives with probability *exactly* `1/m`,
//! so `m = 2n²` is precisely the paper's "guessing is negligible"
//! margin (Lemma E.19's `2n/m = 1/n` bound). Sweeping `m` down makes the
//! survival rate measurable and linear in `1/m`.

use super::fmt_rate;
use crate::{par_seeds, Table};
use fle_attacks::PhaseGuessAttack;
use fle_core::protocols::PhaseAsyncLead;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = 12usize;
    let trials: u64 = if quick { 200 } else { 1000 };
    let mut t = Table::new(
        "ablate: validation range m is exactly the guessing resistance",
        &["n", "m", "expected 1/m", "measured survival", "detected"],
    );
    let paper_m = 2 * (n as u64) * (n as u64);
    for m in [2u64, 4, 8, 32, paper_m] {
        let survived = par_seeds(trials, |seed| {
            let p = PhaseAsyncLead::new(n)
                .with_seed(seed)
                .with_fn_key(seed ^ 0xAB)
                .with_validation_range(m);
            PhaseGuessAttack::new(n / 2)
                .run(&p)
                .expect("valid position")
                .outcome
                .elected()
                .is_some()
        });
        let rate = survived.iter().filter(|&&b| b).count() as f64 / trials as f64;
        let label = if m == paper_m {
            format!("{m} (= 2n², paper)")
        } else {
            m.to_string()
        };
        t.row([
            n.to_string(),
            label,
            fmt_rate(1.0 / m as f64),
            fmt_rate(rate),
            fmt_rate(1.0 - rate),
        ]);
    }
    t.note(
        "one guessed validation value survives with probability exactly 1/m (Lemma E.19 margin)",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn survival_is_linear_in_one_over_m() {
        let t = super::run(true)[0].render();
        for line in t
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            // The m column may contain spaces ("288 (= 2n², paper)"), so
            // address the numeric columns from the right.
            let cells: Vec<&str> = line.split_whitespace().collect();
            let expect: f64 = cells[cells.len() - 3].parse().unwrap();
            let measured: f64 = cells[cells.len() - 2].parse().unwrap();
            assert!(
                (measured - expect).abs() < 0.09,
                "survival off the 1/m line: {line}"
            );
        }
    }
}
