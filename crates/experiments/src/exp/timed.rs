//! timed: adversary placement vs. asymmetric latency, and the cost of
//! leaving the FIFO reliable-link model.
//!
//! The paper proves its guarantees against an *oblivious adversarial
//! scheduler* over reliable FIFO links (Section 2): the Section 4
//! attacks control the outcome under every delivery order of that
//! model, so no latency assumption can rescue the honest majority. The
//! timed layer makes the complementary measurement possible, and it
//! splits cleanly in two:
//!
//! * **Table A** keeps the model. Constant per-link delays — however
//!   asymmetric, including a 200x-slow arc placed either over the
//!   coalition or over the honest segment — preserve per-link FIFO
//!   order, and on a unidirectional ring every node's input stream is
//!   then identical to the untimed run. Control stays at 1 in every
//!   row: adversary placement vs. latency placement is a draw, exactly
//!   as the adversarial-scheduler model demands.
//! * **Table B** leaves the model. Random per-message jitter lets
//!   messages overtake on a link (non-FIFO channels) and loss drops
//!   them outright; both void the premise the rushing schedule is
//!   built on. Under loss the collapse is geometric — every one of the
//!   `M` lossless-run messages must arrive — which the `(1-p)^M`
//!   reference column tracks.

use super::fmt_rate_ci;
use crate::Table;
use fle_attacks::AttackKind;
use fle_harness::{
    run_attack_sweep, run_attack_sweep_with_net, AttackSweep, BatchConfig, CoalitionSpec,
    FnKeySpec, LatencySpec, LinkProfile, ScheduleSpec, SeedMode, TargetSpec, TimedNetConfig,
    TrialReport,
};

/// Ring size: small enough for dense trial counts, large enough that a
/// half-ring latency arc is geometrically meaningful.
const N: usize = 16;
/// Contiguous coalition size. Members are `1..=9` (starting at 1 keeps
/// the origin honest, so the rushing plan keeps all `k` members), and
/// the lone honest segment `{10..15, 0}` has length `7 <= k - 1`, so the
/// rushing precondition (Lemma 4.1) holds — and "over the coalition" vs.
/// "over the honest arc" name disjoint arcs of the ring.
const K: usize = 9;

/// The Theorem 4.2 rushing cell, parameterized by delivery schedule.
fn spec(trials: u64, schedule: ScheduleSpec) -> AttackSweep {
    AttackSweep {
        attack: AttackKind::Rushing,
        n: N,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials,
            base_seed: 0,
            threads: 0,
        },
        coalition: CoalitionSpec::Contiguous { k: K, start: 1 },
        target: TargetSpec::SeedProduct { multiplier: 31 },
        seed_mode: SeedMode::RawIndex,
        schedule,
        fault: None,
    }
}

/// A lossless, duplicate-free link with constant delay `ns`.
fn const_link(ns: u64) -> LinkProfile {
    LinkProfile {
        latency: LatencySpec::Constant { ns },
        ..LinkProfile::default()
    }
}

/// A net that is fast everywhere except the directed ring edges in
/// `slow` (edge `i` leaves node `i`), which are 200x slower.
fn slow_arc(slow: impl Iterator<Item = usize>) -> TimedNetConfig {
    TimedNetConfig {
        default: const_link(10),
        overrides: slow.map(|e| (e, const_link(2000))).collect(),
    }
}

/// A uniform timed schedule with the given latency and loss.
fn timed(latency: LatencySpec, loss_permille: u32) -> ScheduleSpec {
    ScheduleSpec::Timed {
        latency,
        loss_permille,
        dup_permille: 0,
    }
}

/// The shared `label | Pr[w] ± ci | msgs mean` prefix of a row.
fn rate_cells(label: &str, report: &TrialReport) -> Vec<String> {
    let arm = report.attack.expect("attack sweeps carry the arm");
    vec![
        label.to_string(),
        fmt_rate_ci(arm.success_rate(report.trials), arm.ci95(report.trials)),
        format!("{:.1}", report.messages.mean),
    ]
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let trials: u64 = if quick { 30 } else { 200 };
    let fifo = spec(trials, ScheduleSpec::Fifo);
    let mut a = Table::new(
        "timed-a: rushing on A-LEADuni vs. latency placement (n=16, contiguous k=9)",
        &["scenario (FIFO links)", "Pr[w] ± ci", "msgs mean"],
    );
    for (label, report) in [
        ("untimed fifo", run_attack_sweep(&fifo).expect("valid spec")),
        (
            "timed, zero latency",
            run_attack_sweep(&spec(trials, timed(LatencySpec::ZERO, 0))).expect("valid spec"),
        ),
        (
            "const 100ns everywhere",
            run_attack_sweep(&spec(trials, timed(LatencySpec::Constant { ns: 100 }, 0)))
                .expect("valid spec"),
        ),
        (
            "slow arc over coalition",
            run_attack_sweep_with_net(&fifo, &slow_arc(1..=K)).expect("valid spec"),
        ),
        (
            "slow arc over honest seg",
            run_attack_sweep_with_net(&fifo, &slow_arc((K + 1..N).chain([0]))).expect("valid spec"),
        ),
    ] {
        a.row_vec(rate_cells(label, &report));
    }
    a.note("constant per-link delays preserve FIFO links; on a directed ring every node");
    a.note("then sees the untimed input stream, so placement never rescues the honest arc");

    let mut b = Table::new(
        "timed-b: the same attack outside the FIFO reliable-link model",
        &["scenario", "Pr[w] ± ci", "msgs mean", "(1-p)^M"],
    );
    let base_msgs = run_attack_sweep(&fifo).expect("valid spec").messages.mean;
    let jitter = run_attack_sweep(&spec(
        trials,
        timed(LatencySpec::Uniform { lo: 0, hi: 1000 }, 0),
    ))
    .expect("valid spec");
    let stalls = run_attack_sweep(&spec(
        trials,
        timed(
            LatencySpec::TwoPoint {
                lo: 10,
                hi: 1000,
                hi_permille: 50,
            },
            0,
        ),
    ))
    .expect("valid spec");
    for (label, report) in [("jitter U(0,1000)ns", jitter), ("5% stalls x100", stalls)] {
        let mut cells = rate_cells(label, &report);
        cells.push("-".to_string());
        b.row_vec(cells);
    }
    for loss in [2u32, 5, 25, 250] {
        let report =
            run_attack_sweep(&spec(trials, timed(LatencySpec::ZERO, loss))).expect("valid spec");
        let pred = (1.0 - f64::from(loss) / 1000.0).powf(base_msgs);
        let mut cells = rate_cells(&format!("loss {loss} permille"), &report);
        cells.push(format!("{pred:.3}"));
        b.row_vec(cells);
    }
    b.note("random jitter lets messages overtake on a link (non-FIFO channels); loss");
    b.note("drops them -- both leave the Sec 2 model the rushing schedule is built on");
    vec![a, b]
}

#[cfg(test)]
mod tests {
    /// Extracts the `Pr[w]` column from every data row of a rendered
    /// table (rows whose second whitespace-token parses as a rate).
    fn rates(rendered: &str) -> Vec<f64> {
        rendered
            .lines()
            .filter_map(|l| {
                let mut toks = l.split_whitespace().rev();
                toks.position(|t| t == "±" || t.starts_with('±'))?;
                l.split_whitespace()
                    .find(|t| t.starts_with("0.") || t.starts_with("1."))
                    .and_then(|t| t.parse().ok())
            })
            .collect()
    }

    #[test]
    fn placement_never_rescues_the_ring_but_leaving_the_model_does() {
        let tables = super::run(true);
        // Table A: every FIFO-preserving latency assignment — zero,
        // uniform constant, and both asymmetric 200x arcs — leaves the
        // rushing coalition in full control.
        let a = tables[0].render();
        let a_rates = rates(&a);
        assert_eq!(a_rates.len(), 5, "five placement rows rendered:\n{a}");
        for (i, r) in a_rates.iter().enumerate() {
            assert_eq!(*r, 1.0, "row {i} must keep control:\n{a}");
        }
        // Table B: non-FIFO jitter breaks the rushing schedule, and
        // success decays monotonically in the loss rate.
        let b = tables[1].render();
        let b_rates = rates(&b);
        assert_eq!(b_rates.len(), 6, "six out-of-model rows rendered:\n{b}");
        assert!(
            b_rates[0] < 0.5,
            "uniform jitter must break the FIFO-built schedule:\n{b}"
        );
        let loss = &b_rates[2..];
        for w in loss.windows(2) {
            assert!(w[0] >= w[1], "success must be monotone in loss: {loss:?}");
        }
        assert!(loss[3] < 0.2, "25% loss must break the election: {loss:?}");
    }
}
