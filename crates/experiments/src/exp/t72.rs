//! Theorem 7.2: no `ε`-`k`-resilient FLE on a `k`-simulated tree.
//!
//! Three executable pieces of evidence (the theorem quantifies over all
//! protocols, so the experiments reproduce its constructive content):
//! the Lemma F.2 dictator/favourable dichotomy verified on concrete and
//! random two-party protocols; the Claim F.5 `⌈n/2⌉` partitions on graph
//! families (Figure 2's `k = 4` among them); and the tree-node coalition
//! dictating the tree-sum FLE via the Corollary F.4 simulation.

use super::fmt_rate_ci;
use crate::Table;
use fle_harness::{run_sweep, BatchConfig, GraphSpec, SeedMode, SweepSpec, TargetSpec, TreeSweep};
use fle_topology::two_party::{dichotomy, AlternatingProtocol, Party, Verdict};
use fle_topology::{figure2_graph, Graph, TreePartition};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    // Part 1: Lemma F.2 dichotomy on two-party protocols.
    let mut lemma = Table::new(
        "t72a: Lemma F.2 dichotomy on two-party coin-toss protocols",
        &["protocol", "verdict", "verified on all inputs"],
    );
    let describe = |v: &Verdict| match v {
        Verdict::Favourable { bit, .. } => format!("favourable value {bit}"),
        Verdict::Dictator { party, .. } => format!("{party:?} is a dictator"),
    };
    let named: Vec<(String, AlternatingProtocol, usize)> = vec![
        ("xor-coin".into(), AlternatingProtocol::xor_coin(), 2),
        (
            "parity-exchange(2)".into(),
            AlternatingProtocol::parity_exchange(2),
            4,
        ),
    ];
    let random_count = if quick { 20 } else { 100 };
    let mut verdict_counts = (0usize, 0usize); // (dictator, favourable)
    for (name, p, inputs) in &named {
        let v = dichotomy(p);
        let ok = verify(p, &v, *inputs);
        lemma.row([name.clone(), describe(&v), ok.to_string()]);
    }
    for seed in 0..random_count {
        let p = AlternatingProtocol::random(seed, 4, 2, 4);
        let v = dichotomy(&p);
        assert!(verify(&p, &v, 4), "extracted strategy failed: seed={seed}");
        match v {
            Verdict::Dictator { .. } => verdict_counts.0 += 1,
            Verdict::Favourable { .. } => verdict_counts.1 += 1,
        }
    }
    lemma.row([
        format!("random x{random_count}"),
        format!(
            "{} dictators, {} favourable",
            verdict_counts.0, verdict_counts.1
        ),
        "true".to_string(),
    ]);
    lemma.note("paper: every two-party protocol has a favourable value or a dictator");

    // Part 2: Claim F.5 partitions.
    let mut f5 = Table::new(
        "t72b: k-simulated-tree partitions (Def 7.1 / Claim F.5 / Figure 2)",
        &["graph", "n", "k witnessed", "ceil(n/2)", "parts"],
    );
    let (fig2, fig2_partition) = figure2_graph();
    f5.row([
        "figure-2 (4 cliques)".to_string(),
        fig2.len().to_string(),
        fig2_partition.k().to_string(),
        fig2.len().div_ceil(2).to_string(),
        fig2_partition.parts().len().to_string(),
    ]);
    let families: Vec<(&str, Graph)> = vec![
        ("path", Graph::path(12)),
        ("cycle", Graph::cycle(12)),
        ("complete", Graph::complete(10)),
        ("grid 3x4", Graph::grid(3, 4)),
        ("random tree", Graph::random_tree(12, 3)),
        ("random G(n,p)", Graph::random_connected(12, 0.25, 4)),
    ];
    for (name, g) in &families {
        let p = TreePartition::claim_f5(g);
        f5.row([
            name.to_string(),
            g.len().to_string(),
            p.k().to_string(),
            g.len().div_ceil(2).to_string(),
            p.parts().len().to_string(),
        ]);
    }
    f5.note("trees additionally admit k = 1 partitions (every graph family satisfies F.5)");

    // Part 3: the dictating coalition on the simulated tree, one
    // tree-dictator sweep per graph family (targets `(seed * 5) mod n`
    // over the recorded raw-index seed stream).
    let trials = if quick { 16u64 } else { 64 };
    let mut dict = Table::new(
        "t72c: tree-node coalition dictates tree-sum FLE (Cor F.4)",
        &["graph", "coalition size k", "targets forced", "Pr[w] ± ci"],
    );
    let entries: Vec<(String, GraphSpec)> = vec![
        ("figure-2 (k=4)".to_string(), GraphSpec::Figure2),
        ("path (F.5)".to_string(), GraphSpec::Path(12)),
        ("cycle (F.5)".to_string(), GraphSpec::Cycle(12)),
        ("complete (F.5)".to_string(), GraphSpec::Complete(10)),
        (
            "grid 3x4 (F.5)".to_string(),
            GraphSpec::Grid { rows: 3, cols: 4 },
        ),
        (
            "random tree (F.5)".to_string(),
            GraphSpec::RandomTree { n: 12, seed: 3 },
        ),
        (
            "random G(n,p) (F.5)".to_string(),
            GraphSpec::RandomConnected {
                n: 12,
                permille: 250,
                seed: 4,
            },
        ),
    ];
    for (name, graph) in entries {
        let (_, partition) = graph.resolve().expect("valid graph family");
        let report = run_sweep(&SweepSpec::TreeDictator(TreeSweep {
            graph,
            batch: BatchConfig {
                trials,
                base_seed: 0,
                threads: 0,
            },
            target: TargetSpec::SeedProduct { multiplier: 5 },
            seed_mode: SeedMode::RawIndex,
        }))
        .expect("valid spec");
        let arm = report.attack.expect("tree sweeps carry the arm");
        dict.row([
            name,
            partition.parts()[0].len().to_string(),
            trials.to_string(),
            fmt_rate_ci(arm.success_rate(report.trials), arm.ci95(report.trials)),
        ]);
    }
    dict.note("the coalition is one part of the partition: at most k real processors");
    vec![lemma, f5, dict]
}

fn verify(p: &AlternatingProtocol, v: &Verdict, inputs: usize) -> bool {
    match v {
        Verdict::Favourable { bit, by_a, by_b } => (0..inputs).all(|i| {
            p.run_against(Party::A, by_a, i) == *bit && p.run_against(Party::B, by_b, i) == *bit
        }),
        Verdict::Dictator {
            party,
            force_0,
            force_1,
        } => (0..inputs).all(|i| {
            p.run_against(*party, force_0, i) == 0 && p.run_against(*party, force_1, i) == 1
        }),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_three_tables_hold() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 3);
        let lemma = tables[0].render();
        assert!(lemma.contains("B is a dictator")); // xor-coin
        assert!(!lemma.contains("false"));
        let dict = tables[2].render();
        let data_rows: Vec<&str> = dict
            .lines()
            .skip(3)
            .filter(|l| !l.starts_with("note") && !l.is_empty())
            .collect();
        assert!(!data_rows.is_empty());
        for line in data_rows {
            assert!(line.contains("1.000"), "dictator must win: {line}");
        }
    }
}
