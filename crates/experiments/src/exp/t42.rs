//! Theorem 4.2: the equal-spacing rushing attack on `A-LEADuni` crosses
//! over exactly at `k = √n`.
//!
//! Paper claim: with every segment `l_j ≤ k − 1` (equal spacing gives
//! this iff `k ≥ √n`) the coalition controls the outcome; below the
//! threshold the attack's precondition fails. Measured: feasibility and
//! success rate (with Wilson 95% CI) as `k/√n` sweeps across 1, each
//! cell one [`AttackSweep`] through the harness's cached runners.

use super::fmt_rate_ci;
use crate::Table;
use fle_attacks::{AttackKind, RushingAttack};
use fle_core::protocols::ALeadUni;
use fle_core::Coalition;
use fle_harness::{
    run_sweep, AttackSweep, BatchConfig, CoalitionSpec, FnKeySpec, ScheduleSpec, SeedMode,
    SweepSpec, TargetSpec,
};

/// The [`AttackSweep`] behind one table cell: rushing on `A-LEADuni` of
/// size `n` with the equally spaced size-`k` coalition, target
/// `(seed * 31) mod n`, seeds being the raw trial indices (the stream
/// the recorded tables used).
fn cell_spec(n: usize, k: usize, trials: u64) -> SweepSpec {
    SweepSpec::Attack(AttackSweep {
        attack: AttackKind::Rushing,
        n,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials,
            base_seed: 0,
            threads: 0,
        },
        coalition: CoalitionSpec::EquallySpaced { k, offset: 1 },
        target: TargetSpec::SeedProduct { multiplier: 31 },
        seed_mode: SeedMode::RawIndex,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[64, 144] } else { &[64, 256, 1024] };
    let trials: u64 = if quick { 20 } else { 60 };
    let ratios = [0.5, 0.75, 1.0, 1.25, 1.5];
    let mut t = Table::new(
        "t42: equal-spacing rushing attack on A-LEADuni (Lemma 4.1 / Thm 4.2)",
        &["n", "k", "k/sqrt(n)", "max l_j", "feasible", "Pr[w] ± ci"],
    );
    for &n in sizes {
        let sqrt_n = (n as f64).sqrt();
        for r in ratios {
            let k = ((r * sqrt_n).round() as usize).clamp(1, n - 1);
            let coalition = Coalition::equally_spaced(n, k, 1).expect("valid");
            let feasible = RushingAttack::new(0)
                .plan(&ALeadUni::new(n), &coalition)
                .is_ok();
            let report = run_sweep(&cell_spec(n, k, trials)).expect("valid spec");
            let arm = report.attack.expect("attack sweeps carry the arm");
            // The plan precheck and the sweep's per-trial feasibility must
            // agree: rushing feasibility depends only on the layout.
            assert_eq!(feasible, arm.infeasible == 0);
            t.row([
                n.to_string(),
                k.to_string(),
                format!("{:.2}", k as f64 / sqrt_n),
                coalition.max_distance().to_string(),
                feasible.to_string(),
                fmt_rate_ci(arm.success_rate(report.trials), arm.ci95(report.trials)),
            ]);
        }
    }
    t.note("paper: feasible (and Pr[w] = 1) exactly when max l_j <= k - 1, i.e. k >= sqrt(n)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn crossover_is_at_sqrt_n() {
        let t = &super::run(true)[0];
        let s = t.render();
        // Below-threshold rows are infeasible, at/above succeed.
        assert!(s.contains("false"));
        assert!(s.contains("true"));
        for line in s.lines().filter(|l| l.contains("true")) {
            assert!(line.contains("1.000"), "feasible row must win: {line}");
        }
    }
}
