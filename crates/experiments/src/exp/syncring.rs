//! Section 1.1 (synchronous ring): lock-step rounds alone make the ring
//! election `(n − 1)`-resilient.
//!
//! Paper claim: for a synchronous ring Abraham et al. give an optimal
//! `n − 1`-resilient protocol — synchrony forces every processor to
//! commit its secret in round 0, simultaneously, so the Claim B.1 rushing
//! adversary is simply *caught* (its successor sees an empty inbox).
//! Measured: detection of waiting and of forward-corruption, and the
//! unbiasedness of the outcome against an `n − 1` coalition, contrasted
//! with the same coalition's total control over the asynchronous
//! `Basic-LEAD`.

use super::fmt_rate;
use crate::{par_seeds, Table};
use fle_attacks::BasicSingleAttack;
use fle_core::protocols::{BasicLead, SyncRingCorruptor, SyncRingLead, SyncRingWaiter};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let trials: u64 = if quick { 60 } else { 300 };
    let mut detection = Table::new(
        "syncring: deviations are detected, not rewarded",
        &[
            "n",
            "deviation",
            "detected (FAIL) rate",
            "async contrast: Pr[w]",
        ],
    );
    let sizes: &[usize] = if quick { &[8] } else { &[8, 16, 32] };
    for &n in sizes {
        // Waiting adversary on the synchronous ring: always detected.
        let wait_fails = par_seeds(trials, |seed| {
            let p = SyncRingLead::new(n).with_seed(seed);
            p.run_with(vec![(n / 2, Box::new(SyncRingWaiter))])
                .outcome
                .is_fail()
        });
        // The same "wait for everyone" idea on the asynchronous ring is
        // the Claim B.1 total-control attack.
        let async_wins = par_seeds(trials, |seed| {
            let p = BasicLead::new(n).with_seed(seed);
            let w = seed % n as u64;
            BasicSingleAttack::new(n / 2, w)
                .run(&p)
                .expect("feasible")
                .outcome
                .elected()
                == Some(w)
        });
        detection.row([
            n.to_string(),
            "wait-for-secrets".to_string(),
            fmt_rate(wait_fails.iter().filter(|&&b| b).count() as f64 / trials as f64),
            fmt_rate(async_wins.iter().filter(|&&b| b).count() as f64 / trials as f64),
        ]);
        let corrupt_fails = par_seeds(trials, |seed| {
            let p = SyncRingLead::new(n).with_seed(seed);
            let round = 1 + (seed as usize % (n - 1));
            let bad = SyncRingCorruptor::new(&p, n / 3, round);
            p.run_with(vec![(n / 3, Box::new(bad))]).outcome.is_fail()
        });
        detection.row([
            n.to_string(),
            "corrupt-forward".to_string(),
            fmt_rate(corrupt_fails.iter().filter(|&&b| b).count() as f64 / trials as f64),
            "-".to_string(),
        ]);
    }
    detection
        .note("synchrony detects silence; asynchrony lets the same strategy control the outcome");

    let mut unbias = Table::new(
        "syncring: n-1 fixed-value coalition cannot bias the lone honest processor",
        &["n", "trials", "max leader freq", "uniform 1/n"],
    );
    let n = 8usize;
    let bias_trials: u64 = if quick { 400 } else { 2000 };
    let winners = par_seeds(bias_trials, |seed| {
        let p = SyncRingLead::new(n).with_seed(seed);
        // The coalition pins its secrets to fixed values (drawn once from
        // a constant seed) — its best commitment-compatible strategy,
        // since round 0 forces it to send before seeing anything.
        let pinned = SyncRingLead::new(n).with_seed(0xC0A11);
        let overrides = (1..n)
            .map(|id| {
                (
                    id,
                    Box::new(pinned.honest_node(id)) as Box<dyn ring_sim::sync::SyncNode<u64>>,
                )
            })
            .collect();
        p.run_with(overrides).outcome.elected().expect("valid run")
    });
    let mut counts = vec![0u64; n];
    for w in winners {
        counts[w as usize] += 1;
    }
    let max_freq = counts.iter().copied().max().unwrap_or(0) as f64 / bias_trials as f64;
    unbias.row([
        n.to_string(),
        bias_trials.to_string(),
        fmt_rate(max_freq),
        fmt_rate(1.0 / n as f64),
    ]);

    vec![detection, unbias]
}

#[cfg(test)]
mod tests {
    #[test]
    fn synchrony_detects_what_asynchrony_rewards() {
        let tables = super::run(true);
        let detection = tables[0].render();
        for line in detection.lines().filter(|l| l.contains("wait-for-secrets")) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cells[2], "1.000", "waiting must always be detected: {line}");
            assert_eq!(cells[3], "1.000", "async contrast must always win: {line}");
        }
        for line in detection.lines().filter(|l| l.contains("corrupt-forward")) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(
                cells[2], "1.000",
                "corruption must always be detected: {line}"
            );
        }
        let unbias = tables[1].render();
        let line = unbias
            .lines()
            .find(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .expect("data row");
        let cells: Vec<&str> = line.split_whitespace().collect();
        let max_freq: f64 = cells[2].parse().unwrap();
        assert!(max_freq < 0.25, "coalition biased the outcome: {line}");
    }
}
