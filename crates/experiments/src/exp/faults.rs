//! faults: protocol degradation under crash-stop faults and recovery.
//!
//! The paper's game (Section 2) has no crash faults: rational agents
//! deviate to *win*, never to abstain, and every guarantee is stated for
//! executions where all `n` processors keep running. This experiment
//! measures what each protocol loses when that assumption is dropped —
//! crash-stop faults drawn uniformly over nodes and instants — and
//! whether an adversary could *exploit* a crash instead of merely
//! suffering it:
//!
//! * **Table A** sweeps the crash count `c` for all four reproduction
//!   protocols and the classical Chang–Roberts / Itai–Rodeh baselines.
//!   On a unidirectional ring any crash-stop severs the only path, but
//!   it only kills an election it lands *inside* — so survival tracks
//!   exposure: the message-frugal baselines usually finish before the
//!   drawn instant, while the fair protocols' full `2n²`-delivery
//!   elections are vulnerable across essentially the whole window.
//! * **Table B** is the recovery ladder: the same single-crash sweep
//!   with crash-recover after a delay. Survival is monotone in the
//!   restart speed, because a recovered node resumes with its last
//!   state and only the deliveries during its downtime are lost.
//! * **Table C** asks whether the Theorem 4.2 rushing coalition
//!   *benefits* from a well-placed crash. It cannot: the coalition
//!   already controls the outcome with probability 1, and any crash
//!   that fires before the election completes only destroys the win —
//!   whether the victim is a coalition member or an honest relay.

use super::fmt_rate_ci;
use crate::Table;
use fle_attacks::RushingAttack;
use fle_core::protocols::{run_ring_in, ALeadUni};
use fle_core::Coalition;
use fle_harness::{
    run_sweep, trial_seed, wilson_ci95, BatchConfig, CrashInstant, FaultSpec, HonestSweep,
    ProtocolKind, ScheduleSpec, SweepSpec,
};
use ring_sim::{Engine, FaultConfig, FaultPlan, Outcome, Topology};

/// Ring size shared by every table (matches the `timed` experiment).
const N: usize = 16;
/// Crash window: the nominal `2n²` delivery budget of an election at
/// `n = 16` — every drawn fault fires while the election is in flight.
const WINDOW: u64 = 2 * (N as u64) * (N as u64);
/// Crash counts swept in Table A.
const CRASHES: [u64; 4] = [0, 1, 2, 3];

/// The honest sweep of `protocol` under `c` random crash-stop faults.
fn faulty_sweep(protocol: ProtocolKind, trials: u64, c: u64, recover: Option<u64>) -> SweepSpec {
    SweepSpec::Honest(HonestSweep {
        protocol,
        n: N,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads: 0,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: (c > 0).then_some(FaultSpec {
            crashes: c,
            window: CrashInstant::Deliveries(WINDOW),
            recover,
        }),
    })
}

/// `"rate ±ci (msgs)"` — survival with its Wilson 95% half-width plus the
/// mean message count, the overhead axis of Table A.
fn cell(elected: u64, trials: u64, msgs_mean: f64) -> String {
    format!(
        "{} ({msgs_mean:.1})",
        fmt_rate_ci(
            elected as f64 / trials.max(1) as f64,
            wilson_ci95(elected, trials)
        )
    )
}

/// Survival cells of one baseline protocol across the crash counts.
/// Baselines run one `SimBuilder` trial at a time (no harness fast path),
/// drawing each trial's plan from the same salted per-trial fault stream
/// the sweeps use.
fn baseline_row(
    label: &str,
    trials: u64,
    run: impl Fn(u64, &FaultPlan) -> Outcome2,
) -> Vec<String> {
    let mut cells = vec![label.to_string()];
    let mut plan = FaultPlan::none();
    for c in CRASHES {
        let cfg = FaultConfig {
            crashes: c,
            window: CrashInstant::Deliveries(WINDOW),
            recover_after: None,
        };
        let mut elected = 0u64;
        let mut msgs = 0u64;
        for i in 0..trials {
            let seed = trial_seed(1, i);
            plan.draw_into(&cfg, N, seed);
            let out = run(seed, &plan);
            elected += u64::from(out.elected);
            msgs += out.messages;
        }
        cells.push(cell(elected, trials, msgs as f64 / trials.max(1) as f64));
    }
    cells
}

/// The two facts a baseline trial reports.
struct Outcome2 {
    elected: bool,
    messages: u64,
}

/// One rushing run against an explicit fault plan, through a reusable
/// engine (the same `run_ring_in` path the batch harness uses).
fn rushing_with_plan(
    engine: &mut Engine<u64>,
    seed: u64,
    coalition: &Coalition,
    target: u64,
    plan: &FaultPlan,
) -> Outcome2 {
    let protocol = ALeadUni::new(N).with_seed(seed);
    let nodes = RushingAttack::new(target)
        .adversary_nodes(&protocol, coalition)
        .expect("feasible layout");
    engine.set_fault_plan(plan);
    let exec = run_ring_in(
        engine,
        N,
        |id| protocol.honest_node(id),
        nodes,
        &protocol.wakes(),
    );
    Outcome2 {
        elected: exec.outcome == Outcome::Elected(target),
        messages: exec.stats.total_sent(),
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let trials: u64 = if quick { 40 } else { 300 };

    // Table A: survival (and message mean) vs. crash count.
    let mut a = Table::new(
        &format!("faults-a: survival under c random crash-stop faults (n={N}, window {WINDOW} deliveries)"),
        &[
            "protocol",
            "c=0: Pr[elect] ±ci (msgs)",
            "c=1",
            "c=2",
            "c=3",
        ],
    );
    for (label, protocol) in [
        ("Basic-LEAD", ProtocolKind::BasicLead),
        ("A-LEADuni", ProtocolKind::ALeadUni),
        ("PhaseAsyncLead", ProtocolKind::PhaseAsyncLead),
        ("PhaseSumLead", ProtocolKind::PhaseSumLead),
    ] {
        let mut cells = vec![label.to_string()];
        for c in CRASHES {
            let report = run_sweep(&faulty_sweep(protocol, trials, c, None)).expect("valid spec");
            cells.push(cell(report.elected(), report.trials, report.messages.mean));
        }
        a.row_vec(cells);
    }
    a.row_vec(baseline_row("Chang-Roberts", trials, |seed, plan| {
        let ids = fle_baselines::random_ids(N, seed);
        let exec = fle_baselines::ChangRoberts::new(ids).run_with_faults(plan);
        Outcome2 {
            elected: exec.outcome.elected().is_some(),
            messages: exec.stats.total_sent(),
        }
    }));
    a.row_vec(baseline_row("Itai-Rodeh", trials, |seed, plan| {
        let exec = fle_baselines::ItaiRodeh::new(N, seed).run_with_faults(plan);
        Outcome2 {
            elected: exec.outcome.elected().is_some(),
            messages: exec.stats.total_sent(),
        }
    }));
    a.note("any crash-stop severs the unidirectional ring, but it only kills an election");
    a.note("it lands inside: survival tracks exposure. Message-frugal baselines finish");
    a.note("before most drawn instants; the fair protocols' longer elections (up to 2n^2");
    a.note("deliveries) pay for fairness with a near-total window of vulnerability");

    // Table B: the recovery ladder on PhaseAsyncLead, c = 1.
    let mut b = Table::new(
        &format!("faults-b: crash-recover ladder, PhaseAsyncLead, c=1 (n={N})"),
        &["recovery delay (deliveries)", "Pr[elect] ±ci", "msgs mean"],
    );
    for (label, recover) in [
        ("crash-stop (never)", None),
        ("256", Some(256)),
        ("64", Some(64)),
        ("8", Some(8)),
    ] {
        let report = run_sweep(&faulty_sweep(
            ProtocolKind::PhaseAsyncLead,
            trials,
            1,
            recover,
        ))
        .expect("valid spec");
        b.row_vec(vec![
            label.to_string(),
            fmt_rate_ci(
                report.elected() as f64 / report.trials.max(1) as f64,
                wilson_ci95(report.elected(), report.trials),
            ),
            format!("{:.1}", report.messages.mean),
        ]);
    }
    b.note("a recovered node resumes from its last state; only deliveries during the");
    b.note("downtime are lost, so survival is monotone in the restart speed");

    // Table C: can the rushing coalition exploit a well-placed crash?
    let coalition = Coalition::equally_spaced(N, 7, 1).expect("k=7 fits n=16");
    let target = 3u64;
    let honest_relay = (0..N)
        .find(|&p| p != 0 && !coalition.contains(p))
        .expect("some honest non-origin node");
    let coalition_member = coalition.positions()[1];
    let mut c_table = Table::new(
        &format!(
            "faults-c: rushing coalition vs. crash placement (n={N}, spaced k=7, target {target})"
        ),
        &["crash placement", "Pr[target wins] ±ci", "msgs mean"],
    );
    let mut engine: Engine<u64> = Engine::new(Topology::ring(N));
    for (label, plan) in [
        ("no crash", FaultPlan::none()),
        (
            "coalition member @0",
            FaultPlan::none().with_crash(coalition_member, 0, None),
        ),
        (
            "honest relay @0",
            FaultPlan::none().with_crash(honest_relay, 0, None),
        ),
        (
            "honest relay @4n",
            FaultPlan::none().with_crash(honest_relay, 4 * N as u64, None),
        ),
        (
            "after the election (never fires)",
            FaultPlan::none().with_crash(honest_relay, u64::MAX, None),
        ),
    ] {
        let mut wins = 0u64;
        let mut msgs = 0u64;
        for i in 0..trials {
            let out = rushing_with_plan(&mut engine, trial_seed(1, i), &coalition, target, &plan);
            wins += u64::from(out.elected);
            msgs += out.messages;
        }
        c_table.row_vec(vec![
            label.to_string(),
            fmt_rate_ci(
                wins as f64 / trials.max(1) as f64,
                wilson_ci95(wins, trials),
            ),
            format!("{:.1}", msgs as f64 / trials.max(1) as f64),
        ]);
    }
    c_table.note("the coalition already wins with probability 1; a crash that fires mid-");
    c_table.note("election only destroys that win, wherever it lands -- crashes are never");
    c_table.note("a weapon for a rushing adversary, only a hazard");
    vec![a, b, c_table]
}

#[cfg(test)]
mod tests {
    /// Extracts every `Pr` rate from a rendered table's data rows.
    fn rates(rendered: &str) -> Vec<f64> {
        rendered
            .lines()
            .filter(|l| l.contains('±'))
            .flat_map(|l| {
                l.split_whitespace()
                    .filter(|t| {
                        (t.starts_with("0.") || t.starts_with("1."))
                            && t.len() == 5
                            && t.parse::<f64>().is_ok()
                    })
                    .map(|t| t.parse().unwrap())
                    .collect::<Vec<f64>>()
            })
            .collect()
    }

    #[test]
    fn crashes_degrade_everyone_and_never_arm_the_coalition() {
        let tables = super::run(true);
        // Table A: 6 protocol rows x 4 crash counts. Fault-free columns
        // are certain elections; 3 crashes in a 16-ring collapse all.
        let a = tables[0].render();
        let a_rates = rates(&a);
        assert_eq!(a_rates.len(), 24, "6 rows x 4 crash counts:\n{a}");
        for row in a_rates.chunks(4) {
            assert_eq!(row[0], 1.0, "fault-free elections are certain:\n{a}");
            assert!(
                row[3] < row[0],
                "three crashes must cost survival: {row:?}\n{a}"
            );
        }
        // Table B: survival is monotone in restart speed.
        let b = tables[1].render();
        let b_rates = rates(&b);
        assert_eq!(b_rates.len(), 4, "four recovery rows:\n{b}");
        for w in b_rates.windows(2) {
            assert!(
                w[0] <= w[1],
                "faster recovery must not cost survival: {b_rates:?}\n{b}"
            );
        }
        assert!(
            b_rates[3] > b_rates[0],
            "fast recovery must rescue elections: {b_rates:?}\n{b}"
        );
        // Table C: the coalition wins surely without a crash (and with a
        // never-firing one); any mid-election crash only loses.
        let c = tables[2].render();
        let c_rates = rates(&c);
        assert_eq!(c_rates.len(), 5, "five placement rows:\n{c}");
        assert_eq!(c_rates[0], 1.0, "rushing wins surely:\n{c}");
        assert_eq!(
            c_rates[4], 1.0,
            "a never-firing crash changes nothing:\n{c}"
        );
        for (i, r) in c_rates.iter().enumerate() {
            assert!(
                *r <= c_rates[0],
                "row {i}: a crash must never benefit the coalition:\n{c}"
            );
        }
        assert!(
            c_rates[1] < 1.0 && c_rates[2] < 1.0,
            "an immediate crash anywhere destroys the election:\n{c}"
        );
    }
}
