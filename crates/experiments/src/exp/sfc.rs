//! Section 1.1 contrast: synchrony makes fair leader election trivially
//! `(n − 1)`-resilient.
//!
//! Paper context: Abraham et al. solve the synchronous fully connected
//! (and ring) scenarios optimally — every processor commits its secret
//! simultaneously, so waiting is detectable and a single honest
//! processor's randomness keeps the election uniform against any
//! complying coalition of `n − 1`. The same wait-and-cancel move that
//! controls `Basic-LEAD` with probability 1 is caught with probability 1
//! here. Everything hard in this repository exists because asynchrony
//! removes exactly this detection power.

use super::fmt_rate;
use crate::stats::chi_square_uniform;
use crate::{par_seeds, Table};
use fle_attacks::BasicSingleAttack;
use fle_core::protocols::{BasicLead, SyncFixedValue, SyncLead, SyncWaitAndCancel};
use ring_sim::sync::SyncNode;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 8 } else { 16 };
    let trials: u64 = if quick { 1500 } else { 6000 };

    let mut t = Table::new(
        "sfc: wait-and-cancel across the synchrony boundary",
        &[
            "network",
            "protocol",
            "adversary",
            "Pr[target]",
            "FAIL rate",
        ],
    );
    // Asynchronous: Claim B.1 wins with probability 1.
    let async_wins = par_seeds(200, |seed| {
        let p = BasicLead::new(n).with_seed(seed);
        BasicSingleAttack::new(2, 5)
            .run(&p)
            .unwrap()
            .outcome
            .elected()
            == Some(5)
    });
    let rate = async_wins.iter().filter(|&&b| b).count() as f64 / 200.0;
    t.row([
        "asynchronous ring".to_string(),
        "Basic-LEAD".to_string(),
        "wait-and-cancel (k=1)".to_string(),
        fmt_rate(rate),
        fmt_rate(0.0),
    ]);
    // Synchronous: the identical move is detected every time.
    let sync_fails = par_seeds(200, |seed| {
        let p = SyncLead::new(n).with_seed(seed);
        p.run_with(vec![(2, Box::new(SyncWaitAndCancel::new(n, 5)))])
            .outcome
            .is_fail()
    });
    let fail_rate = sync_fails.iter().filter(|&&b| b).count() as f64 / 200.0;
    t.row([
        "synchronous complete".to_string(),
        "SyncLead".to_string(),
        "wait-and-cancel (k=1)".to_string(),
        fmt_rate(0.0),
        fmt_rate(fail_rate),
    ]);
    t.note("paper Sec 1.1: synchrony detects silence, so commitment is free");

    // n−1 complying adversaries cannot bias the synchronous election.
    let outcomes = par_seeds(trials, |seed| {
        let p = SyncLead::new(n).with_seed(seed);
        let overrides = (1..n)
            .map(|id| {
                let node: Box<dyn SyncNode<u64>> = Box::new(SyncFixedValue::new(n, 0));
                (id, node)
            })
            .collect();
        p.run_with(overrides)
            .outcome
            .elected()
            .expect("complying coalition never fails")
    });
    let mut counts = vec![0u64; n];
    for o in outcomes {
        counts[o as usize] += 1;
    }
    let (chi2, pval) = chi_square_uniform(&counts);
    let mut u = Table::new(
        "sfc: SyncLead uniformity under an (n-1)-coalition of fixed values",
        &["n", "k", "trials", "chi2", "p-value"],
    );
    u.row([
        n.to_string(),
        (n - 1).to_string(),
        trials.to_string(),
        format!("{chi2:.1}"),
        format!("{pval:.3}"),
    ]);
    u.note("one honest processor's randomness suffices: the coalition gains nothing");
    vec![t, u]
}

#[cfg(test)]
mod tests {
    #[test]
    fn synchrony_detects_what_asynchrony_cannot() {
        let tables = super::run(true);
        let t = tables[0].render();
        let async_row = t.lines().find(|l| l.starts_with("asynchronous")).unwrap();
        assert!(async_row.contains("1.000"));
        let sync_row = t.lines().find(|l| l.starts_with("synchronous")).unwrap();
        assert!(sync_row.trim_end().ends_with("1.000"));
        let u = tables[1].render();
        let p: f64 = u
            .lines()
            .nth(3)
            .and_then(|l| l.split_whitespace().nth(4))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(p > 0.001, "uniformity rejected: {u}");
    }
}
