//! The experiment implementations, one module per paper result.

pub mod ablate;
pub mod apph;
pub mod b1;
pub mod c47;
pub mod d1;
pub mod e4;
pub mod exact;
pub mod faults;
pub mod fig1;
pub mod fullinfo;
pub mod msg;
pub mod rename;
pub mod sfc;
pub mod shamir;
pub mod sync;
pub mod syncring;
pub mod t42;
pub mod t43;
pub mod t51;
pub mod t61;
pub mod t72;
pub mod t81;
pub mod tc1;
pub mod timed;

/// Formats a probability/rate to three decimals.
pub(crate) fn fmt_rate(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a signed epsilon to four decimals.
pub(crate) fn fmt_eps(x: f64) -> String {
    format!("{x:+.4}")
}

/// Formats an attack success rate with its Wilson 95% half-width, as
/// reported by an attack sweep's [`fle_harness::AttackSummary`] arm:
/// `"0.950 ±0.043"`.
pub(crate) fn fmt_rate_ci(rate: f64, ci: (f64, f64)) -> String {
    format!("{rate:.3} ±{:.3}", (ci.1 - ci.0) / 2.0)
}
