//! Exact verification on enumerable input spaces: for tiny rings the
//! paper's probability space `χ = [n]^{n−k}` is small enough to fold over
//! completely, turning the fairness definition, Claim B.1, and Lemma 2.4
//! into *integer identities* instead of statistical estimates.
//!
//! Measured: exact per-leader counts for honest `Basic-LEAD` and
//! `A-LEADuni` (must all equal `|χ|/n`), the exact forcing probability of
//! the Claim B.1 single adversary (must be 1), and the exact expected
//! utilities realizing both directions of Lemma 2.4.

use crate::Table;
use fle_attacks::BasicSingleAttack;
use fle_core::exact::{exact_distribution, ExactDistribution};
use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol};

/// Exact honest distribution of `Basic-LEAD` over `[n]^n`.
fn basic_honest(n: usize) -> ExactDistribution {
    let free: Vec<usize> = (0..n).collect();
    exact_distribution(n, &free, |values| {
        BasicLead::new(n)
            .with_values(values.to_vec())
            .run_honest()
            .outcome
    })
}

/// Exact honest distribution of `A-LEADuni` over `[n]^n`.
fn a_lead_honest(n: usize) -> ExactDistribution {
    let free: Vec<usize> = (0..n).collect();
    exact_distribution(n, &free, |values| {
        ALeadUni::new(n)
            .with_values(values.to_vec())
            .run_honest()
            .outcome
    })
}

/// Exact distribution of `Basic-LEAD` under the Claim B.1 adversary at
/// position `adv` forcing `target`, over the honest space `[n]^{n−1}`.
fn basic_attacked(n: usize, adv: usize, target: u64) -> ExactDistribution {
    let free: Vec<usize> = (0..n).filter(|&p| p != adv).collect();
    exact_distribution(n, &free, |values| {
        let protocol = BasicLead::new(n).with_values(values.to_vec());
        BasicSingleAttack::new(adv, target)
            .run(&protocol)
            .expect("single adversary is always feasible")
            .outcome
    })
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut honest = Table::new(
        "exact: honest distributions over the full input space",
        &[
            "protocol",
            "n",
            "|chi|",
            "per-leader count",
            "exactly uniform",
        ],
    );
    let sizes: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5] };
    for &n in sizes {
        let d = basic_honest(n);
        honest.row([
            "Basic-LEAD".to_string(),
            n.to_string(),
            d.total.to_string(),
            (d.total / n as u64).to_string(),
            d.is_exactly_uniform().to_string(),
        ]);
        let d = a_lead_honest(n);
        honest.row([
            "A-LEADuni".to_string(),
            n.to_string(),
            d.total.to_string(),
            (d.total / n as u64).to_string(),
            d.is_exactly_uniform().to_string(),
        ]);
    }

    let mut attack = Table::new(
        "exact: Claim B.1 single adversary over the whole honest space",
        &["n", "adv", "target", "Pr[target]", "fails"],
    );
    let n = if quick { 4 } else { 5 };
    for adv in [0usize, n - 1] {
        for target in [0u64, n as u64 - 1] {
            let d = basic_attacked(n, adv, target);
            attack.row([
                n.to_string(),
                adv.to_string(),
                target.to_string(),
                format!("{:.6}", d.counts[target as usize] as f64 / d.total as f64),
                d.fails.to_string(),
            ]);
        }
    }
    attack.note("paper: Pr(outcome = w) = 1 — verified on every input, not sampled");

    let mut lemma = Table::new(
        "exact: Lemma 2.4 translation on exact numbers",
        &["direction", "epsilon", "bound", "measured", "holds"],
    );
    {
        // Unbias -> resilience: E_D[u_p] <= E_P[u_p] + n*eps for the
        // indicator utility of the forced target.
        let n = 4usize;
        let target = 2u64;
        let attacked = basic_attacked(n, 0, target);
        let honest_d = basic_honest(n);
        let mut utility = vec![0.0; n];
        utility[target as usize] = 1.0;
        let eps = attacked.epsilon();
        let lhs = attacked.expected_utility(&utility);
        let rhs = honest_d.expected_utility(&utility) + n as f64 * eps;
        lemma.row([
            "unbiased => (n*eps)-resilient".to_string(),
            format!("{eps:.4}"),
            format!("{rhs:.4}"),
            format!("{lhs:.4}"),
            (lhs <= rhs + 1e-9).to_string(),
        ]);
        // Resilience -> unbias: Pr_D[target] <= 1/n + eps where eps is the
        // utility gain of the coalition member.
        let gain = lhs - honest_d.expected_utility(&utility);
        let pr = attacked.counts[target as usize] as f64 / attacked.total as f64;
        lemma.row([
            "resilient => unbiased".to_string(),
            format!("{gain:.4}"),
            format!("{:.4}", 1.0 / n as f64 + gain),
            format!("{pr:.4}"),
            (pr <= 1.0 / n as f64 + gain + 1e-9).to_string(),
        ]);
    }

    vec![honest, attack, lemma]
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_claims_hold() {
        let tables = super::run(true);
        let honest = tables[0].render();
        for line in honest.lines().filter(|l| l.contains("LEAD")) {
            assert!(line.trim_end().ends_with("true"), "{line}");
        }
        let attack = tables[1].render();
        for line in attack
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            assert!(line.contains("1.000000"), "exact forcing must be 1: {line}");
        }
        let lemma = tables[2].render();
        for line in lemma.lines().filter(|l| l.contains("=>")) {
            assert!(line.trim_end().ends_with("true"), "{line}");
        }
    }
}
