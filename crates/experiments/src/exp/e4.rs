//! Appendix E.4: why `PhaseAsyncLead` needs a random function — phase
//! validation with a *sum* output falls to `k = 4` adversaries.
//!
//! Paper claim: four adversaries relay partial sums through the two
//! rounds they validate and control the outcome of `PhaseSumLead`
//! completely; the identical coalition is powerless against
//! `PhaseAsyncLead` (4 ≪ √n + 3). Measured: success rates of both, plus
//! honest uniformity of the ablated protocol.

use super::fmt_rate;
use crate::{par_seeds, Table};
use fle_attacks::{PhaseRushingAttack, PhaseSumAttack};
use fle_core::protocols::{PhaseAsyncLead, PhaseSumLead};
use fle_core::Coalition;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    let trials: u64 = if quick { 20 } else { 60 };
    let mut t = Table::new(
        "e4: k = 4 vs PhaseSumLead (sum output) and PhaseAsyncLead (random f)",
        &[
            "n",
            "k",
            "sum: Pr[w]",
            "random-f: feasible",
            "random-f: Pr[w]",
        ],
    );
    for &n in sizes {
        let coalition = Coalition::equally_spaced(n, 4, 1).expect("valid");
        let wins = par_seeds(trials, |seed| {
            let protocol = PhaseSumLead::new(n).with_seed(seed);
            let w = (seed * 29) % n as u64;
            PhaseSumAttack::new(w)
                .run(&protocol, &coalition)
                .is_ok_and(|e| e.outcome.elected() == Some(w))
        });
        let sum_rate = wins.iter().filter(|&&b| b).count() as f64 / trials as f64;
        let async_protocol = PhaseAsyncLead::new(n).with_fn_key(5);
        let feasible = PhaseRushingAttack::new(0)
            .plan(&async_protocol, &coalition)
            .is_ok();
        t.row([
            n.to_string(),
            "4".to_string(),
            fmt_rate(sum_rate),
            feasible.to_string(),
            fmt_rate(0.0),
        ]);
    }
    t.note("paper: partial sums are useful information, partial images of a random f are not");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn sum_falls_random_f_stands() {
        let s = super::run(true)[0].render();
        let data_rows: Vec<&str> = s
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .collect();
        assert!(!data_rows.is_empty());
        for line in data_rows {
            assert!(line.contains("1.000"), "sum attack must win: {line}");
            assert!(line.contains("false"), "random-f must refuse k=4: {line}");
        }
    }
}
