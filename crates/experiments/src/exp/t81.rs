//! Theorem 8.1: Fair Leader Election and Fair Coin Toss are equivalent.
//!
//! Paper claims: an `ε`-unbiased FLE gives a `(½nε)`-unbiased coin (take
//! the leader's low bit); `log₂(n)` independent `ε`-unbiased coins give
//! an FLE with every leader's probability `≤ (½ + ε)^{log₂ n}`. Measured:
//! the coin induced by honest and by fully-biased FLEs, and elections
//! synthesized from honest and adversarial coins.

use super::{fmt_eps, fmt_rate};
use crate::Table;
use fle_attacks::AttackKind;
use fle_core::protocols::{ALeadUni, FleProtocol};
use fle_core::reductions::{
    coin_bias_from_fle, coin_outcome_of_fle, elect_from_coins, fle_prob_bound_from_coin,
};
use fle_harness::{
    run_batch, run_sweep, AttackSweep, BatchConfig, CoalitionSpec, FnKeySpec, HonestSweep,
    ProtocolKind, ScheduleSpec, SeedMode, SweepSpec, TargetSpec,
};
use ring_sim::Outcome;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let trials: u64 = if quick { 1500 } else { 6000 };
    let n = 8usize;

    let mut fwd = Table::new(
        "t81a: coin toss from FLE (leader's low bit)",
        &["source FLE", "Pr[coin=1]", "measured bias", "paper bound"],
    );
    // Honest A-LEADuni: fair coin. The leader's low bit decides the coin,
    // so the per-node win counts of an `fle-harness` sweep aggregate it
    // directly (odd leaders toss 1).
    let report = run_sweep(&SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::ALeadUni,
        n,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 0,
            threads: 0,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    let ones: u64 = report.wins.iter().skip(1).step_by(2).sum();
    let p1 = ones as f64 / trials as f64;
    fwd.row([
        "A-LEADuni (honest, eps=0)".to_string(),
        fmt_rate(p1),
        fmt_eps((p1 - 0.5).abs()),
        fmt_rate(coin_bias_from_fle(0.0, n)),
    ]);
    // Fully-biased Basic-LEAD (single adversary forcing odd leader 5):
    // eps = 1 − 1/n, the bound ½nε is vacuous (> ½), and the measured
    // coin is constant.
    let report = run_sweep(&SweepSpec::Attack(AttackSweep {
        attack: AttackKind::BasicSingle,
        n,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials: trials.min(600),
            base_seed: 0,
            threads: 0,
        },
        coalition: CoalitionSpec::Single { position: 2 },
        target: TargetSpec::Fixed(5),
        seed_mode: SeedMode::RawIndex,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    let arm = report.attack.expect("attack sweeps carry the arm");
    assert_eq!(arm.infeasible, 0, "the Claim B.1 attack is always feasible");
    // The coin is the leader's low bit: odd-leader wins toss 1.
    let ones: u64 = report.wins.iter().skip(1).step_by(2).sum();
    let p1 = ones as f64 / report.trials as f64;
    fwd.row([
        "Basic-LEAD under Claim B.1 attack (eps=1-1/n)".to_string(),
        fmt_rate(p1),
        fmt_eps((p1 - 0.5).abs()),
        format!(
            "{:.3} (vacuous)",
            coin_bias_from_fle(1.0 - 1.0 / n as f64, n).min(0.5)
        ),
    ]);
    fwd.note("bias propagates exactly as Lemma: coin bias <= n*eps/2");

    let mut bwd = Table::new(
        "t81b: FLE from log2(n) independent coins",
        &["coin", "n", "max Pr[leader]", "paper bound"],
    );
    // Honest coins from A-LEADuni parity (raw-index seeds, matching the
    // recorded tables).
    let bits = 3; // n = 8
    let batch = BatchConfig {
        trials,
        base_seed: 0,
        threads: 0,
    };
    let outcomes = run_batch(
        &batch,
        || (),
        |(), seed, _derived| {
            elect_from_coins(bits, |i| {
                let out = ALeadUni::new(n)
                    .with_seed(seed * bits as u64 + i as u64)
                    .run_honest()
                    .outcome;
                coin_outcome_of_fle(out)
            })
        },
    );
    let mut counts = vec![0u64; 1 << bits];
    for o in &outcomes {
        counts[o.elected().expect("honest") as usize] += 1;
    }
    let max_p = counts
        .iter()
        .map(|&c| c as f64 / trials as f64)
        .fold(0.0, f64::max);
    bwd.row([
        "fair (eps=0)".to_string(),
        (1usize << bits).to_string(),
        fmt_rate(max_p),
        fmt_rate(fle_prob_bound_from_coin(0.0, 1 << bits)),
    ]);
    // A delta-biased coin (Pr[1] = 0.5 + delta) built synthetically.
    let delta = 0.2;
    let outcomes = run_batch(
        &batch,
        || (),
        |(), seed, _derived| {
            let mut rng = ring_sim::rng::SplitMix64::new(seed ^ 0xc01_c011);
            elect_from_coins(bits, |_| {
                Outcome::Elected(u64::from(rng.next_f64() < 0.5 + delta))
            })
        },
    );
    let mut counts = vec![0u64; 1 << bits];
    for o in &outcomes {
        counts[o.elected().expect("coins always land") as usize] += 1;
    }
    let max_p = counts
        .iter()
        .map(|&c| c as f64 / trials as f64)
        .fold(0.0, f64::max);
    bwd.row([
        format!("biased (eps={delta})"),
        (1usize << bits).to_string(),
        fmt_rate(max_p),
        fmt_rate(fle_prob_bound_from_coin(delta, 1 << bits)),
    ]);
    bwd.note("paper: max leader probability <= (1/2 + eps)^log2(n); measured obeys it");
    vec![fwd, bwd]
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounds_are_respected() {
        let tables = super::run(true);
        let bwd = tables[1].render();
        // For the biased coin, measured max <= bound (0.343 for delta=.2).
        let line = bwd.lines().find(|l| l.contains("biased")).unwrap();
        let cells: Vec<&str> = line.split_whitespace().collect();
        let measured: f64 = cells[cells.len() - 2].parse().unwrap();
        let bound: f64 = cells[cells.len() - 1].parse().unwrap();
        assert!(measured <= bound + 0.03, "{line}");
    }
}
