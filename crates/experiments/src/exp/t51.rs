//! Theorem 5.1: `A-LEADuni` is `ε`-`k`-resilient for `k ≤ ¼·n^{1/4}`.
//!
//! A resilience theorem cannot be verified by exhausting all deviations;
//! its measurable content here is threefold: (a) every attack the paper
//! (or this crate) knows is *infeasible* at sub-threshold coalition
//! sizes; (b) honest executions are statistically uniform (χ² test);
//! (c) sub-threshold coalitions that rush anyway are caught and gain no
//! bias — the punishment path works.

use super::{fmt_eps, fmt_rate};
use crate::stats::chi_square_uniform;
use crate::Table;
use fle_attacks::{plan_with_k, AttackKind, RushingAttack};
use fle_core::protocols::ALeadUni;
use fle_core::Coalition;
use fle_harness::{
    run_sweep, AttackSweep, BatchConfig, CoalitionSpec, FnKeySpec, HonestSweep, ProtocolKind,
    ScheduleSpec, SeedMode, SweepSpec, TargetSpec,
};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[256] } else { &[256, 1024, 4096] };
    let trials: u64 = if quick { 2000 } else { 8000 };

    let mut feas = Table::new(
        "t51a: known attacks at the Thm 5.1 threshold k0 = n^(1/4)/4",
        &[
            "n",
            "k0",
            "rushing feasible at k0",
            "cubic feasible at k0",
            "min cubic k",
        ],
    );
    for &n in sizes {
        let k0 = ((n as f64).powf(0.25) / 4.0).floor().max(1.0) as usize;
        let rushing = Coalition::equally_spaced(n, k0.max(1), 1)
            .is_ok_and(|c| RushingAttack::new(0).plan(&ALeadUni::new(n), &c).is_ok());
        let cubic = plan_with_k(n, k0).is_ok();
        let min_cubic = (2..n).find(|&k| plan_with_k(n, k).is_ok()).unwrap_or(n);
        feas.row([
            n.to_string(),
            k0.to_string(),
            rushing.to_string(),
            cubic.to_string(),
            min_cubic.to_string(),
        ]);
    }
    feas.note("paper: resilience holds up to k0; both constructive attacks need far more");

    let n_uni = if quick { 16 } else { 32 };
    let mut uni = Table::new(
        "t51b: honest A-LEADuni uniformity (chi-square)",
        &["n", "trials", "chi2", "p-value", "max |eps|"],
    );
    let report = run_sweep(&SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::ALeadUni,
        n: n_uni,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 0,
            threads: 0,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    assert_eq!(report.elected(), trials, "honest runs succeed");
    let (chi2, p) = chi_square_uniform(&report.wins);
    let max_eps = report
        .wins
        .iter()
        .map(|&c| (c as f64 / trials as f64 - 1.0 / n_uni as f64).abs())
        .fold(0.0f64, f64::max);
    uni.row([
        n_uni.to_string(),
        trials.to_string(),
        format!("{chi2:.1}"),
        format!("{p:.3}"),
        fmt_eps(max_eps),
    ]);
    uni.note("paper: exact fairness; measured deviation is sampling noise (p >> 0.01)");

    // (c) Sub-threshold rushers are punished: force-run the rushing
    // strategy with k below sqrt(n) by faking a smaller protocol bound.
    let n = if quick { 100 } else { 400 };
    let k = ((n as f64).sqrt() as usize) / 2;
    let runs: u64 = if quick { 30 } else { 100 };
    // The layout is infeasible, so the planner refuses every trial; the
    // sweep counts each refusal in its `infeasible` arm.
    let report = run_sweep(&SweepSpec::Attack(AttackSweep {
        attack: AttackKind::Rushing,
        n,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials: runs,
            base_seed: 0,
            threads: 0,
        },
        coalition: CoalitionSpec::EquallySpaced { k, offset: 1 },
        target: TargetSpec::Fixed(1),
        seed_mode: SeedMode::RawIndex,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    let arm = report.attack.expect("attack sweeps carry the arm");
    let refuse_rate = arm.infeasible as f64 / runs as f64;
    let mut punish = Table::new(
        "t51c: sub-threshold rushing is refused (no deviation can comply)",
        &["n", "k", "k/sqrt(n)", "refusal rate"],
    );
    punish.row([
        n.to_string(),
        k.to_string(),
        format!("{:.2}", k as f64 / (n as f64).sqrt()),
        fmt_rate(refuse_rate),
    ]);
    punish.note("a coalition with some l_j > k-1 cannot satisfy Lemma 3.3's conditions");
    vec![feas, uni, punish]
}

#[cfg(test)]
mod tests {
    #[test]
    fn attacks_are_infeasible_below_threshold() {
        let tables = super::run(true);
        let s = tables[0].render();
        assert!(!s.contains("true"), "no attack should be feasible: {s}");
        let uni = tables[1].render();
        // p-value should not reject uniformity outright.
        let p: f64 = uni
            .lines()
            .nth(3)
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(p > 0.001, "uniformity rejected: {uni}");
    }
}
