//! Conjecture 4.7: the open gap of the paper.
//!
//! Theorem 5.1 proves `A-LEADuni` resilient up to `k₀ = ¼·n^{1/4}`;
//! Theorem 4.3 breaks it at `k ≥ 2·∛n`; the paper conjectures the truth
//! is `Θ(∛n)` (resilient for `k ≤ α·∛n`, some `α > 1/8`). This
//! experiment maps the gap: for each `n`, the largest coalition size for
//! which *no* attack in this repository can be mounted, and the smallest
//! for which one can — i.e. the empirical bracket on the conjecture's α.
//!
//! The attack-side boundary is exact: the cubic layout exists iff
//! `(k−1)k(k+1)/2 ≥ n − k`, giving `k_min ≈ (2n)^{1/3} ≈ 1.26·∛n` — so
//! empirically `α ≤ 1.26` and the conjecture's `α > 1/8` leaves a
//! ten-fold corridor the paper calls open.

use crate::Table;
use fle_attacks::{plan_with_k, RushingAttack};
use fle_core::protocols::ALeadUni;
use fle_core::Coalition;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[64, 512]
    } else {
        &[64, 512, 4096, 32768]
    };
    let mut t = Table::new(
        "c47: the Conjecture 4.7 gap for A-LEADuni",
        &[
            "n",
            "proved k0 = n^(1/4)/4",
            "max unattackable k",
            "min attack k",
            "min-attack k / cbrt(n)",
            "conjecture alpha > 1/8",
        ],
    );
    for &n in sizes {
        let k0 = ((n as f64).powf(0.25) / 4.0).floor().max(1.0) as usize;
        // Smallest k where *any* implemented attack becomes mountable:
        // equally-spaced rushing or the cubic layout.
        let min_attack = (2..n)
            .find(|&k| {
                plan_with_k(n, k).is_ok()
                    || Coalition::equally_spaced(n, k, 1)
                        .is_ok_and(|c| RushingAttack::new(0).plan(&ALeadUni::new(n), &c).is_ok())
            })
            .unwrap_or(n);
        let cbrt = (n as f64).cbrt();
        t.row([
            n.to_string(),
            k0.to_string(),
            (min_attack - 1).to_string(),
            min_attack.to_string(),
            format!("{:.2}", min_attack as f64 / cbrt),
            format!("open for k in ({k0}, {})", min_attack - 1),
        ]);
    }
    t.note("attack boundary is exact: cubic capacity (k-1)k(k+1)/2 >= n-k, i.e. ~1.26 cbrt(n)");
    t.note("the conjecture claims resilience for k <= alpha*cbrt(n), alpha > 1/8 — the corridor below 1.26");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn attack_boundary_is_about_1_26_cbrt() {
        let t = &super::run(true)[0];
        let s = t.render();
        for line in s
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            let ratio: f64 = line
                .split_whitespace()
                .nth(4)
                .and_then(|v| v.parse().ok())
                .unwrap();
            assert!((1.0..=1.6).contains(&ratio), "{line}");
        }
    }
}
