//! Afek et al. \[5\], Renaming: fair renaming built from the election
//! machinery (Section 1.1 related work) — rotation renaming from one
//! election, uniform-permutation renaming from election-derived coins
//! (Theorem 8.1 direction FLE → coin).
//!
//! Measured: validity (names always a permutation), marginal uniformity
//! of a fixed processor's name under rotation, full-permutation coverage,
//! and the election cost of the permutation scheme.

use super::fmt_rate;
use crate::stats::chi_square_uniform;
use crate::{par_seeds, Table};
use fle_core::renaming::{permutation_renaming, rotation_renaming};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = 8usize;
    let trials: u64 = if quick { 120 } else { 800 };

    let mut rotation = Table::new(
        "rename: rotation renaming (1 election), marginal uniformity of processor 3's name",
        &["n", "trials", "valid rate", "chi2", "p-value"],
    );
    let names = par_seeds(trials, |seed| {
        let r = rotation_renaming(n, seed).expect("honest elections succeed");
        (r.is_valid(), r.names[3])
    });
    let valid = names.iter().filter(|&&(v, _)| v).count() as f64 / trials as f64;
    let mut counts = vec![0u64; n];
    for &(_, name) in &names {
        counts[name] += 1;
    }
    let (chi2, p) = chi_square_uniform(&counts);
    rotation.row([
        n.to_string(),
        trials.to_string(),
        fmt_rate(valid),
        format!("{chi2:.2}"),
        format!("{p:.3}"),
    ]);

    let mut permutation = Table::new(
        "rename: permutation renaming (elections -> coins -> Fisher-Yates)",
        &[
            "n",
            "trials",
            "valid rate",
            "distinct permutations",
            "avg elections",
        ],
    );
    let pn = if quick { 4 } else { 5 };
    let ptrials: u64 = if quick { 60 } else { 300 };
    let perms = par_seeds(ptrials, |seed| {
        let r = permutation_renaming(pn, seed).expect("honest elections succeed");
        (r.is_valid(), r.names.clone(), r.elections)
    });
    let valid = perms.iter().filter(|&(v, _, _)| *v).count() as f64 / ptrials as f64;
    let mut distinct: Vec<_> = perms.iter().map(|(_, names, _)| names.clone()).collect();
    distinct.sort();
    distinct.dedup();
    let avg_elections = perms.iter().map(|&(_, _, e)| e as f64).sum::<f64>() / ptrials as f64;
    permutation.row([
        pn.to_string(),
        ptrials.to_string(),
        fmt_rate(valid),
        distinct.len().to_string(),
        format!("{avg_elections:.1}"),
    ]);
    permutation
        .note("entropy cost: Theta(n log n) bits, each election yields floor(log2 n) of them");

    vec![rotation, permutation]
}

#[cfg(test)]
mod tests {
    #[test]
    fn renamings_are_valid_and_uniformish() {
        let tables = super::run(true);
        let rotation = tables[0].render();
        assert!(
            rotation.contains("1.000"),
            "all renamings valid: {rotation}"
        );
        let permutation = tables[1].render();
        let line = permutation
            .lines()
            .find(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .expect("data row");
        let cells: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(cells[2], "1.000", "validity: {line}");
        let distinct: usize = cells[3].parse().unwrap();
        assert!(distinct > 10, "permutation variety too low: {line}");
    }
}
