//! Theorem 6.1 and its tightness: `PhaseAsyncLead` resists every known
//! attack up to `k = √n/10` yet falls to `k = √n + 3`.
//!
//! Paper claims: (a) the protocol is `ε`-`k`-unbiased for `k ≤ √n/10`
//! (w.h.p. over `f`); (b) the rushing attack with `k ≥ √n + 3` controls
//! the outcome, so the threshold is tight up to constants; (c) the
//! cubic-burst pattern that kills `A-LEADuni` is *detected* by phase
//! validation. Measured: attack feasibility/success across the two
//! thresholds, burst detection rate, and honest uniformity.

use super::{fmt_rate, fmt_rate_ci};
use crate::stats::chi_square_uniform;
use crate::Table;
use fle_attacks::{AttackKind, PhaseRushingAttack};
use fle_core::protocols::PhaseAsyncLead;
use fle_core::Coalition;
use fle_harness::{
    run_sweep, AttackSweep, BatchConfig, CoalitionSpec, FnKeySpec, HonestSweep, ProtocolKind,
    ScheduleSpec, SeedMode, SweepSpec, TargetSpec,
};

/// One adversarial cell of t61a/t61b: `attack` on `PhaseAsyncLead` of
/// size `n` with the equally spaced size-`k` coalition, reproducing the
/// recorded tables' raw-index seed stream and per-seed `f` keys.
fn phase_cell(
    attack: AttackKind,
    n: usize,
    k: usize,
    trials: u64,
    fn_key: FnKeySpec,
    target: TargetSpec,
) -> SweepSpec {
    SweepSpec::Attack(AttackSweep {
        attack,
        n,
        fn_key,
        batch: BatchConfig {
            trials,
            base_seed: 0,
            threads: 0,
        },
        coalition: CoalitionSpec::EquallySpaced { k, offset: 1 },
        target,
        seed_mode: SeedMode::RawIndex,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[100] } else { &[100, 400, 900] };
    let trials: u64 = if quick { 15 } else { 40 };

    let mut t = Table::new(
        "t61a: rushing attack vs PhaseAsyncLead across the sqrt(n) threshold",
        &["n", "k", "k vs thresholds", "feasible", "Pr[w] ± ci"],
    );
    for &n in sizes {
        let sqrt_n = (n as f64).sqrt();
        let ks = [
            ((sqrt_n / 10.0).floor() as usize).max(2),
            (sqrt_n / 2.0).round() as usize,
            sqrt_n as usize + 3,
            (2.0 * sqrt_n) as usize,
        ];
        for k in ks {
            let coalition = Coalition::equally_spaced(n, k, 1).expect("valid");
            let protocol = PhaseAsyncLead::new(n).with_fn_key(99);
            let feasible = PhaseRushingAttack::new(0)
                .plan(&protocol, &coalition)
                .is_ok();
            let report = run_sweep(&phase_cell(
                AttackKind::PhaseRushing,
                n,
                k,
                trials,
                FnKeySpec::SeedXor(0xf00d),
                TargetSpec::SeedProduct { multiplier: 11 },
            ))
            .expect("valid spec");
            let arm = report.attack.expect("attack sweeps carry the arm");
            // Rushing feasibility depends only on the coalition layout,
            // so the plan precheck and the sweep must agree.
            assert_eq!(feasible, arm.infeasible == 0);
            let zone = if (k as f64) <= sqrt_n / 10.0 + 1.0 {
                "<= sqrt(n)/10"
            } else if (k as f64) < sqrt_n + 3.0 {
                "between"
            } else {
                ">= sqrt(n)+3"
            };
            t.row([
                n.to_string(),
                k.to_string(),
                zone.to_string(),
                feasible.to_string(),
                fmt_rate_ci(arm.success_rate(report.trials), arm.ci95(report.trials)),
            ]);
        }
    }
    t.note("paper: resilient for k <= sqrt(n)/10; the rushing attack wins from sqrt(n)+3");

    let mut burst = Table::new(
        "t61b: cubic-burst attack vs PhaseAsyncLead (must be detected)",
        &["n", "k", "runs", "FAIL rate", "biased-success rate"],
    );
    for &n in sizes {
        let k = (2.0 * (n as f64).cbrt()).ceil() as usize + 1;
        let runs: u64 = if quick { 20 } else { 50 };
        // fn_key = seed (SeedXor with mask 0), matching the recorded
        // per-seed `f` draws; success means the burst elected its target.
        let report = run_sweep(&phase_cell(
            AttackKind::PhaseBurst,
            n,
            k,
            runs,
            FnKeySpec::SeedXor(0),
            TargetSpec::Fixed(1),
        ))
        .expect("valid spec");
        let arm = report.attack.expect("attack sweeps carry the arm");
        assert_eq!(arm.infeasible, 0, "burst attack always runs");
        let fails = report.fails.total() as f64 / runs as f64;
        let wins = arm.success_rate(report.trials);
        burst.row([
            n.to_string(),
            k.to_string(),
            runs.to_string(),
            fmt_rate(fails),
            fmt_rate(wins),
        ]);
    }
    burst.note("the same burst pattern wins with Pr=1 against A-LEADuni (see t43)");

    let n_uni = if quick { 16 } else { 32 };
    let uni_trials: u64 = if quick { 2000 } else { 8000 };
    // Honest uniformity through the fle-harness sweep: per-node win
    // counts are exactly the chi-square input, and the per-worker engine
    // reuse makes this the fastest way to run thousands of trials.
    let report = run_sweep(&SweepSpec::Honest(HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: n_uni,
        fn_key: 12345,
        batch: BatchConfig {
            trials: uni_trials,
            base_seed: 0,
            threads: 0,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    assert_eq!(report.fails.total(), 0, "honest runs succeed");
    let (chi2, p) = chi_square_uniform(&report.wins);
    let mut uni = Table::new(
        "t61c: honest PhaseAsyncLead uniformity (chi-square)",
        &["n", "trials", "chi2", "p-value"],
    );
    uni.row([
        n_uni.to_string(),
        uni_trials.to_string(),
        format!("{chi2:.1}"),
        format!("{p:.3}"),
    ]);
    uni.note("paper remark: with a PRF-style f the honest outcome is ~uniform, not exactly");
    vec![t, burst, uni]
}

#[cfg(test)]
mod tests {
    #[test]
    fn thresholds_and_detection() {
        let tables = super::run(true);
        let a = tables[0].render();
        let data: Vec<&str> = a.lines().filter(|l| !l.starts_with("note")).collect();
        for line in data.iter().filter(|l| l.contains("<= sqrt(n)/10")) {
            assert!(line.contains("false"), "{line}");
        }
        let above: Vec<&&str> = data.iter().filter(|l| l.contains(">= sqrt(n)+3")).collect();
        assert!(above.len() >= 2);
        for line in above {
            assert!(line.contains("true"), "{line}");
        }
        let b = tables[1].render();
        let row = b
            .lines()
            .find(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .unwrap();
        assert!(row.contains("1.000"), "burst must always fail: {row}");
        assert!(row.trim_end().ends_with("0.000"), "{row}");
    }
}
