//! Message complexity: the price of rational-agent fairness.
//!
//! Paper context (Section 1.1): classical extrema-finding runs in
//! `O(n log n)` messages (average for Chang–Roberts, worst case for
//! Peterson/DKR), while the fair, resilient protocols pay `Θ(n²)`
//! (`A-LEADuni`: `n²`; `PhaseAsyncLead`: `2n²`). Measured counts come
//! from the same simulator for all protocols.

use crate::Table;
use fle_baselines::{random_ids, worst_case_ids, ChangRoberts, ItaiRodeh, PetersonDkr};
use fle_harness::{
    run_batch, run_sweep, BatchConfig, HonestSweep, ProtocolKind, ScheduleSpec, SweepSpec,
};

/// Messages per honest run of `protocol`, measured through a short
/// `fle-harness` sweep (the count is seed-independent, which the sweep
/// verifies across its trials).
fn honest_messages(protocol: ProtocolKind, n: usize) -> u64 {
    let report = run_sweep(&SweepSpec::Honest(HonestSweep {
        protocol,
        n,
        fn_key: 0,
        batch: BatchConfig {
            trials: 2,
            base_seed: 0,
            threads: 0,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }))
    .expect("valid spec");
    assert_eq!(
        report.messages.min, report.messages.max,
        "honest message counts are deterministic"
    );
    report.messages.max
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let trials: u64 = if quick { 10 } else { 30 };
    // Raw-index seeds through the batch engine, matching the recorded
    // baseline averages.
    let batch = BatchConfig {
        trials,
        base_seed: 0,
        threads: 0,
    };
    let mut t = Table::new(
        "msg: total messages to elect a leader",
        &[
            "n",
            "CR avg",
            "CR worst",
            "Peterson worst",
            "Itai-Rodeh avg",
            "Basic-LEAD",
            "A-LEADuni",
            "PhaseAsyncLead",
            "n log2 n",
            "n^2",
        ],
    );
    for &n in sizes {
        let cr_avg = {
            let counts = run_batch(
                &batch,
                || (),
                |(), seed, _derived| {
                    ChangRoberts::new(random_ids(n, seed))
                        .run()
                        .stats
                        .total_sent()
                },
            );
            counts.iter().sum::<u64>() as f64 / trials as f64
        };
        let cr_worst = ChangRoberts::new(worst_case_ids(n))
            .run()
            .stats
            .total_sent();
        let peterson = PetersonDkr::new(worst_case_ids(n)).run().stats.total_sent();
        let ir_avg = {
            let counts = run_batch(
                &batch,
                || (),
                |(), seed, _derived| ItaiRodeh::new(n, seed).run().stats.total_sent(),
            );
            counts.iter().sum::<u64>() as f64 / trials as f64
        };
        let basic = honest_messages(ProtocolKind::BasicLead, n);
        let alead = honest_messages(ProtocolKind::ALeadUni, n);
        let phase = honest_messages(ProtocolKind::PhaseAsyncLead, n);
        t.row([
            n.to_string(),
            format!("{cr_avg:.0}"),
            cr_worst.to_string(),
            peterson.to_string(),
            format!("{ir_avg:.0}"),
            basic.to_string(),
            alead.to_string(),
            phase.to_string(),
            format!("{:.0}", n as f64 * (n as f64).log2()),
            (n * n).to_string(),
        ]);
    }
    t.note("classical algorithms are not fair and fall to a single rational agent");
    t.note("paper's protocols: A-LEADuni = n^2 exactly, PhaseAsyncLead = 2n^2 exactly");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn complexity_shapes_hold() {
        let s = super::run(true)[0].render();
        let row64: Vec<&str> = s
            .lines()
            .find(|l| l.starts_with("64"))
            .unwrap()
            .split_whitespace()
            .collect();
        let cr_avg: f64 = row64[1].parse().unwrap();
        let peterson: u64 = row64[3].parse().unwrap();
        let alead: u64 = row64[6].parse().unwrap();
        let phase: u64 = row64[7].parse().unwrap();
        assert_eq!(alead, 64 * 64);
        assert_eq!(phase, 2 * 64 * 64);
        assert!((peterson as f64) < cr_avg * 3.0);
        assert!((peterson as f64) < 64.0 * 64.0 / 2.0);
    }
}
