//! Theorem 4.3: the cubic attack controls `A-LEADuni` with
//! `k ≈ 2·∛n` adversaries, far fewer than the rushing attack's `√n`.
//!
//! Paper claims: (a) the geometric-distance coalition of size
//! `k ≥ 2·∛n` forces any target; (b) the attack desynchronizes the ring
//! by `Ω(k²)` sent messages (Section 6's motivation for phase
//! validation). Measured: minimal planned `k`, success rate, and the
//! coalition's maximal sent-count gap.

use super::fmt_rate_ci;
use crate::Table;
use fle_attacks::{cubic_distances, AttackKind, CubicAttack, RushingAttack};
use fle_core::protocols::ALeadUni;
use fle_core::Coalition;
use fle_harness::{
    run_sweep, AttackSweep, BatchConfig, CoalitionSpec, FnKeySpec, ScheduleSpec, SeedMode,
    SweepSpec, TargetSpec,
};
use ring_sim::SyncGapProbe;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[64, 216]
    } else {
        &[64, 216, 512, 1000]
    };
    let trials: u64 = if quick { 15 } else { 40 };
    let mut t = Table::new(
        "t43: cubic attack on A-LEADuni (Thm 4.3)",
        &[
            "n",
            "cubic k",
            "2*cbrt(n)",
            "rushing k",
            "Pr[w] ± ci",
            "sync gap",
            "k^2",
        ],
    );
    for &n in sizes {
        let plan = cubic_distances(n).expect("n large enough");
        let k = plan.k();
        let rushing_k = (1..n)
            .find(|&kk| {
                Coalition::equally_spaced(n, kk, 1)
                    .is_ok_and(|c| RushingAttack::new(0).plan(&ALeadUni::new(n), &c).is_ok())
            })
            .unwrap_or(n);
        // The Theorem 4.3 layout is dictated by the attack, so the spec
        // names it symbolically (`CoalitionSpec::Cubic`); targets and
        // seeds reproduce the recorded table's raw-index stream.
        let report = run_sweep(&SweepSpec::Attack(AttackSweep {
            attack: AttackKind::Cubic,
            n,
            fn_key: FnKeySpec::Fixed(0),
            batch: BatchConfig {
                trials,
                base_seed: 0,
                threads: 0,
            },
            coalition: CoalitionSpec::Cubic,
            target: TargetSpec::SeedProduct { multiplier: 17 },
            seed_mode: SeedMode::RawIndex,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        }))
        .expect("valid spec");
        let arm = report.attack.expect("attack sweeps carry the arm");
        // Sync gap over the coalition during one attacked execution.
        let protocol = ALeadUni::new(n).with_seed(1);
        let mut probe = SyncGapProbe::new(plan.positions().to_vec());
        let nodes = CubicAttack::new(0)
            .adversary_nodes(&protocol, &plan)
            .expect("feasible");
        let _ = protocol.run_with_probe(nodes, &mut probe);
        t.row([
            n.to_string(),
            k.to_string(),
            format!("{:.1}", 2.0 * (n as f64).cbrt()),
            rushing_k.to_string(),
            fmt_rate_ci(arm.success_rate(report.trials), arm.ci95(report.trials)),
            probe.max_gap().to_string(),
            (k * k).to_string(),
        ]);
    }
    t.note("paper: cubic k <= 2*cbrt(n) << rushing k ~ sqrt(n); gap = Omega(k^2) (Sec 6)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn cubic_wins_and_desynchronizes() {
        let t = &super::run(true)[0];
        let s = t.render();
        let data_rows: Vec<&str> = s
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .collect();
        assert!(!data_rows.is_empty());
        for line in data_rows {
            assert!(line.contains("1.000"), "cubic attack must win: {line}");
            // gap (2nd integer after k) clearly super-linear in k
            let ints: Vec<u64> = line
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect();
            let (k, gap) = (ints[1], ints[3]);
            assert!(gap > 2 * k, "gap {gap} should be Omega(k^2), k={k}");
        }
    }
}
