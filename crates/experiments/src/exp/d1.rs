//! Claim D.1 and the original Abraham et al. bound: *consecutive*
//! coalitions are harmless below `k = ⌈(n+1)/2⌉` and all-powerful at it.
//!
//! Paper claims: `A-LEADuni` is unbiased against every consecutively
//! located coalition of `k < n/2` (Claim D.1 / Appendix D), while the
//! general impossibility (and Lemma 4.1 with a single segment of length
//! `n − k ≤ k − 1`) puts full control exactly at `k ≥ ⌈(n+1)/2⌉`.

use super::fmt_rate;
use crate::{par_seeds, Table};
use fle_attacks::RushingAttack;
use fle_core::protocols::ALeadUni;
use fle_core::Coalition;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[33] } else { &[33, 129] };
    let trials: u64 = if quick { 15 } else { 40 };
    let mut t = Table::new(
        "d1: consecutive coalitions vs A-LEADuni (Claim D.1 crossover)",
        &["n", "k", "k - (n+1)/2", "l of exposed", "feasible", "Pr[w]"],
    );
    for &n in sizes {
        let half = n.div_ceil(2); // ⌈n/2⌉ = ⌈(n+1)/2⌉ for odd n
        for delta in [-3i64, -1, 0, 1, 3] {
            let k = (half as i64 + delta).clamp(2, n as i64 - 1) as usize;
            let coalition = Coalition::consecutive(n, k, 1).expect("valid");
            let feasible = RushingAttack::new(0)
                .plan(&ALeadUni::new(n), &coalition)
                .is_ok();
            let rate = if feasible {
                let wins = par_seeds(trials, |seed| {
                    let protocol = ALeadUni::new(n).with_seed(seed);
                    let w = (seed * 7) % n as u64;
                    RushingAttack::new(w)
                        .run(&protocol, &coalition)
                        .is_ok_and(|e| e.outcome.elected() == Some(w))
                });
                wins.iter().filter(|&&b| b).count() as f64 / trials as f64
            } else {
                0.0
            };
            t.row([
                n.to_string(),
                k.to_string(),
                format!("{:+}", k as i64 - ((n as i64 + 1) / 2)),
                coalition.max_distance().to_string(),
                feasible.to_string(),
                fmt_rate(rate),
            ]);
        }
    }
    t.note("paper: consecutive coalitions need n - k <= k - 1, i.e. k >= (n+1)/2");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn crossover_at_half() {
        let s = super::run(true)[0].render();
        for line in s.lines().skip(2).filter(|l| !l.starts_with("note")) {
            let below = line.contains(" -3 ") || line.contains(" -1 ");
            if below {
                assert!(line.contains("false"), "{line}");
            }
            if line.contains(" +1 ") || line.contains(" +3 ") || line.contains(" +0 ") {
                assert!(line.contains("true") && line.contains("1.000"), "{line}");
            }
        }
    }
}
