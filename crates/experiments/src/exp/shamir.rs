//! Section 1.1 (asynchronous fully-connected network): Abraham et al.'s
//! Shamir-based election `A-LEADfc` is `⌈n/2⌉ − 1`-resilient, and the
//! bound is tight.
//!
//! Paper claim: "For an asynchronous fully connected network, they apply
//! Shamir's secret sharing scheme in a straightforward manner and get an
//! optimal resilience result of `k = n/2 − 1`" — optimal because no FLE
//! protocol on any network resists `⌈n/2⌉` (Theorem 7.2). Measured: the
//! share-pooling coalition's forcing rate just below and at the
//! threshold, plus honest uniformity.

use super::fmt_rate;
use crate::stats::chi_square_uniform;
use crate::{par_seeds, Table};
use fle_core::protocols::FleProtocol;
use fle_secretshare::{run_fc_attack, ALeadFc};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[8, 12] } else { &[8, 12, 16, 24] };
    let trials: u64 = if quick { 24 } else { 96 };

    let mut crossover = Table::new(
        "shamir: A-LEADfc resilience crossover at k = ceil(n/2)",
        &["n", "t", "k=t (Pr[w])", "k=t+1 (Pr[w])"],
    );
    for &n in sizes {
        let t = n.div_ceil(2) - 1;
        let below: Vec<usize> = (0..t).collect();
        let at: Vec<usize> = (0..t + 1).collect();
        let below_wins = par_seeds(trials, |seed| {
            let p = ALeadFc::new(n).with_seed(seed);
            let w = (seed * 31) % n as u64;
            run_fc_attack(&p, &below, w).outcome.elected() == Some(w)
        });
        let at_wins = par_seeds(trials, |seed| {
            let p = ALeadFc::new(n).with_seed(seed);
            let w = (seed * 31) % n as u64;
            run_fc_attack(&p, &at, w).outcome.elected() == Some(w)
        });
        crossover.row([
            n.to_string(),
            t.to_string(),
            fmt_rate(below_wins.iter().filter(|&&b| b).count() as f64 / trials as f64),
            fmt_rate(at_wins.iter().filter(|&&b| b).count() as f64 / trials as f64),
        ]);
    }
    crossover.note(
        "paper: resilient to n/2 - 1; the pooled coalition reconstructs at t + 1 = ceil(n/2)",
    );

    let mut fairness = Table::new(
        "shamir: honest A-LEADfc uniformity",
        &["n", "trials", "chi2", "p-value"],
    );
    let n = 8usize;
    let fair_trials: u64 = if quick { 160 } else { 1600 };
    let winners = par_seeds(fair_trials, |seed| {
        ALeadFc::new(n)
            .with_seed(seed)
            .run_honest()
            .outcome
            .elected()
            .expect("honest runs succeed")
    });
    let mut counts = vec![0u64; n];
    for w in winners {
        counts[w as usize] += 1;
    }
    let (chi2, p) = chi_square_uniform(&counts);
    fairness.row([
        n.to_string(),
        fair_trials.to_string(),
        format!("{chi2:.2}"),
        format!("{p:.3}"),
    ]);
    vec![crossover, fairness]
}

#[cfg(test)]
mod tests {
    #[test]
    fn crossover_shape_holds() {
        let tables = super::run(true);
        let s = tables[0].render();
        for line in s
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let below: f64 = cells[2].parse().unwrap();
            let at: f64 = cells[3].parse().unwrap();
            assert!(below < 0.5, "sub-threshold coalition too strong: {line}");
            assert!(
                (at - 1.0).abs() < 1e-9,
                "threshold coalition must win: {line}"
            );
        }
        let fairness = tables[1].render();
        assert!(fairness.contains("chi2"));
    }
}
