//! Section 1.1 (full-information model): the classic coin-flipping and
//! leader-election landscape the paper builds on — Ben-Or & Linial's
//! one-round games and iterated majority, Saks' baton passing, and the
//! lightest-bin stand-in for the linear-resilience constructions.
//!
//! Paper claims reproduced in shape:
//! * one rushing player biases majority by `Θ(1/√n)` and controls parity
//!   outright (\[10\]);
//! * iterated majority-of-3 falls to exactly `n^{log₃ 2}` adversarial
//!   leaves;
//! * baton passing resists `O(n / log n)` but not linear coalitions \[26\];
//! * plain two-bin lightest-bin — the folklore building block behind the
//!   linear-resilience constructions [9, 11, 25] — falls even faster
//!   than baton passing against a rushing coalition (its fraction
//!   roughly doubles per round), quantifying why those constructions
//!   need many bins, round budgets and committee endgames.

use super::{fmt_eps, fmt_rate};
use crate::Table;
use fle_fullinfo::{
    coalition_power, BatonGame, CoinFunction, IteratedMajority, LightestBin, Majority, Parity,
    Tribes,
};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let mut onebit = Table::new(
        "fullinfo: one-round games, exact rushing-coalition power",
        &[
            "function",
            "k",
            "honest Pr[1]",
            "force 1",
            "control",
            "bias",
        ],
    );
    let sizes: &[usize] = if quick { &[9] } else { &[9, 15, 21] };
    for &n in sizes {
        let mut ks = vec![1usize, 2, (n as f64).sqrt() as usize, n / 3];
        ks.dedup();
        for k in ks {
            let mask = (1u64 << k) - 1;
            let maj = Majority::new(n);
            let p = coalition_power(&maj, mask);
            onebit.row([
                maj.name(),
                k.to_string(),
                fmt_rate(p.honest_one),
                fmt_rate(p.force_one),
                fmt_rate(p.control),
                fmt_eps(p.bias()),
            ]);
        }
        let par = Parity::new(n);
        let p = coalition_power(&par, 1);
        onebit.row([
            par.name(),
            "1".to_string(),
            fmt_rate(p.honest_one),
            fmt_rate(p.force_one),
            fmt_rate(p.control),
            fmt_eps(p.bias()),
        ]);
    }
    let tribes = Tribes::new(3, if quick { 3 } else { 5 });
    let p = coalition_power(&tribes, 0b111);
    onebit.row([
        tribes.name(),
        "3".to_string(),
        fmt_rate(p.honest_one),
        fmt_rate(p.force_one),
        fmt_rate(p.control),
        fmt_eps(p.bias()),
    ]);
    onebit.note(
        "majority: one voter swings Theta(1/sqrt(n)); parity: one rushing voter is a dictator",
    );

    let mut itmaj = Table::new(
        "fullinfo: iterated majority-of-3, control threshold 2^h = n^0.63",
        &[
            "height",
            "n",
            "2^h",
            "cheapest-set control",
            "random k=2^h-1 control",
        ],
    );
    let heights: &[u32] = if quick { &[2, 3] } else { &[2, 3, 4, 5] };
    for &h in heights {
        let g = IteratedMajority::new(h);
        let cheap = g.cheapest_controlling_set();
        let ctrl = g.control_probability(&cheap);
        let rand_ctrl =
            g.random_coalition_control(g.min_control_cost() - 1, 7, if quick { 20 } else { 80 });
        itmaj.row([
            h.to_string(),
            g.n().to_string(),
            g.min_control_cost().to_string(),
            fmt_rate(ctrl),
            fmt_rate(rand_ctrl),
        ]);
    }
    itmaj.note("the structured 2^h coalition always controls; smaller random ones rarely do");

    let mut election = Table::new(
        "fullinfo: leader election, Pr[corrupt leader] vs fair share k/n",
        &[
            "n",
            "k",
            "fair k/n",
            "baton (exact)",
            "baton bias",
            "lightest-bin",
            "bin bias",
        ],
    );
    let n = if quick { 32 } else { 64 };
    let ks: &[usize] = if quick {
        &[1, 4, 8, 16]
    } else {
        &[1, 4, 8, 16, 32, 48]
    };
    let trials = if quick { 200 } else { 800 };
    for &k in ks {
        let baton = BatonGame::new(n, k);
        let bin = LightestBin::new(n, k);
        let bin_rate = bin.corrupt_leader_rate(3, trials);
        election.row([
            n.to_string(),
            k.to_string(),
            fmt_rate(k as f64 / n as f64),
            fmt_rate(baton.corrupt_leader_probability()),
            fmt_eps(baton.bias()),
            fmt_rate(bin_rate),
            fmt_eps(bin_rate - k as f64 / n as f64),
        ]);
    }
    election.note("Saks' baton is the stronger simple protocol; plain lightest-bin doubles the coalition's share per round");

    vec![onebit, itmaj, election]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_have_expected_shapes() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 3);
        let onebit = tables[0].render();
        // Parity with k = 1 has control 1.000.
        assert!(
            onebit
                .lines()
                .any(|l| l.starts_with("parity") && l.contains("1.000")),
            "{onebit}"
        );
        let itmaj = tables[1].render();
        for line in itmaj
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cells[3], "1.000", "cheapest set must control: {line}");
        }
        let election = tables[2].render();
        assert!(election.contains("baton"));
    }
}
