//! Appendix H: unknown ids — the wake-up phase is abusable and the naive
//! problem definition is broken.
//!
//! Paper claims: (1) under the natural utility `u₀(x) = 1[x ∉ Ω]` a lying
//! coalition gains `E[u₀] = k/n`, so no protocol is resilient for any
//! `k ≥ 1`; (2) adversaries can allocate a believed origin inside *every*
//! honest segment by masking id bits, and the resilience proofs do not
//! survive this. Measured: the ghost-election rate of the id-lie
//! deviation against `k/n`, and the masking attack's per-segment origin
//! allocation plus its deterministic forcing of a fabricated id.

use super::fmt_rate;
use crate::{par_seeds, Table};
use fle_attacks::{WakeupIdLieAttack, WakeupMaskAttack};
use fle_core::protocols::WakeLead;
use fle_core::Coalition;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let trials: u64 = if quick { 80 } else { 400 };

    let mut lie = Table::new(
        "apph: id-lie deviation, E[u0] = Pr[ghost elected] vs k/n",
        &["n", "k", "k/n", "ghost rate", "fail rate"],
    );
    let configs: &[(usize, usize)] = if quick {
        &[(8, 1), (8, 2)]
    } else {
        &[(8, 1), (8, 2), (12, 3), (16, 4)]
    };
    for &(n, k) in configs {
        let coalition = Coalition::equally_spaced(n, k, 1).expect("valid layout");
        let results = par_seeds(trials, |seed| {
            let protocol = WakeLead::new(n).with_seed(seed);
            let exec = WakeupIdLieAttack::new()
                .run(&protocol, &coalition)
                .expect("lie attack always runs");
            match exec.outcome.elected() {
                Some(w) => (WakeupIdLieAttack::is_ghost(w), false),
                None => (false, true),
            }
        });
        let ghosts = results.iter().filter(|&&(g, _)| g).count() as f64 / trials as f64;
        let fails = results.iter().filter(|&&(_, f)| f).count() as f64 / trials as f64;
        lie.row([
            n.to_string(),
            k.to_string(),
            fmt_rate(k as f64 / n as f64),
            fmt_rate(ghosts),
            fmt_rate(fails),
        ]);
    }
    lie.note("paper: E[u0] = k/n for every k >= 1, so the naive unknown-ids definition admits no resilient protocol");

    let mut mask = Table::new(
        "apph: masking attack - per-segment origins and forced ghost election",
        &["n", "k", "segments", "distinct origins", "forced rate"],
    );
    let mask_configs: &[(usize, usize)] = if quick {
        &[(16, 4)]
    } else {
        &[(16, 4), (25, 5), (36, 6)]
    };
    let mask_trials: u64 = if quick { 20 } else { 60 };
    for &(n, k) in mask_configs {
        let coalition = Coalition::equally_spaced(n, k, 0).expect("valid layout");
        let wins = par_seeds(mask_trials, |seed| {
            let protocol = WakeLead::new(n).with_seed(seed);
            let attack = WakeupMaskAttack::new(seed as usize % k);
            let plan = attack.plan(&protocol, &coalition).expect("feasible layout");
            let exec = attack.run(&protocol, &coalition).expect("feasible layout");
            exec.outcome.elected() == Some(plan.target_id)
        });
        let protocol = WakeLead::new(n).with_seed(0);
        let plan = WakeupMaskAttack::new(0)
            .plan(&protocol, &coalition)
            .expect("feasible layout");
        let mut origins: Vec<_> = plan.segment_origins.iter().map(|&(_, o, _)| o).collect();
        origins.sort_unstable();
        origins.dedup();
        mask.row([
            n.to_string(),
            k.to_string(),
            plan.segment_origins.len().to_string(),
            origins.len().to_string(),
            fmt_rate(wins.iter().filter(|&&b| b).count() as f64 / mask_trials as f64),
        ]);
    }
    mask.note("every honest segment believes it contains the origin, yet all elect the same fabricated id");

    vec![lie, mask]
}

#[cfg(test)]
mod tests {
    #[test]
    fn lie_rate_tracks_fair_share_and_mask_forces() {
        let tables = super::run(true);
        let lie = tables[0].render();
        for line in lie
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let share: f64 = cells[2].parse().unwrap();
            let ghost: f64 = cells[3].parse().unwrap();
            let fails: f64 = cells[4].parse().unwrap();
            assert!((ghost - share).abs() < 0.12, "{line}");
            assert_eq!(fails, 0.0, "{line}");
        }
        let mask = tables[1].render();
        for line in mask
            .lines()
            .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(
                cells[2], cells[3],
                "origins must be one per segment: {line}"
            );
            assert_eq!(cells[4], "1.000", "mask attack must force: {line}");
        }
    }
}
