//! Figure 1: adversary locations and honest segments on the ring.
//!
//! The paper's figure shows a ring with adversaries `a_j` separated by
//! honest segments `I_j` of lengths `l_j`. This experiment renders the
//! layouts every attack in the paper depends on and tabulates their
//! segment statistics.

use crate::Table;
use fle_core::Coalition;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 32 } else { 64 };
    let mut layout = Table::new(
        "fig1: coalition layouts (A = adversary, . = honest)",
        &["layout", "ring"],
    );
    let k = (n as f64).sqrt() as usize;
    let equally = Coalition::equally_spaced(n, k, 1).expect("valid");
    layout.row(["equally spaced k=sqrt(n)", &equally.render_ascii(n)]);
    let consecutive = Coalition::consecutive(n, k, 1).expect("valid");
    layout.row(["consecutive k=sqrt(n)", &consecutive.render_ascii(n)]);
    let random = Coalition::random_bernoulli(n, (k as f64) / n as f64, 7).expect("non-trivial");
    layout.row(["bernoulli p=k/n", &random.render_ascii(n)]);

    let mut stats = Table::new(
        "fig1: honest segment statistics (Defs 3.1, 3.2)",
        &[
            "layout", "n", "k", "exposed", "min l_j", "max l_j", "sum l_j",
        ],
    );
    for (name, c) in [
        ("equally spaced", &equally),
        ("consecutive", &consecutive),
        ("bernoulli", &random),
    ] {
        stats.row([
            name.to_string(),
            c.n().to_string(),
            c.k().to_string(),
            c.exposed().len().to_string(),
            c.min_distance().to_string(),
            c.max_distance().to_string(),
            c.distances().iter().sum::<usize>().to_string(),
        ]);
    }
    stats.note("sum l_j = n - k always (the segments partition the honest processors)");
    vec![layout, stats]
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_without_panicking() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert!(tables[1].render().contains("equally spaced"));
    }
}
