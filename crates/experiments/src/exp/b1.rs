//! Claim B.1: `Basic-LEAD` is not resilient to even one adversary.
//!
//! Paper claim: a single processor that waits for the other `n − 1`
//! values before "selecting" its own forces any target `w` with
//! probability 1 (vs. the fair `1/n`). Measured: attack success rate and
//! the honest baseline rate for the same target.

use super::fmt_rate;
use crate::{par_seeds, Table};
use fle_attacks::BasicSingleAttack;
use fle_core::protocols::{BasicLead, FleProtocol};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[8, 16] } else { &[8, 32, 128] };
    let trials: u64 = if quick { 60 } else { 300 };
    let mut t = Table::new(
        "b1: single adversary vs Basic-LEAD (Claim B.1)",
        &[
            "n",
            "trials",
            "attack Pr[w]",
            "honest Pr[w]",
            "fair 1/n",
            "epsilon",
        ],
    );
    for &n in sizes {
        let results = par_seeds(trials, |seed| {
            let protocol = BasicLead::new(n).with_seed(seed);
            let adv = (seed as usize * 7 + 1) % n;
            let w = (seed * 13) % n as u64;
            let attacked = BasicSingleAttack::new(adv, w)
                .run(&protocol)
                .expect("single adversary is always feasible");
            let honest = protocol.run_honest();
            (
                attacked.outcome.elected() == Some(w),
                honest.outcome.elected() == Some(w),
            )
        });
        let wins = results.iter().filter(|r| r.0).count() as f64 / trials as f64;
        let honest = results.iter().filter(|r| r.1).count() as f64 / trials as f64;
        t.row([
            n.to_string(),
            trials.to_string(),
            fmt_rate(wins),
            fmt_rate(honest),
            fmt_rate(1.0 / n as f64),
            super::fmt_eps(wins - 1.0 / n as f64),
        ]);
    }
    t.note("paper: attack succeeds with probability 1 for every n, target and position");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn attack_rate_is_one() {
        let tables = super::run(true);
        let s = tables[0].render();
        // every row reports a 1.000 attack success rate
        assert!(s.matches("1.000").count() >= 2, "{s}");
    }
}
