//! The synchronization story (Lemma D.5, Section 6): how far apart can
//! sent-message counters drift?
//!
//! Paper claims: honest `A-LEADuni` keeps everyone 1-synchronized; a
//! non-failing deviation keeps coalitions `2k²`-synchronized (Lemma D.5)
//! and the cubic attack *uses* a gap of `Ω(k²)`; `PhaseAsyncLead`'s phase
//! validation forces `O(k)`-synchronization, which is exactly why the
//! cubic attack dies there while the (validation-honest) rushing attack
//! survives with an `O(k)` gap.

use crate::Table;
use fle_attacks::{cubic_distances, CubicAttack, PhaseRushingAttack, RushingAttack};
use fle_core::protocols::{ALeadUni, PhaseAsyncLead};
use fle_core::Coalition;
use ring_sim::SyncGapProbe;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n: usize = if quick { 144 } else { 576 };
    let sqrt_n = (n as f64).sqrt() as usize;
    let mut t = Table::new(
        "sync: max over time of |Sent_i - Sent_j| (watched set)",
        &["protocol", "scenario", "k", "max gap", "reference"],
    );

    // Honest A-LEADuni over all nodes.
    {
        let protocol = ALeadUni::new(n).with_seed(1);
        let mut probe = SyncGapProbe::new((0..n).collect());
        let _ = protocol.run_with_probe(Vec::new(), &mut probe);
        t.row([
            "A-LEADuni".to_string(),
            "honest (all nodes)".to_string(),
            "-".to_string(),
            probe.max_gap().to_string(),
            "1 (round structure)".to_string(),
        ]);
    }
    // Rushing attack on A-LEADuni, gap over the coalition.
    {
        let coalition = Coalition::equally_spaced(n, sqrt_n, 1).expect("valid");
        let protocol = ALeadUni::new(n).with_seed(2);
        let mut probe = SyncGapProbe::new(coalition.positions().to_vec());
        let nodes = RushingAttack::new(0)
            .adversary_nodes(&protocol, &coalition)
            .expect("feasible at sqrt(n)");
        let _ = protocol.run_with_probe(nodes, &mut probe);
        t.row([
            "A-LEADuni".to_string(),
            "rushing attack (coalition)".to_string(),
            sqrt_n.to_string(),
            probe.max_gap().to_string(),
            format!("k = {sqrt_n}"),
        ]);
    }
    // Cubic attack on A-LEADuni: the Ω(k²) gap.
    {
        let plan = cubic_distances(n).expect("n large enough");
        let protocol = ALeadUni::new(n).with_seed(3);
        let mut probe = SyncGapProbe::new(plan.positions().to_vec());
        let nodes = CubicAttack::new(0)
            .adversary_nodes(&protocol, &plan)
            .expect("feasible");
        let _ = protocol.run_with_probe(nodes, &mut probe);
        let k = plan.k();
        t.row([
            "A-LEADuni".to_string(),
            "cubic attack (coalition)".to_string(),
            k.to_string(),
            probe.max_gap().to_string(),
            format!("k^2 = {} (Lemma D.5 cap: 2k^2 = {})", k * k, 2 * k * k),
        ]);
    }
    // Honest PhaseAsyncLead over all nodes.
    {
        let protocol = PhaseAsyncLead::new(n).with_seed(4).with_fn_key(9);
        let mut probe = SyncGapProbe::new((0..n).collect());
        let _ = protocol.run_with_probe(Vec::new(), &mut probe);
        t.row([
            "PhaseAsyncLead".to_string(),
            "honest (all nodes)".to_string(),
            "-".to_string(),
            probe.max_gap().to_string(),
            "O(1) (phase pacing)".to_string(),
        ]);
    }
    // Rushing attack on PhaseAsyncLead: gap stays O(k).
    {
        let k = sqrt_n + 3;
        let coalition = Coalition::equally_spaced(n, k, 1).expect("valid");
        let protocol = PhaseAsyncLead::new(n).with_seed(5).with_fn_key(10);
        let mut probe = SyncGapProbe::new(coalition.positions().to_vec());
        let nodes = PhaseRushingAttack::new(0)
            .adversary_nodes(&protocol, &coalition)
            .expect("feasible at sqrt(n)+3");
        let _ = protocol.run_with_probe(nodes, &mut probe);
        t.row([
            "PhaseAsyncLead".to_string(),
            "rushing attack (coalition)".to_string(),
            k.to_string(),
            probe.max_gap().to_string(),
            format!("O(k), k = {k}"),
        ]);
    }
    t.note("paper: phase validation shrinks the tolerable desync from k^2 to k (Sec 6)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn cubic_gap_dwarfs_phase_gap() {
        let t = &super::run(true)[0];
        let s = t.render();
        // The "max gap" is the second integer token of an attack row (the
        // first is k), and the first of an honest row (k column is "-").
        let ints_of = |needle: &str| -> Vec<u64> {
            s.lines()
                .find(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("row {needle} missing: {s}"))
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect()
        };
        let cubic_gap = ints_of("cubic attack")[1];
        let honest_phase_gap = ints_of("PhaseAsyncLead  honest")[0];
        assert!(
            cubic_gap > 20,
            "cubic gap should be Omega(k^2): {cubic_gap}"
        );
        assert!(
            honest_phase_gap <= 4,
            "phase honest gap: {honest_phase_gap}"
        );
    }
}
