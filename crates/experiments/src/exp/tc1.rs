//! Theorem C.1: randomly located coalitions of `Θ(√(n log n))` control
//! `A-LEADuni` with high probability — without knowing `k` or their
//! distances.
//!
//! Paper claim: with `p = √(8 ln n / n)` the circularity-detection attack
//! succeeds with probability `≥ 1 − n^{2−C}` on a `1 − δ` fraction of
//! coalitions. Measured: success rates as the density sweeps across the
//! threshold; favourable layouts (the theorem's good event) must succeed
//! essentially always.

use super::fmt_rate;
use crate::{par_seeds, Table};
use fle_attacks::RandomLocatedAttack;
use fle_core::protocols::ALeadUni;
use fle_core::Coalition;

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[256] } else { &[256, 1024] };
    let trials: u64 = if quick { 30 } else { 80 };
    let window = 4;
    let mut t = Table::new(
        "tc1: randomly located coalitions vs A-LEADuni (Thm C.1)",
        &[
            "n",
            "p/p*",
            "p",
            "mean k",
            "favourable",
            "Pr[w] overall",
            "Pr[w] | favourable",
        ],
    );
    for &n in sizes {
        let p_star = (8.0 * (n as f64).ln() / n as f64).sqrt();
        for c in [0.25, 0.5, 1.0] {
            let p = (c * p_star).min(0.45);
            let attack = RandomLocatedAttack::new(3, window);
            let results = par_seeds(trials, |seed| {
                let Some(coalition) = Coalition::random_bernoulli(n, p, seed * 65_537 + 11) else {
                    return (0usize, false, false);
                };
                let protocol = ALeadUni::new(n).with_seed(seed);
                let fav = attack.layout_is_favourable(&coalition);
                let win = attack
                    .run(&protocol, &coalition)
                    .is_ok_and(|e| e.outcome.elected() == Some(3));
                (coalition.k(), fav, win)
            });
            let mean_k = results.iter().map(|r| r.0).sum::<usize>() as f64 / trials as f64;
            let fav = results.iter().filter(|r| r.1).count();
            let wins = results.iter().filter(|r| r.2).count();
            let fav_wins = results.iter().filter(|r| r.1 && r.2).count();
            t.row([
                n.to_string(),
                format!("{c:.2}"),
                format!("{p:.3}"),
                format!("{mean_k:.1}"),
                fmt_rate(fav as f64 / trials as f64),
                fmt_rate(wins as f64 / trials as f64),
                if fav == 0 {
                    "-".to_string()
                } else {
                    fmt_rate(fav_wins as f64 / fav as f64)
                },
            ]);
        }
    }
    t.note("p* = sqrt(8 ln n / n); the attack does not know k or the distances l_j");
    t.note("paper: favourable layouts lose only to false circularity (prob <= n^(2-C))");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn favourable_layouts_win() {
        let t = &super::run(true)[0];
        let s = t.render();
        // At the full threshold density the favourable-conditioned rate is 1.
        let last = s.lines().rfind(|l| l.starts_with("256")).unwrap();
        assert!(last.ends_with("1.000"), "{s}");
    }
}
