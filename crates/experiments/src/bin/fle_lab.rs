//! `fle-lab` — run the reproduction experiments and harness sweeps.
//!
//! ```text
//! fle-lab all                      # every experiment, full sizes
//! fle-lab t42 t61 --quick          # selected experiments, smoke sizes
//! fle-lab --list                   # show the registry
//! fle-lab --threads 4 all          # cap the worker pool for everything
//! fle-lab sweep --protocol phase --n 64 --trials 10000 --seed 1 \
//!         --threads 8 --format json
//! fle-lab attack-sweep --attack rushing --n 16 --trials 500 --seed 1 \
//!         --coalition spaced:4:1 --target fixed:3 --format json
//! fle-lab attack-sweep --spec scenario.json   # any SweepSpec JSON file
//! fle-lab sweep ... --checkpoint state.json --checkpoint-every 1000
//! fle-lab sweep ... --shard 0/4 > part0.json  # one shard of the range
//! fle-lab merge-reports part0.json part1.json part2.json part3.json
//! fle-lab sweep ... --batch 8                 # lockstep-batched honest path
//! fle-lab sweep ... --crash 2 --recover 512   # crash-fault injection
//! fle-lab bench-baseline --out BENCH_10.json  # perf trajectory snapshot
//! ```
//!
//! The `sweep` subcommand runs one deterministic honest `fle-harness`
//! batch and prints the aggregated [`fle_harness::TrialReport`] as JSON
//! (default) or CSV on stdout. The `attack-sweep` subcommand does the
//! same for adversarial (and tree-dictator) grids: configure the attack
//! with flags or load any serialized [`fle_harness::SweepSpec`] with
//! `--spec`; reports carry an `attack` arm (successes, infeasible
//! trials, success rate with Wilson 95% CI). Output is byte-identical
//! for every `--threads` value.
//!
//! Both sweep subcommands are crash-safe: `--checkpoint FILE` snapshots
//! the accumulated [`fle_harness::ReportPartial`] atomically every
//! `--checkpoint-every` trials, and rerunning the identical command after
//! a crash (SIGKILL included) resumes past the recorded prefix — the
//! final bytes match the uninterrupted run exactly. `--shard I/K` runs
//! only the I-th of K slices of the trial index space and prints the
//! partial report instead; `merge-reports` folds such partials (any
//! order, any K) back into the byte-identical monolithic report.
//!
//! The `bench-baseline` subcommand measures the honest monomorphized +
//! arena engine path (ns/trial *and* ns/delivery — deliveries counted
//! from a real `Execution` — for the canonical sweep workloads, single
//! thread) plus the cached-engine attack paths (both the raw `run_in`
//! loop and the full `run_sweep` attack grid) against their `SimBuilder`
//! baselines, then writes a machine-readable JSON snapshot, so
//! successive PRs accumulate a perf trajectory (`BENCH_<pr>.json`) that
//! can be diffed.

use fle_attacks::AttackKind;
use fle_experiments::{find, EXPERIMENTS};
use fle_harness::{
    run_sweep, run_sweep_checkpointed, run_sweep_partial, set_default_threads, sha256_hex,
    AttackSweep, BatchConfig, CoalitionSpec, CrashInstant, FaultSpec, FnKeySpec, HonestSweep,
    LatencySpec, ProtocolKind, ReportPartial, ScheduleSpec, SeedMode, SweepSpec, TargetSpec,
    DEFAULT_BATCH_WIDTH,
};

fn print_registry() {
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:<5} {}", e.id, e.description);
    }
    eprintln!(
        "\nusage:\n  fle-lab <id>.. | all [--quick] [--threads N]\n\
         \x20       run experiments by id (see the registry above)\n\
         \x20 fle-lab --list\n\
         \x20       print this registry\n\
         \x20 fle-lab sweep --protocol <basic|alead|phase|phasesum> --n <N>\n\
         \x20       [--trials N] [--seed N] [--threads N] [--fn-key N] [--batch K]\n\
         \x20       [--format json|csv]\n\
         \x20       [--latency <dist>] [--loss PERMILLE] [--dup PERMILLE]\n\
         \x20       [--crash COUNT[@BOUND[ns]]] [--recover DELAY]\n\
         \x20       [--checkpoint FILE [--checkpoint-every N]] [--shard I/K]\n\
         \x20       one deterministic honest batch; report on stdout\n\
         \x20 fle-lab attack-sweep --attack <kind> --n <N> --coalition <placement>\n\
         \x20       [--trials N] [--seed N] [--threads N] [--target <policy>]\n\
         \x20       [--fn-key N | --fn-key-xor MASK] [--seed-mode derived|raw]\n\
         \x20       [--latency <dist>] [--loss PERMILLE] [--dup PERMILLE]\n\
         \x20       [--crash COUNT[@BOUND[ns]]] [--recover DELAY]\n\
         \x20       [--checkpoint FILE [--checkpoint-every N]] [--shard I/K]\n\
         \x20       [--format json|csv]\n\
         \x20 fle-lab attack-sweep --spec FILE.json [--threads N] [--format json|csv]\n\
         \x20       one adversarial batch; the report's attack arm carries\n\
         \x20       successes, infeasible trials and the Wilson 95% CI\n\
         \x20 fle-lab merge-reports PART.json.. [--format json|csv]\n\
         \x20       fold `--shard` partial reports into the monolithic report\n\
         \x20     <kind>: basic_single | rushing | cubic | random_located | phase_rushing |\n\
         \x20             phase_guess | phase_burst | phase_sum | wakeup_id_lie | wakeup_mask\n\
         \x20     <placement>: spaced:K[:OFFSET] | consecutive:K[:START] | explicit:P1,P2,..\n\
         \x20             | random:K:SEED | cubic | single:POS\n\
         \x20     <policy>: fixed:V | seedprod:M   (target leader per trial)\n\
         \x20     <dist>: const:NS | uniform:LO:HI | twopoint:LO:HI:PERMILLE   (ns draws;\n\
         \x20             any of --latency/--loss/--dup selects the timed scheduler)\n\
         \x20     --crash COUNT[@BOUND[ns]]: COUNT nodes crash-stop per trial at\n\
         \x20             instants drawn uniformly below BOUND (deliveries, or\n\
         \x20             virtual ns with the ns suffix on timed schedules;\n\
         \x20             default 2n\u{b2} deliveries); --recover DELAY restarts each\n\
         \x20             crashed node DELAY window-units later\n\
         \x20 fle-lab bench-baseline [--out PATH] [--quick]\n\
         \x20       write the per-PR perf snapshot (default BENCH_10.json)"
    );
}

fn usage() -> ! {
    print_registry();
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    let Some(raw) = args.get(i) else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{raw}' for {flag}");
        std::process::exit(2);
    })
}

/// Validates an output format up front — a typo must not cost a full
/// multi-minute sweep.
fn check_format(format: &str) {
    if format != "json" && format != "csv" {
        eprintln!("unknown format '{format}' (expected json | csv)");
        std::process::exit(2);
    }
}

/// Prints `report` in the requested (pre-validated) format.
fn emit_report(report: &fle_harness::TrialReport, format: &str) {
    match format {
        "json" => println!("{}", report.to_json()),
        "csv" => print!("{}", report.to_csv()),
        _ => unreachable!("format validated before the sweep"),
    }
}

/// Crash-safety flags shared by `sweep` and `attack-sweep`.
struct ResilienceOpts {
    /// `--checkpoint FILE`: snapshot progress atomically and resume from
    /// the file if it already exists.
    checkpoint: Option<String>,
    /// `--checkpoint-every N` trials between snapshots.
    checkpoint_every: u64,
    /// `--shard I/K`: run only slice `I` of `K` and print the partial.
    shard: Option<(u64, u64)>,
}

impl Default for ResilienceOpts {
    fn default() -> Self {
        Self {
            checkpoint: None,
            checkpoint_every: 1_000,
            shard: None,
        }
    }
}

/// Parses a `--shard I/K` slice selector.
fn parse_shard(raw: &str) -> Result<(u64, u64), String> {
    let (i, k) = raw
        .split_once('/')
        .ok_or_else(|| format!("invalid shard '{raw}' (expected I/K, e.g. 0/4)"))?;
    let parse = |s: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|_| format!("invalid number '{s}' in shard '{raw}'"))
    };
    let (i, k) = (parse(i)?, parse(k)?);
    if k == 0 || i >= k {
        return Err(format!("shard '{raw}' out of range (need I < K, K >= 1)"));
    }
    Ok((i, k))
}

/// The trial range shard `i` of `k` covers: proportional slices that
/// partition `0..trials` exactly, every shard within one trial of the
/// others.
fn shard_range(shard: Option<(u64, u64)>, trials: u64) -> (u64, u64) {
    match shard {
        Some((i, k)) => (
            (i as u128 * trials as u128 / k as u128) as u64,
            ((i + 1) as u128 * trials as u128 / k as u128) as u64,
        ),
        None => (0, trials),
    }
}

/// Runs a validated spec honouring the crash-safety flags and prints the
/// result: the aggregated report normally, the shard's mergeable
/// [`ReportPartial`] under `--shard`. A completed run deletes its
/// checkpoint file (the output it protected has been emitted). Returns
/// `(protocol label, n, trials run)` for the caller's status line.
fn execute_sweep(spec: &SweepSpec, format: &str, opts: &ResilienceOpts) -> (String, usize, u64) {
    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    if opts.shard.is_some() && format != "json" {
        fail(
            "--shard prints a mergeable partial report, which is JSON-only (drop --format csv)"
                .to_string(),
        );
    }
    let (lo, hi) = shard_range(opts.shard, spec.batch().trials);
    let partial = match &opts.checkpoint {
        Some(raw) => {
            let run = run_sweep_checkpointed(
                spec,
                std::path::Path::new(raw),
                opts.checkpoint_every,
                lo,
                hi,
            )
            .unwrap_or_else(|e| fail(e));
            if let Some(at) = run.resumed_from {
                eprintln!("  [sweep resumed from trial {at}]");
            }
            run.partial
        }
        None => run_sweep_partial(spec, lo, hi).unwrap_or_else(|e| fail(e)),
    };
    let label = partial.protocol().to_string();
    let (n, ran) = (partial.n(), partial.covered());
    if opts.shard.is_some() {
        println!("{}", partial.to_json());
    } else {
        let report = partial
            .finish()
            .expect("full-range partial always finishes");
        emit_report(&report, format);
    }
    if let Some(raw) = &opts.checkpoint {
        // The protected output has been emitted; the snapshot is spent.
        // A `.tmp` sibling from an interrupted atomic write is stale the
        // same moment, so it goes too.
        let _ = std::fs::remove_file(raw);
        let _ = std::fs::remove_file(format!("{raw}.tmp"));
    }
    (label, n, ran)
}

/// `merge-reports PART.json.. [--format json|csv]`: folds `--shard`
/// partial-report files into the byte-identical monolithic report.
fn run_merge_reports(args: &[String]) {
    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    let mut format = String::from("json");
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" | "-f" => {
                format = parse_arg(args, i + 1, "--format");
                i += 2;
            }
            flag if flag.starts_with('-') => fail(format!(
                "unknown flag '{flag}' for subcommand 'merge-reports'"
            )),
            file => {
                files.push(file.to_string());
                i += 1;
            }
        }
    }
    check_format(&format);
    if files.is_empty() {
        fail("merge-reports needs at least one partial-report file".to_string());
    }
    let mut merged: Option<ReportPartial> = None;
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
        let partial =
            ReportPartial::parse_json(&src).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        match &mut merged {
            None => merged = Some(partial),
            Some(acc) => acc
                .merge(&partial)
                .unwrap_or_else(|e| fail(format!("{path}: {e}"))),
        }
    }
    let merged = merged.expect("at least one file parsed");
    let report = merged.finish().unwrap_or_else(|e| fail(e));
    emit_report(&report, &format);
    eprintln!(
        "  [merge-reports {} n={} trials={} from {} partials]",
        report.protocol,
        report.n,
        report.trials,
        files.len()
    );
}

fn run_sweep_cli(args: &[String]) {
    let mut protocol: Option<ProtocolKind> = None;
    let mut n: usize = 0;
    let mut batch = BatchConfig {
        trials: 10_000,
        base_seed: 0,
        threads: 0,
    };
    let mut fn_key = 0u64;
    let mut batch_width = 0usize;
    let mut format = String::from("json");
    let mut latency: Option<LatencySpec> = None;
    let mut loss: Option<u32> = None;
    let mut dup: Option<u32> = None;
    let mut crash: Option<(u64, Option<CrashInstant>)> = None;
    let mut recover: Option<u64> = None;
    let mut opts = ResilienceOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint" => {
                opts.checkpoint = Some(parse_arg(args, i + 1, "--checkpoint"));
                i += 2;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = parse_arg(args, i + 1, "--checkpoint-every");
                i += 2;
            }
            "--shard" => {
                let raw: String = parse_arg(args, i + 1, "--shard");
                opts.shard = Some(parse_shard(&raw).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--latency" => {
                let raw: String = parse_arg(args, i + 1, "--latency");
                latency = Some(parse_latency(&raw).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--loss" => {
                loss = Some(parse_arg(args, i + 1, "--loss"));
                i += 2;
            }
            "--dup" => {
                dup = Some(parse_arg(args, i + 1, "--dup"));
                i += 2;
            }
            "--crash" => {
                let raw: String = parse_arg(args, i + 1, "--crash");
                crash = Some(parse_crash(&raw).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--recover" => {
                recover = Some(parse_arg(args, i + 1, "--recover"));
                i += 2;
            }
            "--protocol" | "-p" => {
                let spec: String = parse_arg(args, i + 1, "--protocol");
                match spec.parse() {
                    Ok(p) => protocol = Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--n" | "-n" => {
                n = parse_arg(args, i + 1, "--n");
                i += 2;
            }
            "--trials" | "-t" => {
                batch.trials = parse_arg(args, i + 1, "--trials");
                i += 2;
            }
            "--seed" | "-s" => {
                batch.base_seed = parse_arg(args, i + 1, "--seed");
                i += 2;
            }
            "--threads" | "-j" => {
                batch.threads = parse_arg(args, i + 1, "--threads");
                i += 2;
            }
            "--fn-key" => {
                fn_key = parse_arg(args, i + 1, "--fn-key");
                i += 2;
            }
            "--batch" | "-b" => {
                batch_width = parse_arg(args, i + 1, "--batch");
                i += 2;
            }
            "--format" | "-f" => {
                format = parse_arg(args, i + 1, "--format");
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}' for subcommand 'sweep'");
                std::process::exit(2);
            }
        }
    }
    let Some(protocol) = protocol else {
        eprintln!("sweep needs --protocol");
        std::process::exit(2);
    };
    if n == 0 {
        eprintln!("sweep needs --n");
        std::process::exit(2);
    }
    check_format(&format);
    let schedule = schedule_from_flags(latency, loss, dup);
    let fault = fault_from_flags(
        crash,
        recover,
        n,
        matches!(schedule, ScheduleSpec::Timed { .. }),
    );
    let spec = SweepSpec::Honest(HonestSweep {
        protocol,
        n,
        fn_key,
        batch,
        batch_width,
        schedule,
        fault,
    });
    if let Err(e) = spec.validate() {
        eprintln!("invalid sweep spec: {e}");
        std::process::exit(2);
    }
    let start = std::time::Instant::now();
    let (label, n, ran) = execute_sweep(&spec, &format, &opts);
    eprintln!(
        "  [sweep {} n={} trials={} threads={}: {:.1?}]",
        label,
        n,
        ran,
        batch.resolved_threads(),
        start.elapsed()
    );
}

/// Parses an `attack-sweep --coalition` placement:
/// `spaced:K[:OFFSET]`, `consecutive:K[:START]`, `explicit:P1,P2,..`,
/// `random:K:SEED`, `cubic`, `single:POS`.
fn parse_coalition(raw: &str) -> Result<CoalitionSpec, String> {
    let mut parts = raw.split(':');
    let head = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let int = |s: &str, what: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("invalid {what} '{s}' in coalition '{raw}'"))
    };
    match (head, rest.as_slice()) {
        ("spaced", [k]) => Ok(CoalitionSpec::EquallySpaced {
            k: int(k, "k")?,
            offset: 1,
        }),
        ("spaced", [k, offset]) => Ok(CoalitionSpec::EquallySpaced {
            k: int(k, "k")?,
            offset: int(offset, "offset")?,
        }),
        ("consecutive", [k]) => Ok(CoalitionSpec::Contiguous {
            k: int(k, "k")?,
            start: 0,
        }),
        ("consecutive", [k, start]) => Ok(CoalitionSpec::Contiguous {
            k: int(k, "k")?,
            start: int(start, "start")?,
        }),
        ("explicit", [list]) => Ok(CoalitionSpec::Explicit {
            positions: list
                .split(',')
                .map(|p| int(p, "position"))
                .collect::<Result<_, _>>()?,
        }),
        ("random", [k, seed]) => Ok(CoalitionSpec::RandomLocated {
            k: int(k, "k")?,
            layout_seed: int(seed, "seed")? as u64,
        }),
        ("cubic", []) => Ok(CoalitionSpec::Cubic),
        ("single", [pos]) => Ok(CoalitionSpec::Single {
            position: int(pos, "position")?,
        }),
        _ => Err(format!(
            "unknown coalition placement '{raw}' (expected spaced:K[:OFFSET] | \
             consecutive:K[:START] | explicit:P1,P2,.. | random:K:SEED | cubic | single:POS)"
        )),
    }
}

/// Parses an `attack-sweep --target` policy: `fixed:V` or `seedprod:M`.
fn parse_target(raw: &str) -> Result<TargetSpec, String> {
    let (head, value) = raw.split_once(':').unwrap_or((raw, ""));
    let v: u64 = value
        .parse()
        .map_err(|_| format!("invalid value '{value}' in target '{raw}'"))?;
    match head {
        "fixed" => Ok(TargetSpec::Fixed(v)),
        "seedprod" => Ok(TargetSpec::SeedProduct { multiplier: v }),
        _ => Err(format!(
            "unknown target policy '{raw}' (expected fixed:V | seedprod:M)"
        )),
    }
}

/// Parses a `--latency` distribution: `const:NS`, `uniform:LO:HI` or
/// `twopoint:LO:HI:PERMILLE` (all values in nanoseconds of virtual time,
/// the permille being the probability of the `hi` draw).
fn parse_latency(raw: &str) -> Result<LatencySpec, String> {
    let mut parts = raw.split(':');
    let head = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let int = |s: &str, what: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|_| format!("invalid {what} '{s}' in latency '{raw}'"))
    };
    match (head, rest.as_slice()) {
        ("const", [ns]) => Ok(LatencySpec::Constant { ns: int(ns, "ns")? }),
        ("uniform", [lo, hi]) => Ok(LatencySpec::Uniform {
            lo: int(lo, "lo")?,
            hi: int(hi, "hi")?,
        }),
        ("twopoint", [lo, hi, permille]) => Ok(LatencySpec::TwoPoint {
            lo: int(lo, "lo")?,
            hi: int(hi, "hi")?,
            hi_permille: u32::try_from(int(permille, "permille")?)
                .map_err(|_| format!("permille out of range in latency '{raw}'"))?,
        }),
        _ => Err(format!(
            "unknown latency distribution '{raw}' (expected const:NS | uniform:LO:HI | \
             twopoint:LO:HI:PERMILLE)"
        )),
    }
}

/// Parses a `--crash COUNT[@BOUND[ns]]` fault selector: COUNT nodes
/// crash per trial at instants drawn uniformly in `[0, BOUND)` — a
/// delivery-count bound by default, virtual nanoseconds with an `ns`
/// suffix (timed schedules only). With no `@BOUND` the window defaults
/// to the honest workload's nominal length, 2n² deliveries (fifo only;
/// timed schedules need an explicit `@BOUNDns`).
fn parse_crash(raw: &str) -> Result<(u64, Option<CrashInstant>), String> {
    let (count, bound) = match raw.split_once('@') {
        None => (raw, None),
        Some((count, bound)) => (count, Some(bound)),
    };
    let crashes: u64 = count
        .parse()
        .map_err(|_| format!("invalid crash count '{count}' in --crash '{raw}'"))?;
    let window = match bound {
        None => None,
        Some(b) => Some(match b.strip_suffix("ns") {
            Some(t) => CrashInstant::VirtualNs(
                t.parse()
                    .map_err(|_| format!("invalid virtual-time bound '{b}' in --crash '{raw}'"))?,
            ),
            None => CrashInstant::Deliveries(
                b.parse()
                    .map_err(|_| format!("invalid delivery bound '{b}' in --crash '{raw}'"))?,
            ),
        }),
    };
    Ok((crashes, window))
}

/// Folds the `--crash`/`--recover` flags into a [`FaultSpec`], filling
/// in the default fifo window (2n² deliveries, the nominal honest
/// workload length) when `--crash` gave no explicit `@BOUND`. Timed
/// schedules have no delivery clock, so they require the explicit
/// `@BOUNDns` form.
fn fault_from_flags(
    crash: Option<(u64, Option<CrashInstant>)>,
    recover: Option<u64>,
    n: usize,
    timed: bool,
) -> Option<FaultSpec> {
    let Some((crashes, window)) = crash else {
        if recover.is_some() {
            eprintln!("--recover needs --crash");
            std::process::exit(2);
        }
        return None;
    };
    let window = window.unwrap_or_else(|| {
        if timed {
            eprintln!(
                "--crash on a timed schedule needs an explicit virtual-time window \
                 (--crash COUNT@BOUNDns)"
            );
            std::process::exit(2);
        }
        CrashInstant::Deliveries(2 * (n as u64) * (n as u64))
    });
    Some(FaultSpec {
        crashes,
        window,
        recover,
    })
}

/// Folds the three timed-network flags into a [`ScheduleSpec`]: all
/// absent → the FIFO fast path; any present → the timed scheduler with
/// zero defaults for the rest.
fn schedule_from_flags(
    latency: Option<LatencySpec>,
    loss: Option<u32>,
    dup: Option<u32>,
) -> ScheduleSpec {
    if latency.is_none() && loss.is_none() && dup.is_none() {
        ScheduleSpec::Fifo
    } else {
        ScheduleSpec::Timed {
            latency: latency.unwrap_or(LatencySpec::ZERO),
            loss_permille: loss.unwrap_or(0),
            dup_permille: dup.unwrap_or(0),
        }
    }
}

fn run_attack_sweep_cli(args: &[String]) {
    let mut spec_path: Option<String> = None;
    let mut attack: Option<AttackKind> = None;
    let mut n: usize = 0;
    let mut batch = BatchConfig {
        trials: 1_000,
        base_seed: 0,
        threads: 0,
    };
    let mut threads_override: Option<usize> = None;
    let mut fn_key = FnKeySpec::Fixed(0);
    let mut coalition: Option<CoalitionSpec> = None;
    let mut target = TargetSpec::Fixed(0);
    let mut seed_mode = SeedMode::Derived;
    let mut format = String::from("json");
    let mut latency: Option<LatencySpec> = None;
    let mut loss: Option<u32> = None;
    let mut dup: Option<u32> = None;
    let mut crash: Option<(u64, Option<CrashInstant>)> = None;
    let mut recover: Option<u64> = None;
    let mut opts = ResilienceOpts::default();
    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint" => {
                opts.checkpoint = Some(parse_arg(args, i + 1, "--checkpoint"));
                i += 2;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = parse_arg(args, i + 1, "--checkpoint-every");
                i += 2;
            }
            "--shard" => {
                let raw: String = parse_arg(args, i + 1, "--shard");
                opts.shard = Some(parse_shard(&raw).unwrap_or_else(|e| fail(e)));
                i += 2;
            }
            "--latency" => {
                let raw: String = parse_arg(args, i + 1, "--latency");
                latency = Some(parse_latency(&raw).unwrap_or_else(|e| fail(e)));
                i += 2;
            }
            "--loss" => {
                loss = Some(parse_arg(args, i + 1, "--loss"));
                i += 2;
            }
            "--dup" => {
                dup = Some(parse_arg(args, i + 1, "--dup"));
                i += 2;
            }
            "--crash" => {
                let raw: String = parse_arg(args, i + 1, "--crash");
                crash = Some(parse_crash(&raw).unwrap_or_else(|e| fail(e)));
                i += 2;
            }
            "--recover" => {
                recover = Some(parse_arg(args, i + 1, "--recover"));
                i += 2;
            }
            "--spec" => {
                spec_path = Some(parse_arg(args, i + 1, "--spec"));
                i += 2;
            }
            "--attack" | "-a" => {
                let raw: String = parse_arg(args, i + 1, "--attack");
                attack = Some(raw.parse().unwrap_or_else(|e| fail(e)));
                i += 2;
            }
            "--n" | "-n" => {
                n = parse_arg(args, i + 1, "--n");
                i += 2;
            }
            "--trials" | "-t" => {
                batch.trials = parse_arg(args, i + 1, "--trials");
                i += 2;
            }
            "--seed" | "-s" => {
                batch.base_seed = parse_arg(args, i + 1, "--seed");
                i += 2;
            }
            "--threads" | "-j" => {
                let t: usize = parse_arg(args, i + 1, "--threads");
                batch.threads = t;
                threads_override = Some(t);
                i += 2;
            }
            "--fn-key" => {
                fn_key = FnKeySpec::Fixed(parse_arg(args, i + 1, "--fn-key"));
                i += 2;
            }
            "--fn-key-xor" => {
                fn_key = FnKeySpec::SeedXor(parse_arg(args, i + 1, "--fn-key-xor"));
                i += 2;
            }
            "--coalition" | "-c" => {
                let raw: String = parse_arg(args, i + 1, "--coalition");
                coalition = Some(parse_coalition(&raw).unwrap_or_else(|e| fail(e)));
                i += 2;
            }
            "--target" | "-w" => {
                let raw: String = parse_arg(args, i + 1, "--target");
                target = parse_target(&raw).unwrap_or_else(|e| fail(e));
                i += 2;
            }
            "--seed-mode" => {
                let raw: String = parse_arg(args, i + 1, "--seed-mode");
                seed_mode = match raw.as_str() {
                    "derived" => SeedMode::Derived,
                    "raw" => SeedMode::RawIndex,
                    _ => fail(format!(
                        "unknown seed mode '{raw}' (expected derived | raw)"
                    )),
                };
                i += 2;
            }
            "--format" | "-f" => {
                format = parse_arg(args, i + 1, "--format");
                i += 2;
            }
            other => {
                eprintln!("unknown flag '{other}' for subcommand 'attack-sweep'");
                std::process::exit(2);
            }
        }
    }
    check_format(&format);
    let spec = if let Some(path) = spec_path {
        if crash.is_some() || recover.is_some() {
            fail("--crash/--recover apply to flag-built sweeps; put a \"fault\" key in the spec file instead".to_string());
        }
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let mut spec = SweepSpec::parse_json(&src).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        // CLI-level overrides apply on top of the file.
        if let Some(t) = threads_override {
            match &mut spec {
                SweepSpec::Honest(h) => h.batch.threads = t,
                SweepSpec::Attack(a) => a.batch.threads = t,
                SweepSpec::TreeDictator(d) => d.batch.threads = t,
            }
        }
        spec
    } else {
        let Some(attack) = attack else {
            eprintln!("attack-sweep needs --attack (or --spec FILE.json)");
            std::process::exit(2);
        };
        if n == 0 {
            eprintln!("attack-sweep needs --n");
            std::process::exit(2);
        }
        let Some(coalition) = coalition else {
            eprintln!("attack-sweep needs --coalition");
            std::process::exit(2);
        };
        let schedule = schedule_from_flags(latency, loss, dup);
        let fault = fault_from_flags(
            crash,
            recover,
            n,
            matches!(schedule, ScheduleSpec::Timed { .. }),
        );
        SweepSpec::Attack(AttackSweep {
            attack,
            n,
            fn_key,
            batch,
            coalition,
            target,
            seed_mode,
            schedule,
            fault,
        })
    };
    if let Err(e) = spec.validate() {
        eprintln!("invalid sweep spec: {e}");
        std::process::exit(2);
    }
    let start = std::time::Instant::now();
    let (label, n, ran) = execute_sweep(&spec, &format, &opts);
    eprintln!(
        "  [attack-sweep {label} n={n} trials={ran}: {:.1?}]",
        start.elapsed()
    );
}

/// Single-threaded per-trial timings of the pre-optimization (PR 2)
/// engine on the canonical workloads, measured on the reference container
/// right before the zero-allocation/monomorphization refactor landed.
/// Kept here so every `bench-baseline` snapshot records its improvement
/// against the same origin point of the trajectory.
const PR2_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 7_528.0),
    ("phase_n64", 360_000.0),
    ("alead_n64", 160_000.0),
];

/// The PR 3 snapshot (`BENCH_3.json`) — an earlier point of the
/// trajectory, kept so snapshots stay comparable across PRs.
const PR3_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 4_627.7),
    ("phase_n64", 250_803.6),
    ("alead_n64", 113_687.8),
];

/// The PR 4 snapshot (`BENCH_4.json`) — a further point of the
/// trajectory, so each new snapshot also records intermediate
/// improvements, not just the cumulative one against PR 2.
const PR4_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 3_769.4),
    ("phase_n64", 193_705.5),
    ("alead_n64", 84_680.3),
];

/// The PR 5 snapshot (`BENCH_5.json`) — the previous point of the
/// trajectory (fused global-FIFO engine stream), so each new snapshot
/// records its *incremental* improvement.
const PR5_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 3_007.0),
    ("phase_n64", 150_569.6),
    ("alead_n64", 65_569.4),
];

/// The PR 4 snapshot's attack-arm timings (cached `run_in` fast path),
/// kept for trajectory comparisons.
const PR4_ATTACK_NS_PER_TRIAL: [(&str, f64); 2] = [
    ("basic_single_n32", 20_886.2),
    ("phase_rushing_n16", 25_332.2),
];

/// The PR 5 snapshot's attack-arm timings, the baseline the spec-driven
/// attack sweeps are diffed against.
const PR5_ATTACK_NS_PER_TRIAL: [(&str, f64); 2] = [
    ("basic_single_n32", 16_162.1),
    ("phase_rushing_n16", 23_929.2),
];

/// The PR 6 snapshot (`BENCH_6.json`) — a further point of the
/// trajectory (spec-driven sweep family), so each new snapshot records
/// intermediate improvements, not just the cumulative one.
const PR6_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 2_966.7),
    ("phase_n64", 149_098.7),
    ("alead_n64", 69_639.5),
];

/// The PR 6 snapshot's attack-arm timings, kept for trajectory
/// comparisons.
const PR6_ATTACK_NS_PER_TRIAL: [(&str, f64); 2] = [
    ("basic_single_n32", 17_227.9),
    ("phase_rushing_n16", 23_905.6),
];

/// The PR 7 snapshot (`BENCH_7.json`) — the previous point of the
/// trajectory (timed network scenarios), so each new snapshot records
/// its *incremental* improvement.
const PR7_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 3_592.9),
    ("phase_n64", 165_051.3),
    ("alead_n64", 71_022.3),
];

/// The PR 7 snapshot's attack-arm timings, kept for trajectory
/// comparisons.
const PR7_ATTACK_NS_PER_TRIAL: [(&str, f64); 2] = [
    ("basic_single_n32", 15_526.9),
    ("phase_rushing_n16", 24_161.1),
];

/// The PR 8 snapshot (`BENCH_8.json`) — the previous point of the
/// trajectory (crash-safe sweeps), so each new snapshot records its
/// *incremental* improvement.
const PR8_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 2_720.8),
    ("phase_n64", 156_406.9),
    ("alead_n64", 73_016.5),
];

/// The PR 8 snapshot's attack-arm timings, kept for trajectory
/// comparisons.
const PR8_ATTACK_NS_PER_TRIAL: [(&str, f64); 2] = [
    ("basic_single_n32", 15_151.1),
    ("phase_rushing_n16", 23_738.9),
];

/// The PR 8 snapshot's scalar `phase_n64` ns/delivery — the baseline the
/// lockstep batch arm diffs against.
const PR8_PHASE_N64_NS_PER_DELIVERY: f64 = 19.1;

/// The PR 9 snapshot's batched `phase_n64` ns/delivery (`BENCH_9.json`,
/// `batch_sweep` arm) — the baseline the fault-*disabled* arm diffs
/// against: with no fault plan installed the monomorphized no-fault
/// path must stay within 2% of the pre-fault-layer engine.
const PR9_BATCH_PHASE_N64_NS_PER_DELIVERY: f64 = 4.68;

/// Overhead budget of the fault-disabled batched path against
/// [`PR9_BATCH_PHASE_N64_NS_PER_DELIVERY`], in percent.
const FAULT_DISABLED_OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// The golden sha-256 of the canonical 10k-trial PhaseAsyncLead n=64
/// honest report (`tests/golden_outcomes.rs`), re-verified in-process on
/// every full (non-`--quick`) snapshot so a drifted engine can never
/// record a trajectory point.
const GOLDEN_PHASE_N64_SHA: &str =
    "3001849b911e21739d42048ea699659cc662da9466873125127b4673124019e4";

/// How many times each measured sweep arm runs; the snapshot records the
/// median, so one noisy run can't skew the trajectory.
const BENCH_REPEATS: usize = 5;

/// Times `trial(seed)` over `trials` harness-derived seeds and returns
/// ns/trial, after a warmup tenth (so page faults, lazy init and cache
/// fills don't bill the measured run).
fn time_trials(trials: u64, mut trial: impl FnMut(u64)) -> f64 {
    for i in 0..(trials / 10).max(1) {
        trial(fle_harness::trial_seed(0xbe7c, i));
    }
    let start = std::time::Instant::now();
    for i in 0..trials {
        trial(fle_harness::trial_seed(1, i));
    }
    start.elapsed().as_secs_f64() * 1e9 / trials as f64
}

/// Measures the attack arms: each workload once through the cached-engine
/// fast path (`run_in` over a per-thread `TrialCache`) and once through
/// the one-shot `SimBuilder` path (`run`), single thread. Returns
/// `(fast, simbuilder)` ns/trial keyed per workload.
#[allow(clippy::type_complexity)] // two parallel (key, ns) tables
fn bench_attack_arms(quick: bool) -> (Vec<(&'static str, f64)>, Vec<(&'static str, f64)>) {
    use fle_attacks::{BasicSingleAttack, BasicSingleCache, PhaseRushingAttack, PhaseRushingCache};
    use fle_core::protocols::{BasicLead, PhaseAsyncLead};
    use fle_core::Coalition;
    use ring_sim::Outcome;

    let scale = if quick { 10 } else { 1 };
    let mut fast: Vec<(&'static str, f64)> = Vec::new();
    let mut slow: Vec<(&'static str, f64)> = Vec::new();

    // Single-deviator rushing-style attack (Claim B.1) on Basic-LEAD:
    // the fully monomorphized mix (concrete honest nodes + concrete
    // deviator, no boxing at all on the fast path).
    {
        let n = 32;
        let attack = BasicSingleAttack::new(21, 7);
        let trials = 10_000 / scale;
        let mut cache = BasicSingleCache::ring(n);
        let ns = time_trials(trials, |seed| {
            let p = BasicLead::new(n).with_seed(seed);
            let exec = attack.run_in(&p, &mut cache).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(7));
        });
        eprintln!("  [bench-baseline basic_single_n32 (run_in): {ns:.0} ns/trial]");
        fast.push(("basic_single_n32", ns));
        let ns = time_trials(trials, |seed| {
            let p = BasicLead::new(n).with_seed(seed);
            let exec = attack.run(&p).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(7));
        });
        eprintln!("  [bench-baseline basic_single_n32 (SimBuilder): {ns:.0} ns/trial]");
        slow.push(("basic_single_n32", ns));
    }

    // Coalition rushing on PhaseAsyncLead n=16 (k = 7 equally spaced):
    // honest majority on the concrete enum + arena, k boxed deviators.
    {
        let n = 16;
        let attack = PhaseRushingAttack::new(3);
        let coalition = Coalition::equally_spaced(n, 7, 1).expect("valid layout");
        let trials = 20_000 / scale;
        let mut cache = PhaseRushingCache::ring(n);
        let ns = time_trials(trials, |seed| {
            let p = PhaseAsyncLead::new(n).with_seed(seed);
            let exec = attack.run_in(&p, &coalition, &mut cache).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(3));
        });
        eprintln!("  [bench-baseline phase_rushing_n16 (run_in): {ns:.0} ns/trial]");
        fast.push(("phase_rushing_n16", ns));
        let ns = time_trials(trials, |seed| {
            let p = PhaseAsyncLead::new(n).with_seed(seed);
            let exec = attack.run(&p, &coalition).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(3));
        });
        eprintln!("  [bench-baseline phase_rushing_n16 (SimBuilder): {ns:.0} ns/trial]");
        slow.push(("phase_rushing_n16", ns));
    }

    (fast, slow)
}

/// Measures the spec-driven attack-sweep path end to end (rushing on
/// `A-LEADuni` n=16, k=7 equally spaced) against the pre-spec per-table
/// loop (one `SimBuilder` execution per seed, the shape the experiment
/// tables used before they migrated onto `run_sweep`). Returns
/// `(sweep_ns, loop_ns)` per trial, single thread.
fn bench_attack_sweep(quick: bool) -> (f64, f64, u64) {
    use fle_attacks::RushingAttack;
    use fle_core::protocols::ALeadUni;
    use fle_core::Coalition;
    use ring_sim::Outcome;

    let scale = if quick { 10 } else { 1 };
    let n = 16;
    let trials = 20_000 / scale;
    let spec = |trials| {
        SweepSpec::Attack(AttackSweep {
            attack: AttackKind::Rushing,
            n,
            fn_key: FnKeySpec::Fixed(0),
            batch: BatchConfig {
                trials,
                base_seed: 1,
                threads: 1,
            },
            coalition: CoalitionSpec::EquallySpaced { k: 7, offset: 1 },
            target: TargetSpec::Fixed(3),
            seed_mode: SeedMode::Derived,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        })
    };
    // Warmup batch, then the timed run through the cached runners.
    let _ = run_sweep(&spec((trials / 10).max(1))).expect("valid spec");
    let start = std::time::Instant::now();
    let _ = run_sweep(&spec(trials)).expect("valid spec");
    let sweep_ns = start.elapsed().as_secs_f64() * 1e9 / trials as f64;
    eprintln!(
        "  [bench-baseline attack_sweep rushing_alead_n16 (run_sweep): {sweep_ns:.0} ns/trial]"
    );

    let attack = RushingAttack::new(3);
    let coalition = Coalition::equally_spaced(n, 7, 1).expect("valid layout");
    let loop_ns = time_trials(trials, |seed| {
        let p = ALeadUni::new(n).with_seed(seed);
        let exec = attack.run(&p, &coalition).expect("feasible");
        debug_assert_eq!(exec.outcome, Outcome::Elected(3));
    });
    eprintln!(
        "  [bench-baseline attack_sweep rushing_alead_n16 (SimBuilder loop): {loop_ns:.0} ns/trial]"
    );
    (sweep_ns, loop_ns, trials)
}

/// Times one single-threaded honest sweep at the given lockstep width
/// and returns the median ns/trial over [`BENCH_REPEATS`] runs.
fn time_sweep(protocol: ProtocolKind, n: usize, trials: u64, batch_width: usize) -> f64 {
    let cfg = HonestSweep {
        protocol,
        n,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads: 1,
        },
        batch_width,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    };
    // One short warmup batch so page faults and lazy init don't bill the
    // measured runs.
    let _ = run_sweep(&SweepSpec::Honest(HonestSweep {
        batch: BatchConfig {
            trials: (trials / 10).max(1),
            ..cfg.batch
        },
        ..cfg
    }))
    .expect("valid spec");
    let mut runs: Vec<f64> = (0..BENCH_REPEATS)
        .map(|_| {
            let start = std::time::Instant::now();
            let _ = run_sweep(&SweepSpec::Honest(cfg)).expect("valid spec");
            start.elapsed().as_secs_f64() * 1e9 / trials as f64
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// Deliveries per trial of one honest workload, counted from a real
/// [`ring_sim::Execution`] (`stats.delivered`), so the per-delivery arm of
/// the snapshot is derived from the measured object, not a formula.
fn deliveries_per_trial(protocol: ProtocolKind, n: usize) -> u64 {
    use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead};
    let exec = match protocol {
        ProtocolKind::BasicLead => BasicLead::new(n).with_seed(1).run_honest(),
        ProtocolKind::ALeadUni => ALeadUni::new(n).with_seed(1).run_honest(),
        ProtocolKind::PhaseAsyncLead => PhaseAsyncLead::new(n).with_seed(1).run_honest(),
        ProtocolKind::PhaseSumLead => PhaseSumLead::new(n).with_seed(1).run_honest(),
    };
    exec.stats.delivered
}

/// Measures the timed-network arm: the same `phase_n64` honest workload
/// on the virtual-time scheduler with a constant 500 ns link latency —
/// the harshest *fair* comparison. Constant delays preserve per-link
/// FIFO order, so the protocol does identical work to the untimed run
/// (same 2n² deliveries, same election) while every delivery pays the
/// heap push/pop. Random jitter would be an unfair workload: it reorders
/// messages within a link (non-FIFO channels, outside the paper's
/// model), which aborts elections early and deflates deliveries/trial.
/// Single thread. Returns `(ns_per_trial, deliveries_per_trial, trials)`.
fn bench_timed_sweep(quick: bool) -> (f64, f64, u64) {
    let scale = if quick { 10 } else { 1 };
    let trials = 5_000 / scale;
    let cfg = HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 64,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads: 1,
        },
        batch_width: 1,
        schedule: ScheduleSpec::Timed {
            latency: LatencySpec::Constant { ns: 500 },
            loss_permille: 0,
            dup_permille: 0,
        },
        fault: None,
    };
    let _ = run_sweep(&SweepSpec::Honest(HonestSweep {
        batch: BatchConfig {
            trials: (trials / 10).max(1),
            ..cfg.batch
        },
        ..cfg
    }))
    .expect("valid spec");
    let start = std::time::Instant::now();
    let report = run_sweep(&SweepSpec::Honest(cfg)).expect("valid spec");
    let ns = start.elapsed().as_secs_f64() * 1e9 / trials as f64;
    eprintln!(
        "  [bench-baseline timed phase_n64 (constant 500 ns links): {ns:.0} ns/trial, \
         {:.1} deliveries/trial]",
        report.messages.mean
    );
    (ns, report.messages.mean, trials)
}

/// Measures the fault-injection arm: the `phase_n64` honest workload
/// with 2 crash-stop faults per trial drawn inside the nominal 2n²
/// delivery window. Fault-enabled sweeps force the scalar path, so this
/// times the per-trial plan draw + crash bookkeeping on top of the
/// scalar engine. Returns
/// `(ns_per_trial, deliveries_per_trial, survival_rate, crashed_trials, trials)`.
fn bench_fault_sweep(quick: bool) -> (f64, f64, f64, u64, u64) {
    let scale = if quick { 10 } else { 1 };
    let trials = 5_000 / scale;
    let cfg = HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 64,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads: 1,
        },
        batch_width: 1,
        schedule: ScheduleSpec::Fifo,
        fault: Some(FaultSpec {
            crashes: 2,
            window: CrashInstant::Deliveries(2 * 64 * 64),
            recover: None,
        }),
    };
    let _ = run_sweep(&SweepSpec::Honest(HonestSweep {
        batch: BatchConfig {
            trials: (trials / 10).max(1),
            ..cfg.batch
        },
        ..cfg
    }))
    .expect("valid spec");
    let start = std::time::Instant::now();
    let report = run_sweep(&SweepSpec::Honest(cfg)).expect("valid spec");
    let ns = start.elapsed().as_secs_f64() * 1e9 / trials as f64;
    let fault = report.fault.expect("fault-enabled sweeps carry the arm");
    let survival = fle_harness::FaultSummary::survival_rate(report.elected(), report.trials);
    eprintln!(
        "  [bench-baseline fault_sweep phase_n64 (2 crashes): {ns:.0} ns/trial, \
         {:.1} deliveries/trial, survival {survival:.4}]",
        report.messages.mean
    );
    (
        ns,
        report.messages.mean,
        survival,
        fault.crashed_trials,
        trials,
    )
}

fn run_bench_baseline(args: &[String]) {
    let mut out_path = String::from("BENCH_10.json");
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "-o" => {
                out_path = parse_arg(args, i + 1, "--out");
                i += 2;
            }
            "--quick" | "-q" => {
                quick = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag '{other}' for subcommand 'bench-baseline'");
                std::process::exit(2);
            }
        }
    }
    let scale = if quick { 10 } else { 1 };
    let workloads: [(&str, ProtocolKind, usize, u64); 3] = [
        ("phase_n8", ProtocolKind::PhaseAsyncLead, 8, 50_000 / scale),
        ("phase_n64", ProtocolKind::PhaseAsyncLead, 64, 5_000 / scale),
        ("alead_n64", ProtocolKind::ALeadUni, 64, 5_000 / scale),
    ];
    // Snapshots are named after their output file (BENCH_3.json →
    // "BENCH_3"), so per-PR trajectory files label themselves.
    let label = std::path::Path::new(&out_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH")
        .to_string();
    let mut measured: Vec<(&str, f64)> = Vec::new();
    let mut deliveries: Vec<(&str, f64)> = Vec::new();
    let mut ns_per_delivery: Vec<(&str, f64)> = Vec::new();
    for (key, protocol, n, trials) in workloads {
        // Width 1: the trajectory table stays scalar-vs-scalar; the
        // lockstep engine gets its own `batch_sweep` arm below.
        let ns = time_sweep(protocol, n, trials, 1);
        let per_trial = deliveries_per_trial(protocol, n);
        let per_delivery = ns / per_trial as f64;
        eprintln!(
            "  [bench-baseline {key}: {ns:.0} ns/trial over {trials} trials, \
             {per_trial} deliveries/trial → {per_delivery:.2} ns/delivery]"
        );
        measured.push((key, ns));
        deliveries.push((key, per_trial as f64));
        ns_per_delivery.push((key, per_delivery));
    }
    // The recorded-table workload: the full 10k-trial PhaseAsyncLead n=64
    // sweep, wall-clock plus output fingerprint (the sha proves the timed
    // run produced the golden bytes).
    let sweep_trials = 10_000 / scale;
    let honest_phase_n64 = HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 64,
        fn_key: 0,
        batch: BatchConfig {
            trials: sweep_trials,
            base_seed: 1,
            threads: 1,
        },
        batch_width: 1,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    };
    let sweep_spec = SweepSpec::Honest(honest_phase_n64);
    let start = std::time::Instant::now();
    let report = run_sweep(&sweep_spec).expect("valid spec");
    let sweep_ms = start.elapsed().as_secs_f64() * 1e3;
    let sweep_sha = sha256_hex(report.to_json().as_bytes());
    eprintln!("  [bench-baseline sweep_phase_n64: {sweep_ms:.0} ms for {sweep_trials} trials]");
    // Full-size snapshots re-verify the golden pin in-process: a perf
    // point measured on a drifted engine would poison the trajectory.
    if !quick {
        assert_eq!(
            sweep_sha, GOLDEN_PHASE_N64_SHA,
            "sweep_phase_n64 diverged from the golden pin"
        );
    }

    // The checkpoint-overhead arm: the same sweep snapshotting its
    // partial to disk every 1000 trials. The sha check proves the
    // checkpointed path produced the identical golden bytes.
    let checkpoint_every = 1_000u64;
    let cp_path =
        std::env::temp_dir().join(format!("fle_bench_checkpoint_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&cp_path);
    let start = std::time::Instant::now();
    let cp_run = run_sweep_checkpointed(&sweep_spec, &cp_path, checkpoint_every, 0, sweep_trials)
        .expect("valid spec and writable temp dir");
    let checkpoint_ms = start.elapsed().as_secs_f64() * 1e3;
    let cp_report = cp_run.partial.finish().expect("full coverage");
    assert_eq!(
        sha256_hex(cp_report.to_json().as_bytes()),
        sweep_sha,
        "checkpointed sweep diverged from the plain run"
    );
    let _ = std::fs::remove_file(&cp_path);
    let checkpoint_overhead_pct = (checkpoint_ms / sweep_ms - 1.0) * 100.0;
    eprintln!(
        "  [bench-baseline checkpoint_sweep: {checkpoint_ms:.0} ms vs {sweep_ms:.0} ms plain \
         → {checkpoint_overhead_pct:+.2}% overhead]"
    );

    // Attack arms: the cached-engine `run_in` fast path vs the one-shot
    // `SimBuilder` baseline, measured in the same process.
    let (attack_fast, attack_base) = bench_attack_arms(quick);
    // The spec-driven attack-sweep grid vs the pre-spec per-table loop.
    let (attack_sweep_ns, attack_loop_ns, attack_sweep_trials) = bench_attack_sweep(quick);
    // The timed-network arm: phase_n64 on the virtual-time scheduler.
    let (timed_ns, timed_deliveries, timed_trials) = bench_timed_sweep(quick);
    // The fault-injection arm: phase_n64 with 2 crash-stop faults/trial.
    let (fault_ns, fault_deliveries, fault_survival, fault_crashed, fault_trials) =
        bench_fault_sweep(quick);
    let timed_ns_per_delivery = timed_ns / timed_deliveries;
    let untimed_phase_n64_nd = ns_per_delivery
        .iter()
        .find(|(k, _)| *k == "phase_n64")
        .map(|&(_, v)| v)
        .expect("phase_n64 is a bench workload");
    let timed_overhead_ratio = timed_ns_per_delivery / untimed_phase_n64_nd;
    eprintln!(
        "  [bench-baseline timed phase_n64: {timed_ns_per_delivery:.2} ns/delivery vs \
         {untimed_phase_n64_nd:.2} untimed → {timed_overhead_ratio:.2}x]"
    );

    // The lockstep batch arm: the same 10k-trial phase_n64 sweep through
    // the structure-of-arrays engine at the default width, timed like the
    // trajectory workloads (median of repeats). The sha check proves the
    // batched path produced the byte-identical golden report.
    let batch_width = DEFAULT_BATCH_WIDTH;
    let batched_ns = time_sweep(ProtocolKind::PhaseAsyncLead, 64, sweep_trials, batch_width);
    let batched_report = run_sweep(&SweepSpec::Honest(HonestSweep {
        batch_width,
        ..honest_phase_n64
    }))
    .expect("valid spec");
    let batched_sha = sha256_hex(batched_report.to_json().as_bytes());
    assert_eq!(
        batched_sha, sweep_sha,
        "batched sweep diverged from the scalar run"
    );
    let phase_n64_deliveries = deliveries
        .iter()
        .find(|(k, _)| *k == "phase_n64")
        .map(|&(_, v)| v)
        .expect("phase_n64 is a bench workload");
    let batched_nd = batched_ns / phase_n64_deliveries;
    let batch_improvement_pct = (1.0 - batched_nd / PR8_PHASE_N64_NS_PER_DELIVERY) * 100.0;
    eprintln!(
        "  [bench-baseline batch_sweep phase_n64 (width {batch_width}): {batched_ns:.0} ns/trial \
         → {batched_nd:.2} ns/delivery vs {PR8_PHASE_N64_NS_PER_DELIVERY:.1} scalar PR8 \
         → {batch_improvement_pct:+.1}%]"
    );

    // The fault-*disabled* arm: the batched measurement above ran with
    // the fault layer compiled in but no plan installed — exactly the
    // path the PR 9 `batch_sweep` baseline measured before the fault
    // layer existed. The no-fault hook is monomorphized away, so it must
    // stay within the overhead budget.
    let fault_disabled_overhead_pct =
        (batched_nd / PR9_BATCH_PHASE_N64_NS_PER_DELIVERY - 1.0) * 100.0;
    eprintln!(
        "  [bench-baseline fault_disabled phase_n64 (width {batch_width}): {batched_nd:.2} \
         ns/delivery vs {PR9_BATCH_PHASE_N64_NS_PER_DELIVERY:.2} PR9 batched \
         → {fault_disabled_overhead_pct:+.2}% (budget {FAULT_DISABLED_OVERHEAD_BUDGET_PCT:.0}%)]"
    );
    assert!(
        fault_disabled_overhead_pct <= FAULT_DISABLED_OVERHEAD_BUDGET_PCT,
        "fault-disabled batched path regressed {fault_disabled_overhead_pct:+.2}% vs the PR 9 \
         baseline ({batched_nd:.2} vs {PR9_BATCH_PHASE_N64_NS_PER_DELIVERY:.2} ns/delivery, \
         budget {FAULT_DISABLED_OVERHEAD_BUDGET_PCT:.0}%)"
    );

    let fmt_map = |entries: &[(&str, f64)]| {
        entries
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v:.1}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    fn improve_against<'a>(
        baseline: &[(&str, f64)],
        measured: &[(&'a str, f64)],
    ) -> Vec<(&'a str, f64)> {
        measured
            .iter()
            .filter_map(|&(key, ns)| {
                baseline
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|&(_, base)| (key, (1.0 - ns / base) * 100.0))
            })
            .collect()
    }
    let improvements = improve_against(&PR2_NS_PER_TRIAL, &measured);
    let improvements_pr3 = improve_against(&PR3_NS_PER_TRIAL, &measured);
    let improvements_pr4 = improve_against(&PR4_NS_PER_TRIAL, &measured);
    let improvements_pr5 = improve_against(&PR5_NS_PER_TRIAL, &measured);
    let improvements_pr6 = improve_against(&PR6_NS_PER_TRIAL, &measured);
    let improvements_pr7 = improve_against(&PR7_NS_PER_TRIAL, &measured);
    let improvements_pr8 = improve_against(&PR8_NS_PER_TRIAL, &measured);
    let attack_improvements = improve_against(&attack_base, &attack_fast);
    let attack_improvements_pr4 = improve_against(&PR4_ATTACK_NS_PER_TRIAL, &attack_fast);
    let attack_improvements_pr5 = improve_against(&PR5_ATTACK_NS_PER_TRIAL, &attack_fast);
    let attack_improvements_pr6 = improve_against(&PR6_ATTACK_NS_PER_TRIAL, &attack_fast);
    let attack_improvements_pr7 = improve_against(&PR7_ATTACK_NS_PER_TRIAL, &attack_fast);
    let attack_improvements_pr8 = improve_against(&PR8_ATTACK_NS_PER_TRIAL, &attack_fast);
    let json = format!(
        concat!(
            "{{\"bench\":\"{}\",\"description\":\"lockstep-batched SoA honest ",
            "fast path over the crash-safe timed + fused-stream arena/mono ",
            "engine, single thread, median ns per trial\",",
            "\"quick\":{},",
            "\"repeats\":{},",
            "\"ns_per_trial\":{{{}}},",
            "\"deliveries_per_trial\":{{{}}},",
            "\"ns_per_delivery\":{{{}}},",
            "\"baseline_pr2_ns_per_trial\":{{{}}},",
            "\"baseline_pr3_ns_per_trial\":{{{}}},",
            "\"baseline_pr4_ns_per_trial\":{{{}}},",
            "\"baseline_pr5_ns_per_trial\":{{{}}},",
            "\"baseline_pr6_ns_per_trial\":{{{}}},",
            "\"baseline_pr7_ns_per_trial\":{{{}}},",
            "\"baseline_pr8_ns_per_trial\":{{{}}},",
            "\"improvement_pct\":{{{}}},",
            "\"improvement_vs_pr3_pct\":{{{}}},",
            "\"improvement_vs_pr4_pct\":{{{}}},",
            "\"improvement_vs_pr5_pct\":{{{}}},",
            "\"improvement_vs_pr6_pct\":{{{}}},",
            "\"improvement_vs_pr7_pct\":{{{}}},",
            "\"improvement_vs_pr8_pct\":{{{}}},",
            "\"attack_ns_per_trial\":{{{}}},",
            "\"attack_simbuilder_ns_per_trial\":{{{}}},",
            "\"attack_baseline_pr4_ns_per_trial\":{{{}}},",
            "\"attack_baseline_pr5_ns_per_trial\":{{{}}},",
            "\"attack_baseline_pr6_ns_per_trial\":{{{}}},",
            "\"attack_baseline_pr7_ns_per_trial\":{{{}}},",
            "\"attack_baseline_pr8_ns_per_trial\":{{{}}},",
            "\"attack_improvement_pct\":{{{}}},",
            "\"attack_improvement_vs_pr4_pct\":{{{}}},",
            "\"attack_improvement_vs_pr5_pct\":{{{}}},",
            "\"attack_improvement_vs_pr6_pct\":{{{}}},",
            "\"attack_improvement_vs_pr7_pct\":{{{}}},",
            "\"attack_improvement_vs_pr8_pct\":{{{}}},",
            "\"attack_sweep\":{{\"workload\":\"rushing_alead_n16\",\"trials\":{},",
            "\"ns_per_trial\":{:.1},\"simbuilder_loop_ns_per_trial\":{:.1},",
            "\"improvement_vs_pr5_pct\":{:.1}}},",
            "\"timed_sweep\":{{\"workload\":\"phase_n64_const500\",\"trials\":{},",
            "\"ns_per_trial\":{:.1},\"deliveries_per_trial\":{:.1},",
            "\"ns_per_delivery\":{:.2},\"untimed_ns_per_delivery\":{:.2},",
            "\"overhead_ratio\":{:.2}}},",
            "\"fault_sweep\":{{\"workload\":\"phase_n64_crash2\",\"trials\":{},",
            "\"ns_per_trial\":{:.1},\"deliveries_per_trial\":{:.1},",
            "\"survival_rate\":{:.4},\"crashed_trials\":{}}},",
            "\"fault_disabled\":{{\"workload\":\"phase_n64\",\"batch_width\":{},",
            "\"ns_per_delivery\":{:.2},\"pr9_ns_per_delivery\":{:.2},",
            "\"overhead_pct\":{:.2},\"budget_pct\":{:.1}}},",
            "\"batch_sweep\":{{\"workload\":\"phase_n64\",\"trials\":{},",
            "\"batch_width\":{},\"ns_per_trial_batched\":{:.1},",
            "\"ns_per_delivery_batched\":{:.2},",
            "\"scalar_pr8_ns_per_delivery\":{:.2},",
            "\"improvement_vs_pr8_pct\":{:.1},\"json_sha256\":\"{}\"}},",
            "\"checkpoint_sweep\":{{\"workload\":\"phase_n64\",\"trials\":{},",
            "\"every\":{},\"wall_ms\":{:.1},\"plain_wall_ms\":{:.1},",
            "\"overhead_pct\":{:.2}}},",
            "\"sweep_phase_n64\":{{\"trials\":{},\"wall_ms\":{:.1},\"json_sha256\":\"{}\"}}}}"
        ),
        label,
        quick,
        BENCH_REPEATS,
        fmt_map(&measured),
        fmt_map(&deliveries),
        fmt_map(&ns_per_delivery),
        fmt_map(&PR2_NS_PER_TRIAL),
        fmt_map(&PR3_NS_PER_TRIAL),
        fmt_map(&PR4_NS_PER_TRIAL),
        fmt_map(&PR5_NS_PER_TRIAL),
        fmt_map(&PR6_NS_PER_TRIAL),
        fmt_map(&PR7_NS_PER_TRIAL),
        fmt_map(&PR8_NS_PER_TRIAL),
        fmt_map(&improvements),
        fmt_map(&improvements_pr3),
        fmt_map(&improvements_pr4),
        fmt_map(&improvements_pr5),
        fmt_map(&improvements_pr6),
        fmt_map(&improvements_pr7),
        fmt_map(&improvements_pr8),
        fmt_map(&attack_fast),
        fmt_map(&attack_base),
        fmt_map(&PR4_ATTACK_NS_PER_TRIAL),
        fmt_map(&PR5_ATTACK_NS_PER_TRIAL),
        fmt_map(&PR6_ATTACK_NS_PER_TRIAL),
        fmt_map(&PR7_ATTACK_NS_PER_TRIAL),
        fmt_map(&PR8_ATTACK_NS_PER_TRIAL),
        fmt_map(&attack_improvements),
        fmt_map(&attack_improvements_pr4),
        fmt_map(&attack_improvements_pr5),
        fmt_map(&attack_improvements_pr6),
        fmt_map(&attack_improvements_pr7),
        fmt_map(&attack_improvements_pr8),
        attack_sweep_trials,
        attack_sweep_ns,
        attack_loop_ns,
        (1.0 - attack_sweep_ns / attack_loop_ns) * 100.0,
        timed_trials,
        timed_ns,
        timed_deliveries,
        timed_ns_per_delivery,
        untimed_phase_n64_nd,
        timed_overhead_ratio,
        fault_trials,
        fault_ns,
        fault_deliveries,
        fault_survival,
        fault_crashed,
        batch_width,
        batched_nd,
        PR9_BATCH_PHASE_N64_NS_PER_DELIVERY,
        fault_disabled_overhead_pct,
        FAULT_DISABLED_OVERHEAD_BUDGET_PCT,
        sweep_trials,
        batch_width,
        batched_ns,
        batched_nd,
        PR8_PHASE_N64_NS_PER_DELIVERY,
        batch_improvement_pct,
        batched_sha,
        sweep_trials,
        checkpoint_every,
        checkpoint_ms,
        sweep_ms,
        checkpoint_overhead_pct,
        sweep_trials,
        sweep_ms,
        sweep_sha,
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("  [bench-baseline written to {out_path}]");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("bench-baseline") {
        run_bench_baseline(&args[1..]);
        return;
    }

    if args.first().map(String::as_str) == Some("merge-reports") {
        run_merge_reports(&args[1..]);
        return;
    }

    // `sweep` and `attack-sweep` are subcommands with their own flags;
    // recognize them before or after the global `--threads N` pair so
    // both orderings work.
    let sub_pos = args
        .iter()
        .position(|a| a == "sweep" || a == "attack-sweep")
        .filter(|&pos| pos == 0 || (pos == 2 && (args[0] == "--threads" || args[0] == "-j")));
    if let Some(pos) = sub_pos {
        if pos == 2 {
            let threads: usize = parse_arg(&args, 1, "--threads");
            set_default_threads(threads);
        }
        if args[pos] == "sweep" {
            run_sweep_cli(&args[pos + 1..]);
        } else {
            run_attack_sweep_cli(&args[pos + 1..]);
        }
        return;
    }

    // Global `--threads N` (applies to every experiment's worker pool).
    if let Some(pos) = args.iter().position(|a| a == "--threads" || a == "-j") {
        let threads: usize = parse_arg(&args, pos + 1, "--threads");
        set_default_threads(threads);
        args.drain(pos..pos + 2);
    }

    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let unknown_flags: Vec<&String> = args
        .iter()
        .filter(|a| a.starts_with('-') && !["--quick", "-q", "--list", "-l"].contains(&a.as_str()))
        .collect();
    if !unknown_flags.is_empty() {
        eprintln!(
            "unknown flag '{}' for the experiment runner",
            unknown_flags[0]
        );
        usage();
    }
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();

    if list || ids.is_empty() {
        if !list {
            usage();
        }
        print_registry();
        return;
    }

    let selected: Vec<&fle_experiments::Experiment> = if ids.iter().any(|id| id.as_str() == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for e in selected {
        eprintln!("# {} — {}", e.id, e.description);
        let start = std::time::Instant::now();
        for table in (e.run)(quick) {
            println!("{table}");
        }
        eprintln!("  [{}: {:.1?}]\n", e.id, start.elapsed());
    }
}
