//! `fle-lab` — run the reproduction experiments and harness sweeps.
//!
//! ```text
//! fle-lab all                      # every experiment, full sizes
//! fle-lab t42 t61 --quick          # selected experiments, smoke sizes
//! fle-lab --list                   # show the registry
//! fle-lab --threads 4 all          # cap the worker pool for everything
//! fle-lab sweep --protocol phase --n 64 --trials 10000 --seed 1 \
//!         --threads 8 --format json
//! ```
//!
//! The `sweep` subcommand runs one deterministic `fle-harness` batch and
//! prints the aggregated [`fle_harness::TrialReport`] as JSON (default) or
//! CSV on stdout. Output is byte-identical for every `--threads` value.

use fle_experiments::{find, EXPERIMENTS};
use fle_harness::{run_sweep, set_default_threads, BatchConfig, ProtocolKind, SweepConfig};

fn print_registry() {
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:<5} {}", e.id, e.description);
    }
    eprintln!("\nusage: fle-lab <id>.. | all [--quick] [--threads N]");
    eprintln!(
        "       fle-lab sweep --protocol <basic|alead|phase|phasesum> --n <N> \
         [--trials N] [--seed N] [--threads N] [--fn-key N] [--format json|csv]"
    );
}

fn usage() -> ! {
    print_registry();
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    let Some(raw) = args.get(i) else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{raw}' for {flag}");
        std::process::exit(2);
    })
}

fn run_sweep_cli(args: &[String]) {
    let mut protocol: Option<ProtocolKind> = None;
    let mut n: usize = 0;
    let mut batch = BatchConfig {
        trials: 10_000,
        base_seed: 0,
        threads: 0,
    };
    let mut fn_key = 0u64;
    let mut format = String::from("json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--protocol" | "-p" => {
                let spec: String = parse_arg(args, i + 1, "--protocol");
                match spec.parse() {
                    Ok(p) => protocol = Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--n" | "-n" => {
                n = parse_arg(args, i + 1, "--n");
                i += 2;
            }
            "--trials" | "-t" => {
                batch.trials = parse_arg(args, i + 1, "--trials");
                i += 2;
            }
            "--seed" | "-s" => {
                batch.base_seed = parse_arg(args, i + 1, "--seed");
                i += 2;
            }
            "--threads" | "-j" => {
                batch.threads = parse_arg(args, i + 1, "--threads");
                i += 2;
            }
            "--fn-key" => {
                fn_key = parse_arg(args, i + 1, "--fn-key");
                i += 2;
            }
            "--format" | "-f" => {
                format = parse_arg(args, i + 1, "--format");
                i += 2;
            }
            other => {
                eprintln!("unknown sweep argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(protocol) = protocol else {
        eprintln!("sweep needs --protocol");
        std::process::exit(2);
    };
    if n == 0 {
        eprintln!("sweep needs --n");
        std::process::exit(2);
    }
    // Validate the output format up front — a typo must not cost a full
    // multi-minute sweep.
    if format != "json" && format != "csv" {
        eprintln!("unknown format '{format}' (expected json | csv)");
        std::process::exit(2);
    }
    let start = std::time::Instant::now();
    let report = run_sweep(&SweepConfig {
        protocol,
        n,
        fn_key,
        batch,
    });
    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        "csv" => print!("{}", report.to_csv()),
        _ => unreachable!("format validated before the sweep"),
    }
    eprintln!(
        "  [sweep {} n={} trials={} threads={}: {:.1?}]",
        report.protocol,
        n,
        batch.trials,
        batch.resolved_threads(),
        start.elapsed()
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // `sweep` is a subcommand with its own flags; recognize it before or
    // after the global `--threads N` pair so both orderings work.
    let sweep_pos = args
        .iter()
        .position(|a| a == "sweep")
        .filter(|&pos| pos == 0 || (pos == 2 && (args[0] == "--threads" || args[0] == "-j")));
    if let Some(pos) = sweep_pos {
        if pos == 2 {
            let threads: usize = parse_arg(&args, 1, "--threads");
            set_default_threads(threads);
        }
        run_sweep_cli(&args[pos + 1..]);
        return;
    }

    // Global `--threads N` (applies to every experiment's worker pool).
    if let Some(pos) = args.iter().position(|a| a == "--threads" || a == "-j") {
        let threads: usize = parse_arg(&args, pos + 1, "--threads");
        set_default_threads(threads);
        args.drain(pos..pos + 2);
    }

    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let unknown_flags: Vec<&String> = args
        .iter()
        .filter(|a| a.starts_with('-') && !["--quick", "-q", "--list", "-l"].contains(&a.as_str()))
        .collect();
    if !unknown_flags.is_empty() {
        eprintln!("unknown flag '{}'", unknown_flags[0]);
        usage();
    }
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();

    if list || ids.is_empty() {
        if !list {
            usage();
        }
        print_registry();
        return;
    }

    let selected: Vec<&fle_experiments::Experiment> = if ids.iter().any(|id| id.as_str() == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for e in selected {
        eprintln!("# {} — {}", e.id, e.description);
        let start = std::time::Instant::now();
        for table in (e.run)(quick) {
            println!("{table}");
        }
        eprintln!("  [{}: {:.1?}]\n", e.id, start.elapsed());
    }
}
