//! `fle-lab` — run the reproduction experiments and harness sweeps.
//!
//! ```text
//! fle-lab all                      # every experiment, full sizes
//! fle-lab t42 t61 --quick          # selected experiments, smoke sizes
//! fle-lab --list                   # show the registry
//! fle-lab --threads 4 all          # cap the worker pool for everything
//! fle-lab sweep --protocol phase --n 64 --trials 10000 --seed 1 \
//!         --threads 8 --format json
//! fle-lab bench-baseline --out BENCH_5.json   # perf trajectory snapshot
//! ```
//!
//! The `sweep` subcommand runs one deterministic `fle-harness` batch and
//! prints the aggregated [`fle_harness::TrialReport`] as JSON (default) or
//! CSV on stdout. Output is byte-identical for every `--threads` value.
//!
//! The `bench-baseline` subcommand measures the honest monomorphized +
//! arena engine path (ns/trial *and* ns/delivery — deliveries counted
//! from a real `Execution` — for the canonical sweep workloads, single
//! thread) plus the cached-engine attack path against its `SimBuilder`
//! baseline, then writes a machine-readable JSON snapshot, so successive
//! PRs accumulate a perf trajectory (`BENCH_<pr>.json`) that can be
//! diffed.

use fle_experiments::{find, EXPERIMENTS};
use fle_harness::{
    run_sweep, set_default_threads, sha256_hex, BatchConfig, ProtocolKind, SweepConfig,
};

fn print_registry() {
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:<5} {}", e.id, e.description);
    }
    eprintln!("\nusage: fle-lab <id>.. | all [--quick] [--threads N]");
    eprintln!(
        "       fle-lab sweep --protocol <basic|alead|phase|phasesum> --n <N> \
         [--trials N] [--seed N] [--threads N] [--fn-key N] [--format json|csv]"
    );
    eprintln!("       fle-lab bench-baseline [--out PATH] [--quick]");
}

fn usage() -> ! {
    print_registry();
    std::process::exit(2);
}

fn parse_arg<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    let Some(raw) = args.get(i) else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{raw}' for {flag}");
        std::process::exit(2);
    })
}

fn run_sweep_cli(args: &[String]) {
    let mut protocol: Option<ProtocolKind> = None;
    let mut n: usize = 0;
    let mut batch = BatchConfig {
        trials: 10_000,
        base_seed: 0,
        threads: 0,
    };
    let mut fn_key = 0u64;
    let mut format = String::from("json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--protocol" | "-p" => {
                let spec: String = parse_arg(args, i + 1, "--protocol");
                match spec.parse() {
                    Ok(p) => protocol = Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--n" | "-n" => {
                n = parse_arg(args, i + 1, "--n");
                i += 2;
            }
            "--trials" | "-t" => {
                batch.trials = parse_arg(args, i + 1, "--trials");
                i += 2;
            }
            "--seed" | "-s" => {
                batch.base_seed = parse_arg(args, i + 1, "--seed");
                i += 2;
            }
            "--threads" | "-j" => {
                batch.threads = parse_arg(args, i + 1, "--threads");
                i += 2;
            }
            "--fn-key" => {
                fn_key = parse_arg(args, i + 1, "--fn-key");
                i += 2;
            }
            "--format" | "-f" => {
                format = parse_arg(args, i + 1, "--format");
                i += 2;
            }
            other => {
                eprintln!("unknown sweep argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(protocol) = protocol else {
        eprintln!("sweep needs --protocol");
        std::process::exit(2);
    };
    if n == 0 {
        eprintln!("sweep needs --n");
        std::process::exit(2);
    }
    // Validate the output format up front — a typo must not cost a full
    // multi-minute sweep.
    if format != "json" && format != "csv" {
        eprintln!("unknown format '{format}' (expected json | csv)");
        std::process::exit(2);
    }
    let start = std::time::Instant::now();
    let report = run_sweep(&SweepConfig {
        protocol,
        n,
        fn_key,
        batch,
    });
    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        "csv" => print!("{}", report.to_csv()),
        _ => unreachable!("format validated before the sweep"),
    }
    eprintln!(
        "  [sweep {} n={} trials={} threads={}: {:.1?}]",
        report.protocol,
        n,
        batch.trials,
        batch.resolved_threads(),
        start.elapsed()
    );
}

/// Single-threaded per-trial timings of the pre-optimization (PR 2)
/// engine on the canonical workloads, measured on the reference container
/// right before the zero-allocation/monomorphization refactor landed.
/// Kept here so every `bench-baseline` snapshot records its improvement
/// against the same origin point of the trajectory.
const PR2_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 7_528.0),
    ("phase_n64", 360_000.0),
    ("alead_n64", 160_000.0),
];

/// The PR 3 snapshot (`BENCH_3.json`) — an earlier point of the
/// trajectory, kept so snapshots stay comparable across PRs.
const PR3_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 4_627.7),
    ("phase_n64", 250_803.6),
    ("alead_n64", 113_687.8),
];

/// The PR 4 snapshot (`BENCH_4.json`) — the previous point of the
/// trajectory, so each new snapshot also records its *incremental*
/// improvement, not just the cumulative one against PR 2.
const PR4_NS_PER_TRIAL: [(&str, f64); 3] = [
    ("phase_n8", 3_769.4),
    ("phase_n64", 193_705.5),
    ("alead_n64", 84_680.3),
];

/// The PR 4 snapshot's attack-arm timings (cached `run_in` fast path),
/// the baseline the fused-stream engine's attack arms are diffed against.
const PR4_ATTACK_NS_PER_TRIAL: [(&str, f64); 2] = [
    ("basic_single_n32", 20_886.2),
    ("phase_rushing_n16", 25_332.2),
];

/// Times `trial(seed)` over `trials` harness-derived seeds and returns
/// ns/trial, after a warmup tenth (so page faults, lazy init and cache
/// fills don't bill the measured run).
fn time_trials(trials: u64, mut trial: impl FnMut(u64)) -> f64 {
    for i in 0..(trials / 10).max(1) {
        trial(fle_harness::trial_seed(0xbe7c, i));
    }
    let start = std::time::Instant::now();
    for i in 0..trials {
        trial(fle_harness::trial_seed(1, i));
    }
    start.elapsed().as_secs_f64() * 1e9 / trials as f64
}

/// Measures the attack arms: each workload once through the cached-engine
/// fast path (`run_in` over a per-thread `TrialCache`) and once through
/// the one-shot `SimBuilder` path (`run`), single thread. Returns
/// `(fast, simbuilder)` ns/trial keyed per workload.
#[allow(clippy::type_complexity)] // two parallel (key, ns) tables
fn bench_attack_arms(quick: bool) -> (Vec<(&'static str, f64)>, Vec<(&'static str, f64)>) {
    use fle_attacks::{BasicSingleAttack, BasicSingleCache, PhaseRushingAttack, PhaseRushingCache};
    use fle_core::protocols::{BasicLead, PhaseAsyncLead};
    use fle_core::Coalition;
    use ring_sim::Outcome;

    let scale = if quick { 10 } else { 1 };
    let mut fast: Vec<(&'static str, f64)> = Vec::new();
    let mut slow: Vec<(&'static str, f64)> = Vec::new();

    // Single-deviator rushing-style attack (Claim B.1) on Basic-LEAD:
    // the fully monomorphized mix (concrete honest nodes + concrete
    // deviator, no boxing at all on the fast path).
    {
        let n = 32;
        let attack = BasicSingleAttack::new(21, 7);
        let trials = 10_000 / scale;
        let mut cache = BasicSingleCache::ring(n);
        let ns = time_trials(trials, |seed| {
            let p = BasicLead::new(n).with_seed(seed);
            let exec = attack.run_in(&p, &mut cache).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(7));
        });
        eprintln!("  [bench-baseline basic_single_n32 (run_in): {ns:.0} ns/trial]");
        fast.push(("basic_single_n32", ns));
        let ns = time_trials(trials, |seed| {
            let p = BasicLead::new(n).with_seed(seed);
            let exec = attack.run(&p).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(7));
        });
        eprintln!("  [bench-baseline basic_single_n32 (SimBuilder): {ns:.0} ns/trial]");
        slow.push(("basic_single_n32", ns));
    }

    // Coalition rushing on PhaseAsyncLead n=16 (k = 7 equally spaced):
    // honest majority on the concrete enum + arena, k boxed deviators.
    {
        let n = 16;
        let attack = PhaseRushingAttack::new(3);
        let coalition = Coalition::equally_spaced(n, 7, 1).expect("valid layout");
        let trials = 20_000 / scale;
        let mut cache = PhaseRushingCache::ring(n);
        let ns = time_trials(trials, |seed| {
            let p = PhaseAsyncLead::new(n).with_seed(seed);
            let exec = attack.run_in(&p, &coalition, &mut cache).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(3));
        });
        eprintln!("  [bench-baseline phase_rushing_n16 (run_in): {ns:.0} ns/trial]");
        fast.push(("phase_rushing_n16", ns));
        let ns = time_trials(trials, |seed| {
            let p = PhaseAsyncLead::new(n).with_seed(seed);
            let exec = attack.run(&p, &coalition).expect("feasible");
            debug_assert_eq!(exec.outcome, Outcome::Elected(3));
        });
        eprintln!("  [bench-baseline phase_rushing_n16 (SimBuilder): {ns:.0} ns/trial]");
        slow.push(("phase_rushing_n16", ns));
    }

    (fast, slow)
}

/// Times one single-threaded sweep and returns ns/trial.
fn time_sweep(protocol: ProtocolKind, n: usize, trials: u64) -> f64 {
    let cfg = SweepConfig {
        protocol,
        n,
        fn_key: 0,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads: 1,
        },
    };
    // One short warmup batch so page faults and lazy init don't bill the
    // measured run.
    let _ = run_sweep(&SweepConfig {
        batch: BatchConfig {
            trials: (trials / 10).max(1),
            ..cfg.batch
        },
        ..cfg
    });
    let start = std::time::Instant::now();
    let _ = run_sweep(&cfg);
    start.elapsed().as_secs_f64() * 1e9 / trials as f64
}

/// Deliveries per trial of one honest workload, counted from a real
/// [`ring_sim::Execution`] (`stats.delivered`), so the per-delivery arm of
/// the snapshot is derived from the measured object, not a formula.
fn deliveries_per_trial(protocol: ProtocolKind, n: usize) -> u64 {
    use fle_core::protocols::{ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead};
    let exec = match protocol {
        ProtocolKind::BasicLead => BasicLead::new(n).with_seed(1).run_honest(),
        ProtocolKind::ALeadUni => ALeadUni::new(n).with_seed(1).run_honest(),
        ProtocolKind::PhaseAsyncLead => PhaseAsyncLead::new(n).with_seed(1).run_honest(),
        ProtocolKind::PhaseSumLead => PhaseSumLead::new(n).with_seed(1).run_honest(),
    };
    exec.stats.delivered
}

fn run_bench_baseline(args: &[String]) {
    let mut out_path = String::from("BENCH_5.json");
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "-o" => {
                out_path = parse_arg(args, i + 1, "--out");
                i += 2;
            }
            "--quick" | "-q" => {
                quick = true;
                i += 1;
            }
            other => {
                eprintln!("unknown bench-baseline argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let scale = if quick { 10 } else { 1 };
    let workloads: [(&str, ProtocolKind, usize, u64); 3] = [
        ("phase_n8", ProtocolKind::PhaseAsyncLead, 8, 50_000 / scale),
        ("phase_n64", ProtocolKind::PhaseAsyncLead, 64, 5_000 / scale),
        ("alead_n64", ProtocolKind::ALeadUni, 64, 5_000 / scale),
    ];
    // Snapshots are named after their output file (BENCH_3.json →
    // "BENCH_3"), so per-PR trajectory files label themselves.
    let label = std::path::Path::new(&out_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH")
        .to_string();
    let mut measured: Vec<(&str, f64)> = Vec::new();
    let mut deliveries: Vec<(&str, f64)> = Vec::new();
    let mut ns_per_delivery: Vec<(&str, f64)> = Vec::new();
    for (key, protocol, n, trials) in workloads {
        let ns = time_sweep(protocol, n, trials);
        let per_trial = deliveries_per_trial(protocol, n);
        let per_delivery = ns / per_trial as f64;
        eprintln!(
            "  [bench-baseline {key}: {ns:.0} ns/trial over {trials} trials, \
             {per_trial} deliveries/trial → {per_delivery:.2} ns/delivery]"
        );
        measured.push((key, ns));
        deliveries.push((key, per_trial as f64));
        ns_per_delivery.push((key, per_delivery));
    }
    // The recorded-table workload: the full 10k-trial PhaseAsyncLead n=64
    // sweep, wall-clock plus output fingerprint (the sha proves the timed
    // run produced the golden bytes).
    let sweep_trials = 10_000 / scale;
    let start = std::time::Instant::now();
    let report = run_sweep(&SweepConfig {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 64,
        fn_key: 0,
        batch: BatchConfig {
            trials: sweep_trials,
            base_seed: 1,
            threads: 1,
        },
    });
    let sweep_ms = start.elapsed().as_secs_f64() * 1e3;
    let sweep_sha = sha256_hex(report.to_json().as_bytes());
    eprintln!("  [bench-baseline sweep_phase_n64: {sweep_ms:.0} ms for {sweep_trials} trials]");

    // Attack arms: the cached-engine `run_in` fast path vs the one-shot
    // `SimBuilder` baseline, measured in the same process.
    let (attack_fast, attack_base) = bench_attack_arms(quick);

    let fmt_map = |entries: &[(&str, f64)]| {
        entries
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v:.1}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    fn improve_against<'a>(
        baseline: &[(&str, f64)],
        measured: &[(&'a str, f64)],
    ) -> Vec<(&'a str, f64)> {
        measured
            .iter()
            .filter_map(|&(key, ns)| {
                baseline
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|&(_, base)| (key, (1.0 - ns / base) * 100.0))
            })
            .collect()
    }
    let improvements = improve_against(&PR2_NS_PER_TRIAL, &measured);
    let improvements_pr3 = improve_against(&PR3_NS_PER_TRIAL, &measured);
    let improvements_pr4 = improve_against(&PR4_NS_PER_TRIAL, &measured);
    let attack_improvements = improve_against(&attack_base, &attack_fast);
    let attack_improvements_pr4 = improve_against(&PR4_ATTACK_NS_PER_TRIAL, &attack_fast);
    let json = format!(
        concat!(
            "{{\"bench\":\"{}\",\"description\":\"fused global-FIFO engine stream ",
            "(packed tokens + inline message payloads) over the arena/mono trial ",
            "paths, single thread, ns per trial\",",
            "\"quick\":{},",
            "\"ns_per_trial\":{{{}}},",
            "\"deliveries_per_trial\":{{{}}},",
            "\"ns_per_delivery\":{{{}}},",
            "\"baseline_pr2_ns_per_trial\":{{{}}},",
            "\"baseline_pr3_ns_per_trial\":{{{}}},",
            "\"baseline_pr4_ns_per_trial\":{{{}}},",
            "\"improvement_pct\":{{{}}},",
            "\"improvement_vs_pr3_pct\":{{{}}},",
            "\"improvement_vs_pr4_pct\":{{{}}},",
            "\"attack_ns_per_trial\":{{{}}},",
            "\"attack_simbuilder_ns_per_trial\":{{{}}},",
            "\"attack_baseline_pr4_ns_per_trial\":{{{}}},",
            "\"attack_improvement_pct\":{{{}}},",
            "\"attack_improvement_vs_pr4_pct\":{{{}}},",
            "\"sweep_phase_n64\":{{\"trials\":{},\"wall_ms\":{:.1},\"json_sha256\":\"{}\"}}}}"
        ),
        label,
        quick,
        fmt_map(&measured),
        fmt_map(&deliveries),
        fmt_map(&ns_per_delivery),
        fmt_map(&PR2_NS_PER_TRIAL),
        fmt_map(&PR3_NS_PER_TRIAL),
        fmt_map(&PR4_NS_PER_TRIAL),
        fmt_map(&improvements),
        fmt_map(&improvements_pr3),
        fmt_map(&improvements_pr4),
        fmt_map(&attack_fast),
        fmt_map(&attack_base),
        fmt_map(&PR4_ATTACK_NS_PER_TRIAL),
        fmt_map(&attack_improvements),
        fmt_map(&attack_improvements_pr4),
        sweep_trials,
        sweep_ms,
        sweep_sha,
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("  [bench-baseline written to {out_path}]");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("bench-baseline") {
        run_bench_baseline(&args[1..]);
        return;
    }

    // `sweep` is a subcommand with its own flags; recognize it before or
    // after the global `--threads N` pair so both orderings work.
    let sweep_pos = args
        .iter()
        .position(|a| a == "sweep")
        .filter(|&pos| pos == 0 || (pos == 2 && (args[0] == "--threads" || args[0] == "-j")));
    if let Some(pos) = sweep_pos {
        if pos == 2 {
            let threads: usize = parse_arg(&args, 1, "--threads");
            set_default_threads(threads);
        }
        run_sweep_cli(&args[pos + 1..]);
        return;
    }

    // Global `--threads N` (applies to every experiment's worker pool).
    if let Some(pos) = args.iter().position(|a| a == "--threads" || a == "-j") {
        let threads: usize = parse_arg(&args, pos + 1, "--threads");
        set_default_threads(threads);
        args.drain(pos..pos + 2);
    }

    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let unknown_flags: Vec<&String> = args
        .iter()
        .filter(|a| a.starts_with('-') && !["--quick", "-q", "--list", "-l"].contains(&a.as_str()))
        .collect();
    if !unknown_flags.is_empty() {
        eprintln!("unknown flag '{}'", unknown_flags[0]);
        usage();
    }
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();

    if list || ids.is_empty() {
        if !list {
            usage();
        }
        print_registry();
        return;
    }

    let selected: Vec<&fle_experiments::Experiment> = if ids.iter().any(|id| id.as_str() == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for e in selected {
        eprintln!("# {} — {}", e.id, e.description);
        let start = std::time::Instant::now();
        for table in (e.run)(quick) {
            println!("{table}");
        }
        eprintln!("  [{}: {:.1?}]\n", e.id, start.elapsed());
    }
}
