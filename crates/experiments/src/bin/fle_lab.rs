//! `fle-lab` — run the reproduction experiments.
//!
//! ```text
//! fle-lab all              # every experiment, full sizes
//! fle-lab t42 t61 --quick  # selected experiments, smoke-test sizes
//! fle-lab --list           # show the registry
//! ```

use fle_experiments::{find, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();

    if list || ids.is_empty() {
        eprintln!("experiments:");
        for e in EXPERIMENTS {
            eprintln!("  {:<5} {}", e.id, e.description);
        }
        eprintln!("\nusage: fle-lab <id>.. | all [--quick]");
        if !list {
            std::process::exit(2);
        }
        return;
    }

    let selected: Vec<&fle_experiments::Experiment> = if ids.iter().any(|id| id.as_str() == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for e in selected {
        eprintln!("# {} — {}", e.id, e.description);
        let start = std::time::Instant::now();
        for table in (e.run)(quick) {
            println!("{table}");
        }
        eprintln!("  [{}: {:.1?}]\n", e.id, start.elapsed());
    }
}
