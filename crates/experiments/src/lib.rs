//! # fle-experiments — the reproduction harness
//!
//! One experiment per figure/result of Yifrach & Mansour (PODC 2018); see
//! `DESIGN.md` §2 for the full index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured outcomes. Run everything with
//!
//! ```text
//! cargo run --release -p fle-experiments --bin fle-lab -- all
//! ```
//!
//! or a single experiment by id (`fig1`, `b1`, `t42`, `tc1`, `t43`,
//! `t51`, `d1`, `t61`, `e4`, `t72`, `t81`, `sync`, `msg`, `sfc`, `c47`,
//! `shamir`, `syncring`, `fullinfo`, `apph`, `rename`, `exact`,
//! `ablate`, `timed`, `faults`). Every experiment returns plain-text [`Table`]s; `--quick`
//! shrinks ring sizes and trial counts for smoke testing (the same
//! configuration the integration tests and Criterion benches use).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;
mod runner;
pub mod stats;
mod table;

pub use runner::par_seeds;
pub use table::Table;

/// An experiment: id, one-line description, and runner
/// (`quick = true` shrinks sizes for smoke tests).
pub struct Experiment {
    /// Short id used on the command line (e.g. `t42`).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub description: &'static str,
    /// Runs the experiment and returns its result tables.
    pub run: fn(quick: bool) -> Vec<Table>,
}

/// The experiment registry, in paper order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "fig1",
        description: "Figure 1: coalition layouts and honest segments on the ring",
        run: exp::fig1::run,
    },
    Experiment {
        id: "b1",
        description: "Claim B.1: a single adversary controls Basic-LEAD",
        run: exp::b1::run,
    },
    Experiment {
        id: "t42",
        description: "Thm 4.2: equal-spacing rushing attack crosses over at k = sqrt(n)",
        run: exp::t42::run,
    },
    Experiment {
        id: "tc1",
        description: "Thm C.1: randomly located coalitions of Theta(sqrt(n log n)) win w.h.p.",
        run: exp::tc1::run,
    },
    Experiment {
        id: "t43",
        description: "Thm 4.3: the cubic attack wins with k ~ 2 n^(1/3) and Omega(k^2) desync",
        run: exp::t43::run,
    },
    Experiment {
        id: "t51",
        description: "Thm 5.1: A-LEADuni is unbiased for k = O(n^(1/4)) (attacks infeasible)",
        run: exp::t51::run,
    },
    Experiment {
        id: "d1",
        description: "Claim D.1: consecutive coalitions cross over at k = ceil((n+1)/2)",
        run: exp::d1::run,
    },
    Experiment {
        id: "t61",
        description: "Thm 6.1: PhaseAsyncLead resists k <= sqrt(n)/10, falls at sqrt(n)+3",
        run: exp::t61::run,
    },
    Experiment {
        id: "e4",
        description: "App E.4: PhaseSumLead falls to k = 4 (why f must be random)",
        run: exp::e4::run,
    },
    Experiment {
        id: "t72",
        description: "Thm 7.2: k-simulated trees - dictators, F.5 partitions, tree coalitions",
        run: exp::t72::run,
    },
    Experiment {
        id: "t81",
        description: "Thm 8.1: FLE <-> coin-toss reductions and bias propagation",
        run: exp::t81::run,
    },
    Experiment {
        id: "sync",
        description: "Lemma D.5 / Sec 6: sent-count synchronization gaps per protocol x attack",
        run: exp::sync::run,
    },
    Experiment {
        id: "msg",
        description: "Sec 1.1: message complexity vs classical baselines",
        run: exp::msg::run,
    },
    Experiment {
        id: "sfc",
        description: "Sec 1.1 contrast: synchrony makes FLE (n-1)-resilient for free",
        run: exp::sfc::run,
    },
    Experiment {
        id: "c47",
        description: "Conjecture 4.7: bracket the open resilience gap of A-LEADuni",
        run: exp::c47::run,
    },
    Experiment {
        id: "shamir",
        description: "Sec 1.1: A-LEADfc (Shamir) resilience crossover at k = ceil(n/2)",
        run: exp::shamir::run,
    },
    Experiment {
        id: "syncring",
        description: "Sec 1.1: synchronous ring detects what asynchrony rewards ((n-1)-resilient)",
        run: exp::syncring::run,
    },
    Experiment {
        id: "fullinfo",
        description:
            "Sec 1.1: full-information model - one-round games, iterated majority, baton, bins",
        run: exp::fullinfo::run,
    },
    Experiment {
        id: "apph",
        description: "App H: unknown ids - id-lie utility k/n and per-segment origin masking",
        run: exp::apph::run,
    },
    Experiment {
        id: "rename",
        description: "Afek et al. renaming: rotation and permutation renaming from elections",
        run: exp::rename::run,
    },
    Experiment {
        id: "exact",
        description: "Exact enumeration: fairness, Claim B.1 and Lemma 2.4 as integer identities",
        run: exp::exact::run,
    },
    Experiment {
        id: "ablate",
        description: "Sec 6 ablation: validation range m is exactly the guessing resistance (1/m)",
        run: exp::ablate::run,
    },
    Experiment {
        id: "timed",
        description: "Timed nets: latency placement never rescues the ring; loss leaves the model",
        run: exp::timed::run,
    },
    Experiment {
        id: "faults",
        description:
            "Crash faults: survival vs. crash count, recovery ladder, crashes never arm rushing",
        run: exp::faults::run,
    },
];

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<_> = EXPERIMENTS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENTS.len());
    }

    #[test]
    fn find_locates_experiments() {
        assert!(find("t42").is_some());
        assert!(find("nope").is_none());
    }
}
