//! Plain-text result tables, aligned for terminals and easy to diff in
//! `EXPERIMENTS.md`.

/// A titled table with aligned columns.
///
/// # Examples
///
/// ```
/// use fle_experiments::Table;
///
/// let mut t = Table::new("demo", &["n", "rate"]);
/// t.row(["16", "1.000"]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("1.000"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, const N: usize>(&mut self, cells: [S; N]) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row from a vector (for dynamic widths).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_vec(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a free-text note shown under the table.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.row(["xxxxx", "y"]);
        t.row(["z", "w"]);
        t.note("hello");
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== t ==");
        assert!(lines[1].starts_with("a      bbbb"));
        assert!(s.contains("note: hello"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["only-one"]);
    }
}
