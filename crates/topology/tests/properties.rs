//! Property-based tests for the impossibility machinery.

use fle_topology::tree_fle::TreeSumFle;
use fle_topology::two_party::{dichotomy, AlternatingProtocol, Party, Verdict};
use fle_topology::{Graph, TreePartition};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim F.5 holds for random connected graphs of any density.
    #[test]
    fn claim_f5_on_random_graphs(n in 2usize..40, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = Graph::random_connected(n, p, seed);
        let partition = TreePartition::claim_f5(&g);
        prop_assert!(partition.k() <= n.div_ceil(2));
        // Parts partition the vertex set.
        let total: usize = partition.parts().iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        // Quotient edge count is parts − 1 (a tree).
        prop_assert_eq!(partition.quotient_edges().len(), partition.parts().len() - 1);
    }

    /// The verifier rejects a partition with one part split in two
    /// whenever that creates a quotient cycle or disconnected part.
    #[test]
    fn singleton_partitions_valid_only_for_trees(n in 3usize..20, seed in any::<u64>()) {
        let tree = Graph::random_tree(n, seed);
        let parts: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
        prop_assert!(TreePartition::new(&tree, parts.clone()).is_ok());
        // Add one chord: the singleton quotient now has a cycle.
        let mut cyclic = tree.clone();
        let mut added = false;
        'outer: for a in 0..n {
            for b in a + 2..n {
                if !cyclic.has_edge(a, b) {
                    cyclic.add_edge(a, b);
                    added = true;
                    break 'outer;
                }
            }
        }
        prop_assume!(added);
        prop_assert!(TreePartition::new(&cyclic, parts).is_err());
    }

    /// Tree-sum FLE on the quotient of a random connected graph: honest
    /// runs elect Σ dᵢ mod n, and the root part forces any target.
    #[test]
    fn tree_fle_honest_and_dictated(n in 2usize..30, seed in any::<u64>(), w_raw in any::<u64>()) {
        let g = Graph::random_connected(n, 0.2, seed);
        let partition = TreePartition::claim_f5(&g);
        let fle = TreeSumFle::new(&g, &partition, seed);
        let honest = fle.run_honest().outcome.elected().expect("honest succeeds");
        prop_assert!(honest < n as u64);
        let w = w_raw % n as u64;
        prop_assert_eq!(fle.run_with_dictator(w).outcome.elected(), Some(w));
        prop_assert!(fle.dictator_coalition().len() <= partition.k());
    }

    /// Lemma F.2 dichotomy, with verified extracted strategies, over the
    /// random protocol space (the executable form of the lemma's "for
    /// every protocol" quantifier).
    #[test]
    fn lemma_f2_dichotomy_universal(seed in any::<u64>(), rounds in 2usize..5, inputs in 2usize..4) {
        let p = AlternatingProtocol::random(seed, rounds, 2, inputs);
        match dichotomy(&p) {
            Verdict::Favourable { bit, by_a, by_b } => {
                for i in 0..inputs {
                    prop_assert_eq!(p.run_against(Party::A, &by_a, i), bit);
                    prop_assert_eq!(p.run_against(Party::B, &by_b, i), bit);
                }
            }
            Verdict::Dictator { party, force_0, force_1 } => {
                for i in 0..inputs {
                    prop_assert_eq!(p.run_against(party, &force_0, i), 0);
                    prop_assert_eq!(p.run_against(party, &force_1, i), 1);
                }
            }
        }
    }

    /// `assures` is monotone in the honest input set: a strategy that
    /// beats every input also beats the protocol restricted to fewer
    /// inputs (sanity of the solver's universal quantifier).
    #[test]
    fn assures_implies_pointwise_wins(seed in any::<u64>()) {
        use fle_topology::two_party::assures;
        let p = AlternatingProtocol::random(seed, 4, 2, 4);
        for bit in [0u8, 1] {
            if let Some(s) = assures(&p, Party::B, bit) {
                for input in 0..4 {
                    prop_assert_eq!(p.run_against(Party::B, &s, input), bit);
                }
            }
        }
    }
}
