//! Lemma F.2 made executable: every finite two-party coin-toss protocol
//! has a party that can assure an outcome.
//!
//! The paper proves (by induction on the number of messages) that for any
//! two-party protocol with outputs `{0, 1}` and a product input space,
//! *either A assures 0 or B assures 1* (and symmetrically with the bits
//! swapped) — where "assures `b`" means the party has a deviating
//! strategy forcing outcome `b` against **every** input of the honest
//! counterparty. This module models finite alternating-message protocols,
//! runs the same induction as a backward-induction solver, and — unlike
//! the paper — *extracts* the deviating strategy and replays it to verify
//! it wins on every honest input.

use ring_sim::rng::SplitMix64;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One of the two parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// The party sending messages 0, 2, 4, …
    A,
    /// The party sending messages 1, 3, 5, …
    B,
}

impl Party {
    /// The counterparty.
    pub fn other(self) -> Party {
        match self {
            Party::A => Party::B,
            Party::B => Party::A,
        }
    }

    /// Who sends the message at 0-based position `i` (A starts).
    pub fn turn(i: usize) -> Party {
        if i.is_multiple_of(2) {
            Party::A
        } else {
            Party::B
        }
    }
}

type StrategyFn = dyn Fn(Party, usize, &[usize]) -> usize;
type OutputFn = dyn Fn(&[usize]) -> u8;

/// A finite two-party protocol with alternating messages.
///
/// `rounds` messages are exchanged (A sends the first), each a symbol in
/// `[0, alphabet)` chosen deterministically from the sender's private
/// input and the transcript so far; afterwards both parties output
/// `output(transcript) ∈ {0, 1}`. This captures the full-information
/// coin-toss protocols of the paper's model (unbounded computation, no
/// cryptography).
///
/// # Examples
///
/// ```
/// use fle_topology::two_party::{AlternatingProtocol, Party};
///
/// let xor = AlternatingProtocol::xor_coin();
/// // Honest play: output = a XOR b.
/// assert_eq!(xor.run_honest(1, 0), 1);
/// assert_eq!(xor.run_honest(1, 1), 0);
/// ```
#[derive(Clone)]
pub struct AlternatingProtocol {
    rounds: usize,
    alphabet: usize,
    inputs_a: usize,
    inputs_b: usize,
    strategy: Rc<StrategyFn>,
    output: Rc<OutputFn>,
}

impl std::fmt::Debug for AlternatingProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlternatingProtocol")
            .field("rounds", &self.rounds)
            .field("alphabet", &self.alphabet)
            .field("inputs_a", &self.inputs_a)
            .field("inputs_b", &self.inputs_b)
            .finish_non_exhaustive()
    }
}

impl AlternatingProtocol {
    /// Builds a protocol from explicit strategy and output functions.
    ///
    /// `strategy(party, input, transcript)` must return a symbol
    /// `< alphabet`; `output(transcript)` must return 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(
        rounds: usize,
        alphabet: usize,
        inputs_a: usize,
        inputs_b: usize,
        strategy: impl Fn(Party, usize, &[usize]) -> usize + 'static,
        output: impl Fn(&[usize]) -> u8 + 'static,
    ) -> Self {
        assert!(rounds > 0 && alphabet > 0 && inputs_a > 0 && inputs_b > 0);
        Self {
            rounds,
            alphabet,
            inputs_a,
            inputs_b,
            strategy: Rc::new(strategy),
            output: Rc::new(output),
        }
    }

    /// The naive XOR coin toss: each party holds a bit, A announces its
    /// bit, B announces its bit, output is the XOR. The classic example of
    /// a protocol where the *second* mover is a dictator.
    pub fn xor_coin() -> Self {
        Self::new(
            2,
            2,
            2,
            2,
            |_, input, _| input,
            |t| ((t[0] + t[1]) % 2) as u8,
        )
    }

    /// A longer multi-round parity protocol: each party alternately
    /// reveals one bit of its input over `2·bits` messages; the output is
    /// the parity of everything sent.
    pub fn parity_exchange(bits: usize) -> Self {
        let inputs = 1usize << bits;
        Self::new(
            2 * bits,
            2,
            inputs,
            inputs,
            move |_, input, t| (input >> (t.len() / 2)) & 1,
            |t| (t.iter().sum::<usize>() % 2) as u8,
        )
    }

    /// A pseudo-random protocol (deterministic in `seed`), used to test
    /// the Lemma F.2 dichotomy beyond hand-crafted examples.
    pub fn random(seed: u64, rounds: usize, alphabet: usize, inputs: usize) -> Self {
        let strat_seed = seed;
        let out_seed = seed ^ 0x00ff_00ff_00ff_00ff;
        Self::new(
            rounds,
            alphabet,
            inputs,
            inputs,
            move |party, input, t| {
                let mut h = SplitMix64::new(strat_seed ^ (party as u64) << 32 ^ input as u64);
                for &m in t {
                    h = SplitMix64::new(h.next_u64() ^ m as u64);
                }
                (h.next_u64() % alphabet as u64) as usize
            },
            move |t| {
                let mut h = SplitMix64::new(out_seed);
                for &m in t {
                    h = SplitMix64::new(h.next_u64() ^ m as u64);
                }
                (h.next_u64() % 2) as u8
            },
        )
    }

    /// Number of messages exchanged.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Runs the protocol honestly with the given inputs.
    pub fn run_honest(&self, input_a: usize, input_b: usize) -> u8 {
        let mut t = Vec::with_capacity(self.rounds);
        for i in 0..self.rounds {
            let (party, input) = match Party::turn(i) {
                Party::A => (Party::A, input_a),
                Party::B => (Party::B, input_b),
            };
            let m = (self.strategy)(party, input, &t);
            assert!(m < self.alphabet, "strategy emitted an invalid symbol");
            t.push(m);
        }
        (self.output)(&t)
    }

    /// Runs the protocol with `deviator` playing `strategy` (a transcript
    /// → symbol map) and the other party honest with `honest_input`.
    pub fn run_against(
        &self,
        deviator: Party,
        strategy: &DictatorStrategy,
        honest_input: usize,
    ) -> u8 {
        let mut t = Vec::with_capacity(self.rounds);
        for i in 0..self.rounds {
            let m = if Party::turn(i) == deviator {
                *strategy
                    .moves
                    .get(&t)
                    .expect("extracted strategy covers every reachable transcript")
            } else {
                (self.strategy)(Party::turn(i), honest_input, &t)
            };
            t.push(m);
        }
        (self.output)(&t)
    }

    fn inputs_of(&self, party: Party) -> usize {
        match party {
            Party::A => self.inputs_a,
            Party::B => self.inputs_b,
        }
    }
}

/// An extracted deviating strategy: the symbol to send at each reachable
/// transcript where it is the deviator's turn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DictatorStrategy {
    moves: BTreeMap<Vec<usize>, usize>,
}

impl DictatorStrategy {
    /// Number of decision points in the strategy.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// `true` when the strategy has no decision points (possible for a
    /// protocol whose outcome never depends on the deviator).
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Decides whether `deviator` can assure outcome `bit` against every
/// honest input, and if so extracts the witnessing strategy (the
/// executable content of Lemma F.2's induction).
pub fn assures(
    protocol: &AlternatingProtocol,
    deviator: Party,
    bit: u8,
) -> Option<DictatorStrategy> {
    let honest = deviator.other();
    let all_honest: Vec<usize> = (0..protocol.inputs_of(honest)).collect();
    let mut strategy = DictatorStrategy::default();
    let ok = assure_rec(
        protocol,
        deviator,
        bit,
        &mut Vec::new(),
        &all_honest,
        &mut strategy,
    );
    ok.then_some(strategy)
}

fn assure_rec(
    p: &AlternatingProtocol,
    deviator: Party,
    bit: u8,
    transcript: &mut Vec<usize>,
    consistent: &[usize],
    strategy: &mut DictatorStrategy,
) -> bool {
    if transcript.len() == p.rounds {
        return (p.output)(transcript) == bit;
    }
    let turn = Party::turn(transcript.len());
    if turn == deviator {
        // ∃ a symbol forcing the target in every continuation.
        for m in 0..p.alphabet {
            transcript.push(m);
            let ok = assure_rec(p, deviator, bit, transcript, consistent, strategy);
            transcript.pop();
            if ok {
                strategy.moves.insert(transcript.clone(), m);
                return true;
            }
        }
        false
    } else {
        // ∀ messages the honest party could send (grouped by the inputs
        // still consistent with the transcript).
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &input in consistent {
            let m = (p.strategy)(turn, input, transcript);
            groups.entry(m).or_default().push(input);
        }
        for (m, inputs) in groups {
            transcript.push(m);
            let ok = assure_rec(p, deviator, bit, transcript, &inputs, strategy);
            transcript.pop();
            if !ok {
                return false;
            }
        }
        true
    }
}

/// The conclusion of Lemma F.2 for a concrete protocol: either some value
/// is *favourable* (both parties can assure it) or some party is a
/// *dictator* (it can assure both values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Both parties assure `bit`; the strategies are `(A's, B's)`.
    Favourable {
        /// The value both parties can force.
        bit: u8,
        /// A's assuring strategy.
        by_a: DictatorStrategy,
        /// B's assuring strategy.
        by_b: DictatorStrategy,
    },
    /// One party assures both outcomes; the strategies force 0 and 1.
    Dictator {
        /// The all-powerful party.
        party: Party,
        /// Strategy forcing outcome 0.
        force_0: DictatorStrategy,
        /// Strategy forcing outcome 1.
        force_1: DictatorStrategy,
    },
}

/// The Lemma F.2 dichotomy, checked constructively: *either* there is a
/// favourable value both parties assure, *or* one party is a dictator.
///
/// The lemma's two statements are "A assures 0 **or** B assures 1" and
/// "A assures 1 **or** B assures 0"; combining the four cases yields the
/// favourable-value/dictator classification returned here.
///
/// # Panics
///
/// Panics if neither statement holds — which Lemma F.2 proves impossible
/// for protocols in this model.
pub fn dichotomy(protocol: &AlternatingProtocol) -> Verdict {
    let a0 = assures(protocol, Party::A, 0);
    let a1 = assures(protocol, Party::A, 1);
    let b0 = assures(protocol, Party::B, 0);
    let b1 = assures(protocol, Party::B, 1);
    // Statement 1: A assures 0 or B assures 1.
    assert!(
        a0.is_some() || b1.is_some(),
        "Lemma F.2 statement 1 violated"
    );
    // Statement 2: A assures 1 or B assures 0.
    assert!(
        a1.is_some() || b0.is_some(),
        "Lemma F.2 statement 2 violated"
    );
    match (a0, a1, b0, b1) {
        (Some(f0), Some(f1), _, _) => Verdict::Dictator {
            party: Party::A,
            force_0: f0,
            force_1: f1,
        },
        (_, _, Some(f0), Some(f1)) => Verdict::Dictator {
            party: Party::B,
            force_0: f0,
            force_1: f1,
        },
        (Some(by_a), _, Some(by_b), _) => Verdict::Favourable { bit: 0, by_a, by_b },
        (_, Some(by_a), _, Some(by_b)) => Verdict::Favourable { bit: 1, by_a, by_b },
        _ => unreachable!("the two statements guarantee one of the four cases"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_second_mover_is_a_dictator() {
        let xor = AlternatingProtocol::xor_coin();
        // B sees A's bit before choosing; it assures both outcomes.
        for bit in [0u8, 1] {
            let s = assures(&xor, Party::B, bit).expect("B is a dictator");
            for a_input in 0..2 {
                assert_eq!(xor.run_against(Party::B, &s, a_input), bit);
            }
        }
        // A commits first; it can assure neither.
        assert!(assures(&xor, Party::A, 0).is_none());
        assert!(assures(&xor, Party::A, 1).is_none());
    }

    #[test]
    fn parity_exchange_last_bit_decides() {
        let p = AlternatingProtocol::parity_exchange(2);
        for bit in [0u8, 1] {
            let s = assures(&p, Party::B, bit).expect("B moves last");
            for a_input in 0..4 {
                assert_eq!(p.run_against(Party::B, &s, a_input), bit);
            }
        }
    }

    /// Replays every strategy named in a verdict against every honest
    /// input and checks it forces the promised bit.
    fn verify_verdict(p: &AlternatingProtocol, v: &Verdict, inputs: usize, ctx: &str) {
        match v {
            Verdict::Favourable { bit, by_a, by_b } => {
                for input in 0..inputs {
                    assert_eq!(p.run_against(Party::A, by_a, input), *bit, "{ctx} (A)");
                    assert_eq!(p.run_against(Party::B, by_b, input), *bit, "{ctx} (B)");
                }
            }
            Verdict::Dictator {
                party,
                force_0,
                force_1,
            } => {
                for input in 0..inputs {
                    assert_eq!(p.run_against(*party, force_0, input), 0, "{ctx} (0)");
                    assert_eq!(p.run_against(*party, force_1, input), 1, "{ctx} (1)");
                }
            }
        }
    }

    #[test]
    fn dichotomy_holds_on_random_protocols() {
        // Lemma F.2 over a sample of the protocol space: every random
        // finite protocol yields a favourable value or a dictator, and the
        // extracted strategies verifiably win on every honest input.
        let mut dictators = 0;
        for seed in 0..60 {
            let p = AlternatingProtocol::random(seed, 4, 2, 4);
            let v = dichotomy(&p);
            if matches!(v, Verdict::Dictator { .. }) {
                dictators += 1;
            }
            verify_verdict(&p, &v, 4, &format!("seed={seed}"));
        }
        // Both branches of the lemma must actually occur in the sample.
        assert!(dictators > 0, "no dictator protocols sampled");
        assert!(dictators < 60, "no favourable-value protocols sampled");
    }

    #[test]
    fn dichotomy_holds_with_larger_alphabet() {
        for seed in 0..10 {
            let p = AlternatingProtocol::random(seed, 3, 3, 3);
            let v = dichotomy(&p); // panics internally if the lemma fails
            verify_verdict(&p, &v, 3, &format!("seed={seed}"));
        }
    }

    #[test]
    fn xor_verdict_is_b_dictator() {
        match dichotomy(&AlternatingProtocol::xor_coin()) {
            Verdict::Dictator {
                party: Party::B, ..
            } => {}
            other => panic!("expected B dictator, got {other:?}"),
        }
    }

    #[test]
    fn honest_xor_is_fair_over_inputs() {
        let xor = AlternatingProtocol::xor_coin();
        let mut ones = 0;
        for a in 0..2 {
            for b in 0..2 {
                ones += xor.run_honest(a, b) as u32;
            }
        }
        assert_eq!(ones, 2); // exactly half the input pairs yield 1
    }

    #[test]
    fn strategy_len_accessors() {
        let xor = AlternatingProtocol::xor_coin();
        let s = assures(&xor, Party::B, 0).unwrap();
        assert!(!s.is_empty());
        assert_eq!(s.len(), 2); // one decision per observed A-bit
    }

    #[test]
    fn turn_alternates_from_a() {
        assert_eq!(Party::turn(0), Party::A);
        assert_eq!(Party::turn(1), Party::B);
        assert_eq!(Party::turn(2), Party::A);
        assert_eq!(Party::A.other(), Party::B);
    }
}
