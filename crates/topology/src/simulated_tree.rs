//! `k`-simulated trees (paper Definition 7.1, Claim F.5, Figure 2).
//!
//! A graph `G` is a *k-simulated tree* when its vertices can be
//! partitioned into connected parts of size at most `k` such that the
//! quotient (the graph induced on the parts) is a tree. Theorem 7.2 shows
//! that on any such graph some single part — a coalition of at most `k`
//! processors — can bias every fair leader election protocol.

use crate::graph::Graph;
use ring_sim::NodeId;

/// A partition of a graph's vertices witnessing the k-simulated-tree
/// structure of Definition 7.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePartition {
    parts: Vec<Vec<NodeId>>,
    /// Quotient edges as pairs of part indices `(a, b)`, `a < b`.
    quotient_edges: Vec<(usize, usize)>,
}

/// Why a candidate partition fails Definition 7.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The parts are not a partition of `0..n` (missing/duplicate nodes).
    NotAPartition,
    /// Some part is not connected in the graph.
    DisconnectedPart(usize),
    /// Some part is empty.
    EmptyPart(usize),
    /// The quotient graph contains a cycle (or is disconnected), so it is
    /// not a tree.
    QuotientNotATree,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NotAPartition => write!(f, "parts do not partition the vertex set"),
            PartitionError::DisconnectedPart(i) => write!(f, "part {i} is not connected"),
            PartitionError::EmptyPart(i) => write!(f, "part {i} is empty"),
            PartitionError::QuotientNotATree => write!(f, "quotient graph is not a tree"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl TreePartition {
    /// Validates a candidate partition against Definition 7.1 for graph
    /// `g`: parts partition the vertices, each part is connected, and the
    /// quotient is a tree. (The homomorphism requirement of the
    /// definition is exactly "every `G`-edge is intra-part or joins two
    /// quotient-adjacent parts", which holds by construction of the
    /// quotient; what must be *checked* is treeness.)
    ///
    /// # Errors
    ///
    /// Returns the specific [`PartitionError`] violated.
    pub fn new(g: &Graph, parts: Vec<Vec<NodeId>>) -> Result<Self, PartitionError> {
        let n = g.len();
        let mut owner = vec![usize::MAX; n];
        for (i, part) in parts.iter().enumerate() {
            if part.is_empty() {
                return Err(PartitionError::EmptyPart(i));
            }
            for &v in part {
                if v >= n || owner[v] != usize::MAX {
                    return Err(PartitionError::NotAPartition);
                }
                owner[v] = i;
            }
        }
        if owner.contains(&usize::MAX) {
            return Err(PartitionError::NotAPartition);
        }
        for (i, part) in parts.iter().enumerate() {
            if !g.is_connected_subset(part) {
                return Err(PartitionError::DisconnectedPart(i));
            }
        }
        // Build the quotient simple graph.
        let mut qedges = std::collections::BTreeSet::new();
        for (a, b) in g.edges() {
            let (pa, pb) = (owner[a], owner[b]);
            if pa != pb {
                qedges.insert((pa.min(pb), pa.max(pb)));
            }
        }
        // A connected simple graph on m nodes is a tree iff it has m − 1
        // edges.
        let m = parts.len();
        if qedges.len() != m.saturating_sub(1) || !quotient_connected(m, &qedges) {
            return Err(PartitionError::QuotientNotATree);
        }
        Ok(Self {
            parts,
            quotient_edges: qedges.into_iter().collect(),
        })
    }

    /// The Claim F.5 construction: every connected graph is a
    /// `⌈n/2⌉`-simulated tree. The first part is a BFS ball of exactly
    /// `⌈n/2⌉` vertices; each further part is a connected component of
    /// what remains (maximality makes the quotient acyclic).
    ///
    /// # Panics
    ///
    /// Panics if `g` is empty or disconnected (Claim F.5 assumes a
    /// connected graph).
    pub fn claim_f5(g: &Graph) -> Self {
        let n = g.len();
        assert!(n > 0, "graph must be non-empty");
        assert!(g.is_connected(), "Claim F.5 requires a connected graph");
        let first = g
            .bfs_ball(0, n.div_ceil(2))
            .expect("connected graph has a ball of size ceil(n/2)");
        let mut excluded = vec![false; n];
        for &v in &first {
            excluded[v] = true;
        }
        let mut parts = vec![first];
        for v in 0..n {
            if !excluded[v] {
                let comp = g.component_of(v, &excluded);
                for &w in &comp {
                    excluded[w] = true;
                }
                parts.push(comp);
            }
        }
        Self::new(g, parts).expect("Claim F.5 construction is always valid")
    }

    /// The parts (each sorted ascending).
    pub fn parts(&self) -> &[Vec<NodeId>] {
        &self.parts
    }

    /// The `k` witnessed by this partition: the largest part size.
    pub fn k(&self) -> usize {
        self.parts.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Edges of the quotient tree, as part-index pairs.
    pub fn quotient_edges(&self) -> &[(usize, usize)] {
        &self.quotient_edges
    }

    /// The part index owning vertex `v`, if in range.
    pub fn part_of(&self, v: NodeId) -> Option<usize> {
        self.parts.iter().position(|p| p.contains(&v))
    }

    /// The quotient tree as a `ring-sim` topology (bidirectional edges),
    /// for running simulated protocols on it.
    pub fn quotient_topology(&self) -> ring_sim::Topology {
        let m = self.parts.len();
        let mut edges = Vec::with_capacity(2 * self.quotient_edges.len());
        for &(a, b) in &self.quotient_edges {
            edges.push((a, b));
            edges.push((b, a));
        }
        ring_sim::Topology::from_edges(m, edges).expect("quotient edges are simple")
    }
}

fn quotient_connected(m: usize, edges: &std::collections::BTreeSet<(usize, usize)>) -> bool {
    if m == 0 {
        return false;
    }
    let mut adj = vec![Vec::new(); m];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut seen = vec![false; m];
    let mut stack = vec![0];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count == m
}

/// The paper's Figure 2: a 16-vertex graph that is a 4-simulated tree —
/// four 4-cliques glued along a path by single bridge edges. Returns the
/// graph together with the witnessing partition (`k = 4`).
///
/// # Examples
///
/// ```
/// use fle_topology::figure2_graph;
///
/// let (g, partition) = figure2_graph();
/// assert_eq!(g.len(), 16);
/// assert_eq!(partition.k(), 4);
/// assert_eq!(partition.parts().len(), 4);
/// ```
pub fn figure2_graph() -> (Graph, TreePartition) {
    let mut g = Graph::new(16);
    // Four cliques {0..4}, {4..8}, {8..12}, {12..16}… using disjoint
    // vertex groups: clique c occupies 4c..4c+4.
    for c in 0..4 {
        let base = 4 * c;
        for a in 0..4 {
            for b in a + 1..4 {
                g.add_edge(base + a, base + b);
            }
        }
    }
    // Bridges forming a star around clique 0: 3—4, 2—8, 1—12.
    g.add_edge(3, 4);
    g.add_edge(2, 8);
    g.add_edge(1, 12);
    let parts = (0..4).map(|c| (4 * c..4 * c + 4).collect()).collect();
    let partition = TreePartition::new(&g, parts).expect("figure 2 partition is valid");
    (g, partition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_is_a_4_simulated_tree() {
        let (g, p) = figure2_graph();
        assert_eq!(p.k(), 4);
        assert!(g.is_connected());
        assert_eq!(p.quotient_edges().len(), 3);
    }

    #[test]
    fn claim_f5_holds_for_families() {
        for (name, g) in [
            ("path", Graph::path(9)),
            ("cycle", Graph::cycle(10)),
            ("complete", Graph::complete(8)),
            ("grid", Graph::grid(3, 5)),
            ("random", Graph::random_connected(17, 0.2, 5)),
        ] {
            let p = TreePartition::claim_f5(&g);
            assert!(
                p.k() <= g.len().div_ceil(2),
                "{name}: k = {} > ⌈n/2⌉",
                p.k()
            );
        }
    }

    #[test]
    fn trees_are_1_simulated() {
        let g = Graph::random_tree(12, 9);
        let parts = (0..12).map(|v| vec![v]).collect();
        let p = TreePartition::new(&g, parts).unwrap();
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn cycle_two_arc_partition_is_valid() {
        let g = Graph::cycle(8);
        let p = TreePartition::new(&g, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]).unwrap();
        assert_eq!(p.k(), 4);
        assert_eq!(p.quotient_edges(), &[(0, 1)]);
    }

    #[test]
    fn cycle_three_arc_partition_is_rejected() {
        // Three arcs of a cycle induce a quotient triangle — not a tree.
        let g = Graph::cycle(9);
        let parts = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
        assert_eq!(
            TreePartition::new(&g, parts).unwrap_err(),
            PartitionError::QuotientNotATree
        );
    }

    #[test]
    fn disconnected_part_is_rejected() {
        let g = Graph::path(5);
        let parts = vec![vec![0, 2], vec![1], vec![3, 4]];
        assert_eq!(
            TreePartition::new(&g, parts).unwrap_err(),
            PartitionError::DisconnectedPart(0)
        );
    }

    #[test]
    fn bad_partitions_are_rejected() {
        let g = Graph::path(4);
        assert_eq!(
            TreePartition::new(&g, vec![vec![0, 1], vec![1, 2, 3]]).unwrap_err(),
            PartitionError::NotAPartition
        );
        assert_eq!(
            TreePartition::new(&g, vec![vec![0, 1, 2]]).unwrap_err(),
            PartitionError::NotAPartition
        );
        assert_eq!(
            TreePartition::new(&g, vec![vec![0, 1, 2, 3], vec![]]).unwrap_err(),
            PartitionError::EmptyPart(1)
        );
    }

    #[test]
    fn part_of_locates_vertices() {
        let (_, p) = figure2_graph();
        assert_eq!(p.part_of(0), Some(0));
        assert_eq!(p.part_of(5), Some(1));
        assert_eq!(p.part_of(15), Some(3));
        assert_eq!(p.part_of(99), None);
    }

    #[test]
    fn quotient_topology_matches_edges() {
        let (_, p) = figure2_graph();
        let t = p.quotient_topology();
        assert_eq!(t.len(), 4);
        for &(a, b) in p.quotient_edges() {
            assert!(t.edge_id(a, b).is_some());
            assert!(t.edge_id(b, a).is_some());
        }
    }

    #[test]
    fn error_messages_render() {
        for e in [
            PartitionError::NotAPartition,
            PartitionError::DisconnectedPart(1),
            PartitionError::EmptyPart(0),
            PartitionError::QuotientNotATree,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
