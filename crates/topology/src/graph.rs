//! Simple undirected graphs and the families used in the Section 7
//! experiments.

use ring_sim::rng::SplitMix64;
use ring_sim::NodeId;
use std::collections::BTreeSet;

/// An undirected simple graph on nodes `0..n`.
///
/// # Examples
///
/// ```
/// use fle_topology::Graph;
///
/// let g = Graph::cycle(5);
/// assert_eq!(g.len(), 5);
/// assert!(g.has_edge(4, 0));
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<BTreeSet<NodeId>>,
}

impl Graph {
    /// An empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Adds the undirected edge `{a, b}` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of range");
        assert!(a != b, "self loops not allowed");
        self.adj[a].insert(b);
        self.adj[b].insert(a);
    }

    /// A path `0 — 1 — … — n−1`.
    pub fn path(n: usize) -> Self {
        let mut g = Self::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// A cycle on `n ≥ 3` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs n >= 3");
        let mut g = Self::path(n);
        g.add_edge(n - 1, 0);
        g
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::new(n);
        for a in 0..n {
            for b in a + 1..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// A `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut g = Self::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < rows {
                    g.add_edge(v, v + cols);
                }
            }
        }
        g
    }

    /// A random tree from a uniformly random parent assignment
    /// (`parent(i)` uniform in `0..i`).
    pub fn random_tree(n: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut g = Self::new(n);
        for i in 1..n {
            let p = rng.next_below(i as u64) as usize;
            g.add_edge(p, i);
        }
        g
    }

    /// An Erdős–Rényi `G(n, p)` graph conditioned on connectivity by
    /// overlaying a random tree.
    pub fn random_connected(n: usize, p: f64, seed: u64) -> Self {
        let mut g = Self::random_tree(n, seed);
        let mut rng = SplitMix64::new(seed ^ 0xda7a_5eed);
        for a in 0..n {
            for b in a + 1..n {
                if rng.next_bool(p) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// `true` if `{a, b}` is an edge.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.get(a).is_some_and(|s| s.contains(&b))
    }

    /// Neighbors of `v` in ascending order.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v].iter().copied()
    }

    /// All edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for a in 0..self.n {
            for &b in &self.adj[a] {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// `true` if the whole graph is one connected component.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.component_of(0, &vec![false; self.n]).len() == self.n
    }

    /// `true` if `nodes` induces a connected subgraph (the Definition 7.1
    /// requirement on parts).
    pub fn is_connected_subset(&self, nodes: &[NodeId]) -> bool {
        if nodes.is_empty() {
            return false;
        }
        let inside: BTreeSet<NodeId> = nodes.iter().copied().collect();
        let mut seen = BTreeSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(v) = stack.pop() {
            for w in self.neighbors(v) {
                if inside.contains(&w) && seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        seen.len() == inside.len()
    }

    /// The connected component of `start` among nodes where
    /// `excluded[v] == false`.
    pub fn component_of(&self, start: NodeId, excluded: &[bool]) -> Vec<NodeId> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![start];
        let mut out = Vec::new();
        if excluded[start] {
            return out;
        }
        seen[start] = true;
        while let Some(v) = stack.pop() {
            out.push(v);
            for w in self.neighbors(v) {
                if !seen[w] && !excluded[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// A connected subset of exactly `size` nodes grown by BFS from
    /// `start` (used by the Claim F.5 construction), or `None` if the
    /// component of `start` is smaller than `size`.
    pub fn bfs_ball(&self, start: NodeId, size: usize) -> Option<Vec<NodeId>> {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        let mut out = Vec::with_capacity(size);
        while let Some(v) = queue.pop_front() {
            out.push(v);
            if out.len() == size {
                out.sort_unstable();
                return Some(out);
            }
            for w in self.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_expected_shape() {
        assert_eq!(Graph::path(5).edge_count(), 4);
        assert_eq!(Graph::cycle(5).edge_count(), 5);
        assert_eq!(Graph::complete(5).edge_count(), 10);
        assert_eq!(Graph::grid(3, 4).edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(Graph::random_tree(10, 3).edge_count(), 9);
    }

    #[test]
    fn all_families_connected() {
        assert!(Graph::path(7).is_connected());
        assert!(Graph::cycle(7).is_connected());
        assert!(Graph::complete(7).is_connected());
        assert!(Graph::grid(4, 4).is_connected());
        assert!(Graph::random_tree(20, 1).is_connected());
        assert!(Graph::random_connected(20, 0.1, 2).is_connected());
    }

    #[test]
    fn connected_subset_checks() {
        let g = Graph::path(6);
        assert!(g.is_connected_subset(&[1, 2, 3]));
        assert!(!g.is_connected_subset(&[1, 3]));
        assert!(!g.is_connected_subset(&[]));
        assert!(g.is_connected_subset(&[4]));
    }

    #[test]
    fn bfs_ball_is_connected_and_sized() {
        let g = Graph::grid(4, 4);
        for size in 1..=16 {
            let ball = g.bfs_ball(5, size).unwrap();
            assert_eq!(ball.len(), size);
            assert!(g.is_connected_subset(&ball));
        }
        assert!(g.bfs_ball(0, 17).is_none());
    }

    #[test]
    fn component_excludes_nodes() {
        let g = Graph::path(5);
        let mut excluded = vec![false; 5];
        excluded[2] = true;
        assert_eq!(g.component_of(0, &excluded), vec![0, 1]);
        assert_eq!(g.component_of(3, &excluded), vec![3, 4]);
        assert!(g.component_of(2, &excluded).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        Graph::new(2).add_edge(0, 5);
    }
}
