//! Lemma F.3 / Corollary F.4 demonstrated: leader election over a
//! simulated tree, and the coalition behind one tree node dictating the
//! outcome.
//!
//! Given a `k`-simulated tree (a graph plus a witnessing
//! [`TreePartition`]), the paper simulates any protocol for the graph on
//! the quotient tree — each tree node simulating the ≤ k processors of
//! its part — and shows some tree node assures the outcome. This module
//! instantiates the construction for the natural *tree-sum* fair leader
//! election (convergecast partial sums to the root, broadcast
//! `Σ dᵢ mod n` back down): honest runs are perfectly fair, and the
//! coalition simulated by the quotient root — at most `k` real
//! processors — elects any target it likes by choosing its contribution
//! last. This is the same "wait, then cancel the sum" dictatorship that
//! Lemma F.2's induction extracts in the two-party case.

use crate::graph::Graph;
use crate::simulated_tree::TreePartition;
use ring_sim::rng::SplitMix64;
use ring_sim::{Ctx, Execution, Node, NodeId, Outcome, SimBuilder};

/// Tree-sum fair leader election over the quotient tree of a
/// `k`-simulated graph.
///
/// # Examples
///
/// ```
/// use fle_topology::{figure2_graph, tree_fle::TreeSumFle};
///
/// let (g, partition) = figure2_graph();
/// let fle = TreeSumFle::new(&g, &partition, 7);
/// let honest = fle.run_honest();
/// assert!(honest.outcome.elected().unwrap() < 16);
///
/// // The ≤ k processors of the root part dictate the outcome:
/// let forced = fle.run_with_dictator(11);
/// assert_eq!(forced.outcome.elected(), Some(11));
/// assert!(fle.dictator_coalition().len() <= partition.k());
/// ```
#[derive(Debug, Clone)]
pub struct TreeSumFle {
    /// Total number of *real* processors (the graph's n — the leader
    /// space).
    n_real: usize,
    /// Per-part sums of the simulated processors' secret values.
    part_sums: Vec<u64>,
    /// Members of each part (root part = dictating coalition).
    root_part: Vec<NodeId>,
    parents: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    topology: ring_sim::Topology,
}

impl TreeSumFle {
    /// Builds the protocol instance for a graph with a witnessing
    /// partition; `seed` derives every real processor's secret value.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not belong to a graph of `g.len()`
    /// vertices.
    pub fn new(g: &Graph, partition: &TreePartition, seed: u64) -> Self {
        let n_real = g.len();
        let total: usize = partition.parts().iter().map(Vec::len).sum();
        assert_eq!(total, n_real, "partition does not cover the graph");
        let part_sums: Vec<u64> = partition
            .parts()
            .iter()
            .map(|part| {
                part.iter()
                    .map(|&v| {
                        SplitMix64::new(seed)
                            .derive(v as u64)
                            .next_below(n_real as u64)
                    })
                    .sum::<u64>()
                    % n_real as u64
            })
            .collect();
        let topology = partition.quotient_topology();
        let m = partition.parts().len();
        // Root the quotient tree at part 0.
        let mut parents = vec![None; m];
        let mut children = vec![Vec::new(); m];
        let mut seen = vec![false; m];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(v) = queue.pop_front() {
            for w in topology.out_neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    parents[w] = Some(v);
                    children[v].push(w);
                    queue.push_back(w);
                }
            }
        }
        Self {
            n_real,
            part_sums,
            root_part: partition.parts()[0].clone(),
            parents,
            children,
            topology,
        }
    }

    /// The coalition that dictates under [`TreeSumFle::run_with_dictator`]:
    /// the real processors simulated by the quotient root (at most `k`).
    pub fn dictator_coalition(&self) -> &[NodeId] {
        &self.root_part
    }

    /// Runs the protocol honestly; the outcome is `Σ dᵢ (mod n)` over all
    /// real processors.
    pub fn run_honest(&self) -> Execution {
        self.run(None)
    }

    /// Runs with the root part deviating: it waits for every subtree sum
    /// (which the honest protocol already lets it do!) and then announces
    /// `target` instead of the true total.
    pub fn run_with_dictator(&self, target: u64) -> Execution {
        self.run(Some(target % self.n_real as u64))
    }

    fn run(&self, dictate: Option<u64>) -> Execution {
        let m = self.part_sums.len();
        let mut builder: SimBuilder<'_, u64> = SimBuilder::new(self.topology.clone());
        for id in 0..m {
            builder = builder.boxed_node(
                id,
                Box::new(TreeNode {
                    n_real: self.n_real as u64,
                    own: self.part_sums[id],
                    parent: self.parents[id],
                    children: self.children[id].clone(),
                    pending: self.children[id].len(),
                    acc: 0,
                    dictate: if id == 0 { dictate } else { None },
                }),
            );
        }
        builder.wake_all().run()
    }
}

/// One quotient-tree node simulating its part: convergecast the subtree
/// sum, then broadcast the root's announcement.
struct TreeNode {
    n_real: u64,
    own: u64,
    parent: Option<usize>,
    children: Vec<usize>,
    pending: usize,
    acc: u64,
    dictate: Option<u64>,
}

impl TreeNode {
    fn finish_subtree(&mut self, ctx: &mut Ctx<'_, u64>) {
        let total = (self.own + self.acc) % self.n_real;
        match self.parent {
            Some(p) => ctx.send_to(p, total),
            None => {
                // Root: decide and broadcast. A dictating root ignores the
                // true total — it has seen every other contribution first.
                let leader = self.dictate.unwrap_or(total);
                for &c in &self.children {
                    ctx.send_to(c, leader);
                }
                ctx.terminate(Some(leader));
            }
        }
    }
}

impl Node<u64> for TreeNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.pending == 0 {
            self.finish_subtree(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        if Some(from) == self.parent {
            // The elected leader travelling down.
            for &c in &self.children {
                ctx.send_to(c, msg);
            }
            ctx.terminate(Some(msg));
        } else {
            self.acc = (self.acc + msg) % self.n_real;
            self.pending -= 1;
            if self.pending == 0 {
                self.finish_subtree(ctx);
            }
        }
    }
}

/// Convenience: the Theorem 7.2 demonstration on an arbitrary connected
/// graph. Builds the Claim F.5 partition (`k ≤ ⌈n/2⌉`), runs the
/// dictatorship, and returns `(k, outcome)`.
pub fn theorem_7_2_demo(g: &Graph, seed: u64, target: u64) -> (usize, Outcome) {
    let partition = TreePartition::claim_f5(g);
    let fle = TreeSumFle::new(g, &partition, seed);
    let exec = fle.run_with_dictator(target);
    (partition.k(), exec.outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulated_tree::figure2_graph;

    fn expected_sum(seed: u64, n: usize) -> u64 {
        (0..n)
            .map(|v| SplitMix64::new(seed).derive(v as u64).next_below(n as u64))
            .sum::<u64>()
            % n as u64
    }

    #[test]
    fn honest_run_elects_global_sum() {
        let (g, p) = figure2_graph();
        for seed in 0..10 {
            let fle = TreeSumFle::new(&g, &p, seed);
            assert_eq!(
                fle.run_honest().outcome.elected(),
                Some(expected_sum(seed, 16)),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn honest_distribution_is_uniform() {
        let (g, p) = figure2_graph();
        let trials = 3200;
        let mut counts = vec![0u32; 16];
        for seed in 0..trials {
            let fle = TreeSumFle::new(&g, &p, seed);
            counts[fle.run_honest().outcome.elected().unwrap() as usize] += 1;
        }
        let expect = trials as f64 / 16.0;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.3, "{counts:?}");
        }
    }

    #[test]
    fn root_part_dictates_every_target_with_k_4() {
        let (g, p) = figure2_graph();
        let fle = TreeSumFle::new(&g, &p, 3);
        assert_eq!(fle.dictator_coalition().len(), 4); // k = 4, not ⌈16/2⌉ = 8
        for w in 0..16u64 {
            assert_eq!(fle.run_with_dictator(w).outcome.elected(), Some(w));
        }
    }

    #[test]
    fn claim_f5_dictatorship_on_families() {
        for (name, g) in [
            ("path", Graph::path(10)),
            ("cycle", Graph::cycle(12)),
            ("complete", Graph::complete(9)),
            ("grid", Graph::grid(3, 4)),
        ] {
            let (k, outcome) = theorem_7_2_demo(&g, 5, 3);
            assert!(k <= g.len().div_ceil(2), "{name}");
            assert_eq!(outcome.elected(), Some(3), "{name}");
        }
    }

    #[test]
    fn single_node_tree_elects_itself() {
        let g = Graph::new(1);
        let p = TreePartition::new(&g, vec![vec![0]]).unwrap();
        let fle = TreeSumFle::new(&g, &p, 0);
        assert_eq!(fle.run_honest().outcome.elected(), Some(0));
    }

    #[test]
    fn one_to_one_partition_on_a_tree_still_works() {
        // Trees are 1-simulated trees: the "coalition" is a single node,
        // matching the paper's remark that even k = 1 suffices on trees.
        let g = Graph::random_tree(9, 4);
        let parts = (0..9).map(|v| vec![v]).collect();
        let p = TreePartition::new(&g, parts).unwrap();
        let fle = TreeSumFle::new(&g, &p, 1);
        assert_eq!(fle.dictator_coalition().len(), 1);
        for w in [0u64, 4, 8] {
            assert_eq!(fle.run_with_dictator(w).outcome.elected(), Some(w));
        }
    }
}
