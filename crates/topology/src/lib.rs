//! # fle-topology — impossibility machinery for general networks
//!
//! Executable reproduction of Section 7 and Appendix F of Yifrach &
//! Mansour (PODC 2018): *for every `k`-simulated tree there is no
//! `ε`-`k`-resilient fair leader election protocol* (Theorem 7.2),
//! generalizing Abraham et al.'s `⌈n/2⌉` bound because every connected
//! graph is a `⌈n/2⌉`-simulated tree (Claim F.5).
//!
//! The theorem is an existence proof over *all* protocols; its
//! constructive content is reproduced in three executable pieces:
//!
//! * [`Graph`] and [`TreePartition`] — Definition 7.1: verify that a
//!   partition of a graph into connected parts of size ≤ k induces a tree,
//!   and build the Claim F.5 partition for arbitrary connected graphs.
//! * [`two_party`] — Lemma F.2: a backward-induction solver that, for any
//!   finite two-party coin-toss protocol, *extracts* a deviating strategy
//!   with which one party assures an outcome, and verifies it against
//!   every input of the honest counterparty.
//! * [`tree_fle`] — Lemma F.3 / Corollary F.4: simulate a graph protocol
//!   on its quotient tree and let the coalition behind one tree node
//!   dictate the elected leader.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod simulated_tree;
pub mod tree_fle;
pub mod two_party;

pub use graph::Graph;
pub use simulated_tree::{figure2_graph, PartitionError, TreePartition};
