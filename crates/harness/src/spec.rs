//! Declarative sweep specifications: honest grids, attack grids and
//! tree-dictator grids under one [`SweepSpec`] umbrella.
//!
//! Specs round-trip through a serde-free JSON encoding
//! ([`SweepSpec::to_json`] / [`SweepSpec::parse_json`]) so scenario
//! files can be checked into experiment repositories and replayed
//! byte-identically. [`SweepSpec::validate`] cross-checks every
//! reference (ring sizes, coalition layouts, target ranges) and returns
//! actionable errors *before* any trial runs.

use crate::json::Json;
use crate::sweep::{HonestSweep, ProtocolKind, MAX_BATCH_WIDTH};
use crate::BatchConfig;
use fle_attacks::{build_runner, cubic_distances, AttackKind};
use fle_core::Coalition;
use fle_topology::{figure2_graph, Graph, TreePartition};
use ring_sim::{CrashInstant, FaultConfig, LatencySpec, LinkProfile, TimedNetConfig};

/// How per-trial protocol seeds are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Seed trial `i` with [`trial_seed`](crate::trial_seed)`(base_seed, i)`
    /// — the harness's default well-mixed stream.
    #[default]
    Derived,
    /// Seed trial `i` with the raw index `i` itself. This reproduces the
    /// historical per-table loops (`for seed in 0..trials`) exactly, so
    /// migrated experiments keep their published numbers.
    RawIndex,
}

impl SeedMode {
    fn name(self) -> &'static str {
        match self {
            SeedMode::Derived => "derived",
            SeedMode::RawIndex => "raw_index",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "derived" => Ok(SeedMode::Derived),
            "raw_index" => Ok(SeedMode::RawIndex),
            other => Err(format!(
                "unknown seed_mode \"{other}\" (expected \"derived\" | \"raw_index\")"
            )),
        }
    }

    /// The protocol seed for trial `index` given the harness-derived
    /// `derived` seed.
    pub fn resolve(self, index: u64, derived: u64) -> u64 {
        match self {
            SeedMode::Derived => derived,
            SeedMode::RawIndex => index,
        }
    }
}

/// How the per-trial attack target is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSpec {
    /// The same target every trial.
    Fixed(u64),
    /// `target = (seed * multiplier) % n` — the historical per-table
    /// "rotate the target with the seed" policy.
    SeedProduct {
        /// The multiplier applied to the trial's protocol seed.
        multiplier: u64,
    },
}

impl TargetSpec {
    /// The target for a trial with protocol seed `seed` on a ring/graph
    /// of `n`.
    pub fn resolve(self, seed: u64, n: usize) -> u64 {
        match self {
            TargetSpec::Fixed(v) => v,
            TargetSpec::SeedProduct { multiplier } => seed.wrapping_mul(multiplier) % n as u64,
        }
    }

    fn to_json(self) -> String {
        match self {
            TargetSpec::Fixed(v) => format!("{{\"policy\":\"fixed\",\"value\":{v}}}"),
            TargetSpec::SeedProduct { multiplier } => {
                format!("{{\"policy\":\"seed_product\",\"multiplier\":{multiplier}}}")
            }
        }
    }

    fn parse(v: &Json) -> Result<Self, String> {
        let ctx = "target";
        match req_str(v, "policy", ctx)? {
            "fixed" => {
                check_keys(v, &["policy", "value"], ctx)?;
                Ok(TargetSpec::Fixed(req_u64(v, "value", ctx)?))
            }
            "seed_product" => {
                check_keys(v, &["policy", "multiplier"], ctx)?;
                Ok(TargetSpec::SeedProduct {
                    multiplier: req_u64(v, "multiplier", ctx)?,
                })
            }
            other => Err(format!(
                "unknown target policy \"{other}\" (expected \"fixed\" | \"seed_product\")"
            )),
        }
    }
}

/// How the phase protocols' random-function key is chosen per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKeySpec {
    /// The same key every trial (hoistable: the random function is built
    /// once per worker).
    Fixed(u64),
    /// `fn_key = seed ^ mask` — a fresh random function per trial, as
    /// the historical phase-attack tables drew them.
    SeedXor(u64),
}

impl FnKeySpec {
    /// The random-function key for a trial with protocol seed `seed`.
    pub fn resolve(self, seed: u64) -> u64 {
        match self {
            FnKeySpec::Fixed(v) => v,
            FnKeySpec::SeedXor(mask) => seed ^ mask,
        }
    }

    fn to_json(self) -> String {
        match self {
            FnKeySpec::Fixed(v) => format!("{{\"mode\":\"fixed\",\"value\":{v}}}"),
            FnKeySpec::SeedXor(mask) => format!("{{\"mode\":\"seed_xor\",\"mask\":{mask}}}"),
        }
    }

    fn parse(v: &Json) -> Result<Self, String> {
        let ctx = "fn_key";
        match req_str(v, "mode", ctx)? {
            "fixed" => {
                check_keys(v, &["mode", "value"], ctx)?;
                Ok(FnKeySpec::Fixed(req_u64(v, "value", ctx)?))
            }
            "seed_xor" => {
                check_keys(v, &["mode", "mask"], ctx)?;
                Ok(FnKeySpec::SeedXor(req_u64(v, "mask", ctx)?))
            }
            other => Err(format!(
                "unknown fn_key mode \"{other}\" (expected \"fixed\" | \"seed_xor\")"
            )),
        }
    }
}

/// The delivery discipline trials run under.
///
/// `Fifo` is the fused global-FIFO fast path every historical sweep used;
/// `Timed` runs trials on the virtual-time scheduler with a uniform
/// per-link [`LatencySpec`] plus optional loss and duplication (both in
/// permille for lossless integer JSON). A `Timed` schedule whose latency
/// is [`LatencySpec::ZERO`] and whose loss/dup are 0 produces
/// bit-identical outcomes to `Fifo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleSpec {
    /// Global-FIFO delivery (the default).
    #[default]
    Fifo,
    /// Timed delivery: latency draws, loss and duplication per link.
    Timed {
        /// Per-link latency distribution.
        latency: LatencySpec,
        /// Per-message drop probability in thousandths (0..=1000).
        loss_permille: u32,
        /// Per-message duplication probability in thousandths (0..=1000).
        dup_permille: u32,
    },
}

impl ScheduleSpec {
    /// The uniform [`TimedNetConfig`] this schedule runs on, or `None`
    /// for the FIFO fast path.
    pub fn timed_net(&self) -> Option<TimedNetConfig> {
        match *self {
            ScheduleSpec::Fifo => None,
            ScheduleSpec::Timed {
                latency,
                loss_permille,
                dup_permille,
            } => Some(TimedNetConfig::uniform(LinkProfile {
                latency,
                loss_permille,
                dup_permille,
                gap_ns: 0,
            })),
        }
    }

    fn latency_to_json(latency: LatencySpec) -> String {
        match latency {
            LatencySpec::Constant { ns } => format!("{{\"dist\":\"constant\",\"ns\":{ns}}}"),
            LatencySpec::Uniform { lo, hi } => {
                format!("{{\"dist\":\"uniform\",\"lo\":{lo},\"hi\":{hi}}}")
            }
            LatencySpec::TwoPoint {
                lo,
                hi,
                hi_permille,
            } => format!(
                "{{\"dist\":\"two_point\",\"lo\":{lo},\"hi\":{hi},\"hi_permille\":{hi_permille}}}"
            ),
        }
    }

    fn parse_latency(v: &Json) -> Result<LatencySpec, String> {
        let ctx = "latency";
        match req_str(v, "dist", ctx)? {
            "constant" => {
                check_keys(v, &["dist", "ns"], ctx)?;
                Ok(LatencySpec::Constant {
                    ns: req_u64(v, "ns", ctx)?,
                })
            }
            "uniform" => {
                check_keys(v, &["dist", "lo", "hi"], ctx)?;
                Ok(LatencySpec::Uniform {
                    lo: req_u64(v, "lo", ctx)?,
                    hi: req_u64(v, "hi", ctx)?,
                })
            }
            "two_point" => {
                check_keys(v, &["dist", "lo", "hi", "hi_permille"], ctx)?;
                let hi_permille = req_u64(v, "hi_permille", ctx)?;
                let hi_permille = u32::try_from(hi_permille)
                    .map_err(|_| "latency: \"hi_permille\" out of range".to_string())?;
                Ok(LatencySpec::TwoPoint {
                    lo: req_u64(v, "lo", ctx)?,
                    hi: req_u64(v, "hi", ctx)?,
                    hi_permille,
                })
            }
            other => Err(format!(
                "unknown latency dist \"{other}\" (expected constant | uniform | two_point)"
            )),
        }
    }

    fn to_json(self) -> String {
        match self {
            ScheduleSpec::Fifo => "{\"mode\":\"fifo\"}".to_string(),
            ScheduleSpec::Timed {
                latency,
                loss_permille,
                dup_permille,
            } => format!(
                "{{\"mode\":\"timed\",\"latency\":{},\"loss_permille\":{loss_permille},\
                 \"dup_permille\":{dup_permille}}}",
                Self::latency_to_json(latency)
            ),
        }
    }

    fn parse(v: &Json) -> Result<Self, String> {
        let ctx = "schedule";
        match req_str(v, "mode", ctx)? {
            "fifo" => {
                check_keys(v, &["mode"], ctx)?;
                Ok(ScheduleSpec::Fifo)
            }
            "timed" => {
                check_keys(
                    v,
                    &["mode", "latency", "loss_permille", "dup_permille"],
                    ctx,
                )?;
                let latency = match v.get("latency") {
                    Some(obj) => Self::parse_latency(obj)?,
                    None => LatencySpec::ZERO,
                };
                let loss = opt_u64(v, "loss_permille", 0)?;
                let loss_permille = u32::try_from(loss)
                    .map_err(|_| "schedule: \"loss_permille\" out of range".to_string())?;
                let dup = opt_u64(v, "dup_permille", 0)?;
                let dup_permille = u32::try_from(dup)
                    .map_err(|_| "schedule: \"dup_permille\" out of range".to_string())?;
                Ok(ScheduleSpec::Timed {
                    latency,
                    loss_permille,
                    dup_permille,
                })
            }
            other => Err(format!(
                "unknown schedule mode \"{other}\" (expected \"fifo\" | \"timed\")"
            )),
        }
    }

    /// Cross-checks the schedule's parameters: probabilities within
    /// [0, 1000] permille and non-degenerate latency ranges.
    fn validate(&self) -> Result<(), String> {
        match *self {
            ScheduleSpec::Fifo => Ok(()),
            ScheduleSpec::Timed {
                latency,
                loss_permille,
                dup_permille,
            } => {
                require(
                    loss_permille <= 1000,
                    &format!("schedule loss_permille must be <= 1000, got {loss_permille}"),
                )?;
                require(
                    dup_permille <= 1000,
                    &format!("schedule dup_permille must be <= 1000, got {dup_permille}"),
                )?;
                match latency {
                    LatencySpec::Constant { .. } => Ok(()),
                    LatencySpec::Uniform { lo, hi } => require(
                        hi > lo,
                        &format!("uniform latency needs hi > lo, got lo={lo} hi={hi}"),
                    ),
                    LatencySpec::TwoPoint { hi_permille, .. } => require(
                        hi_permille <= 1000,
                        &format!("two_point hi_permille must be <= 1000, got {hi_permille}"),
                    ),
                }
            }
        }
    }
}

/// Deterministic crash-fault injection for a sweep: per trial,
/// `crashes` distinct nodes crash-stop at instants drawn uniformly inside
/// `window`, optionally recovering `recover` clock units later (see
/// [`ring_sim::fault`]). Serialized as a `"fault"` key that is emitted
/// only when present, so fault-free specs (and their sha pins and
/// checkpoint spec hashes) are byte-unchanged.
///
/// Fault-enabled sweeps force the scalar trial path (like timed
/// schedules do): per-trial fault plans diverge trials immediately, so
/// lockstep batching would never pay off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Distinct nodes to crash per trial (`1 ..= n-1`).
    pub crashes: u64,
    /// The crash-instant window: instants are drawn uniformly in
    /// `[0, bound)` on the window's clock ([`CrashInstant::Deliveries`]
    /// for the untimed paths, [`CrashInstant::VirtualNs`] for timed
    /// schedules).
    pub window: CrashInstant,
    /// Optional recovery delay after each crash, in the window's units.
    pub recover: Option<u64>,
}

impl FaultSpec {
    /// The engine-level [`FaultConfig`] this spec draws plans from.
    pub fn config(&self) -> FaultConfig {
        FaultConfig {
            crashes: self.crashes,
            window: self.window,
            recover_after: self.recover,
        }
    }

    fn to_json(self) -> String {
        let window = match self.window {
            CrashInstant::Deliveries(d) => format!("\"window_deliveries\":{d}"),
            CrashInstant::VirtualNs(t) => format!("\"window_ns\":{t}"),
        };
        let recover = match self.recover {
            None => String::new(),
            Some(r) => format!(",\"recover\":{r}"),
        };
        format!("{{\"crashes\":{},{window}{recover}}}", self.crashes)
    }

    fn parse(v: &Json) -> Result<Self, String> {
        let ctx = "fault";
        check_keys(
            v,
            &["crashes", "window_deliveries", "window_ns", "recover"],
            ctx,
        )?;
        let window = match (v.get("window_deliveries"), v.get("window_ns")) {
            (Some(_), Some(_)) => {
                return Err(
                    "fault: \"window_deliveries\" and \"window_ns\" are mutually exclusive"
                        .to_string(),
                );
            }
            (Some(_), None) => CrashInstant::Deliveries(req_u64(v, "window_deliveries", ctx)?),
            (None, Some(_)) => CrashInstant::VirtualNs(req_u64(v, "window_ns", ctx)?),
            (None, None) => {
                return Err("fault: missing \"window_deliveries\" or \"window_ns\"".to_string());
            }
        };
        let recover = match v.get("recover") {
            None => None,
            Some(_) => Some(req_u64(v, "recover", ctx)?),
        };
        Ok(FaultSpec {
            crashes: req_u64(v, "crashes", ctx)?,
            window,
            recover,
        })
    }

    fn validate(&self, n: usize, schedule: &ScheduleSpec) -> Result<(), String> {
        require(self.crashes >= 1, "fault crashes must be >= 1")?;
        require(
            self.crashes < n as u64,
            &format!(
                "fault crashes must leave at least one live node (crashes < n={n}), got {}",
                self.crashes
            ),
        )?;
        require(self.window.bound() >= 1, "fault window bound must be >= 1")?;
        // The window's clock must match the schedule's: crash instants
        // are compared against delivery counts on the fifo path and
        // against virtual time on the timed path.
        match (self.window.is_timed(), schedule) {
            (true, ScheduleSpec::Timed { .. }) | (false, ScheduleSpec::Fifo) => Ok(()),
            (true, _) => Err(
                "fault window_ns requires a timed schedule (use window_deliveries on fifo)"
                    .to_string(),
            ),
            (false, _) => Err(
                "fault window_deliveries requires the fifo schedule (use window_ns on timed)"
                    .to_string(),
            ),
        }
    }
}

/// Where the coalition sits on the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoalitionSpec {
    /// `k` adversaries at positions `(offset + i·n/k) mod n`.
    EquallySpaced {
        /// Coalition size.
        k: usize,
        /// Position of the first adversary.
        offset: usize,
    },
    /// `k` consecutive adversaries starting at `start`.
    Contiguous {
        /// Coalition size.
        k: usize,
        /// First position of the block.
        start: usize,
    },
    /// Exactly these ring positions.
    Explicit {
        /// The adversary positions.
        positions: Vec<usize>,
    },
    /// `k` positions drawn uniformly without replacement from a
    /// deterministic layout stream (for the randomly-located attack).
    RandomLocated {
        /// Coalition size.
        k: usize,
        /// Seed of the layout draw (independent of trial seeds).
        layout_seed: u64,
    },
    /// The cubic attack's own Theorem 4.3 geometric layout for the ring
    /// size at hand.
    Cubic,
    /// A single adversary (for the single-deviator attacks).
    Single {
        /// The adversary's position.
        position: usize,
    },
}

impl CoalitionSpec {
    /// Resolves the placement into concrete positions on a ring of `n`.
    ///
    /// # Errors
    ///
    /// A human-readable message when the layout cannot be built (empty,
    /// out-of-range positions, or a ring too small for the cubic plan).
    pub fn resolve(&self, n: usize) -> Result<Coalition, String> {
        let built = match self {
            CoalitionSpec::EquallySpaced { k, offset } => Coalition::equally_spaced(n, *k, *offset),
            CoalitionSpec::Contiguous { k, start } => Coalition::consecutive(n, *k, *start),
            CoalitionSpec::Explicit { positions } => Coalition::new(n, positions.clone()),
            CoalitionSpec::RandomLocated { k, layout_seed } => {
                Coalition::random_k(n, *k, *layout_seed)
            }
            CoalitionSpec::Cubic => {
                return cubic_distances(n)
                    .map(|plan| plan.coalition())
                    .map_err(|e| e.to_string());
            }
            CoalitionSpec::Single { position } => Coalition::new(n, vec![*position]),
        };
        built.map_err(|e| format!("coalition: {e}"))
    }

    fn to_json(&self) -> String {
        match self {
            CoalitionSpec::EquallySpaced { k, offset } => {
                format!("{{\"placement\":\"equally_spaced\",\"k\":{k},\"offset\":{offset}}}")
            }
            CoalitionSpec::Contiguous { k, start } => {
                format!("{{\"placement\":\"contiguous\",\"k\":{k},\"start\":{start}}}")
            }
            CoalitionSpec::Explicit { positions } => {
                let list = positions
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{{\"placement\":\"explicit\",\"positions\":[{list}]}}")
            }
            CoalitionSpec::RandomLocated { k, layout_seed } => {
                format!(
                    "{{\"placement\":\"random_located\",\"k\":{k},\"layout_seed\":{layout_seed}}}"
                )
            }
            CoalitionSpec::Cubic => "{\"placement\":\"cubic\"}".to_string(),
            CoalitionSpec::Single { position } => {
                format!("{{\"placement\":\"single\",\"position\":{position}}}")
            }
        }
    }

    fn parse(v: &Json) -> Result<Self, String> {
        let ctx = "coalition";
        match req_str(v, "placement", ctx)? {
            "equally_spaced" => {
                check_keys(v, &["placement", "k", "offset"], ctx)?;
                Ok(CoalitionSpec::EquallySpaced {
                    k: req_usize(v, "k", ctx)?,
                    offset: req_usize(v, "offset", ctx)?,
                })
            }
            "contiguous" => {
                check_keys(v, &["placement", "k", "start"], ctx)?;
                Ok(CoalitionSpec::Contiguous {
                    k: req_usize(v, "k", ctx)?,
                    start: req_usize(v, "start", ctx)?,
                })
            }
            "explicit" => {
                check_keys(v, &["placement", "positions"], ctx)?;
                let arr = req(v, "positions", ctx)?
                    .as_array()
                    .ok_or_else(|| "coalition: \"positions\" must be an array".to_string())?;
                let positions = arr
                    .iter()
                    .map(|p| {
                        p.as_usize()
                            .ok_or_else(|| "coalition: positions must be integers".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(CoalitionSpec::Explicit { positions })
            }
            "random_located" => {
                check_keys(v, &["placement", "k", "layout_seed"], ctx)?;
                Ok(CoalitionSpec::RandomLocated {
                    k: req_usize(v, "k", ctx)?,
                    layout_seed: req_u64(v, "layout_seed", ctx)?,
                })
            }
            "cubic" => {
                check_keys(v, &["placement"], ctx)?;
                Ok(CoalitionSpec::Cubic)
            }
            "single" => {
                check_keys(v, &["placement", "position"], ctx)?;
                Ok(CoalitionSpec::Single {
                    position: req_usize(v, "position", ctx)?,
                })
            }
            other => Err(format!(
                "unknown coalition placement \"{other}\" (expected equally_spaced | contiguous | \
                 explicit | random_located | cubic | single)"
            )),
        }
    }
}

/// The graph family a tree-dictator sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphSpec {
    /// A path on `n` vertices.
    Path(usize),
    /// A cycle on `n` vertices.
    Cycle(usize),
    /// The complete graph on `n` vertices.
    Complete(usize),
    /// A `rows × cols` grid.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A uniform random recursive tree.
    RandomTree {
        /// Vertex count.
        n: usize,
        /// Structure seed.
        seed: u64,
    },
    /// A random tree plus Bernoulli extra edges with probability
    /// `permille / 1000` (stored as an integer for lossless JSON).
    RandomConnected {
        /// Vertex count.
        n: usize,
        /// Edge probability in thousandths.
        permille: u32,
        /// Structure seed.
        seed: u64,
    },
    /// The paper's Figure 2 clique-chain (16 vertices) with its
    /// published partition.
    Figure2,
}

impl GraphSpec {
    /// The vertex count of the resolved graph.
    pub fn n(self) -> usize {
        match self {
            GraphSpec::Path(n) | GraphSpec::Cycle(n) | GraphSpec::Complete(n) => n,
            GraphSpec::Grid { rows, cols } => rows * cols,
            GraphSpec::RandomTree { n, .. } | GraphSpec::RandomConnected { n, .. } => n,
            GraphSpec::Figure2 => 16,
        }
    }

    /// Builds the graph and its Claim F.5 partition (Figure 2 uses its
    /// published partition instead).
    ///
    /// # Errors
    ///
    /// A message when the family parameters are out of range (e.g. a
    /// cycle on fewer than 3 vertices).
    pub fn resolve(self) -> Result<(Graph, TreePartition), String> {
        let graph = match self {
            GraphSpec::Path(n) => {
                require(n >= 2, "path graph needs n >= 2")?;
                Graph::path(n)
            }
            GraphSpec::Cycle(n) => {
                require(n >= 3, "cycle graph needs n >= 3")?;
                Graph::cycle(n)
            }
            GraphSpec::Complete(n) => {
                require(n >= 2, "complete graph needs n >= 2")?;
                Graph::complete(n)
            }
            GraphSpec::Grid { rows, cols } => {
                require(rows >= 1 && cols >= 1, "grid dimensions must be positive")?;
                require(rows * cols >= 2, "grid needs at least 2 vertices")?;
                Graph::grid(rows, cols)
            }
            GraphSpec::RandomTree { n, seed } => {
                require(n >= 2, "random tree needs n >= 2")?;
                Graph::random_tree(n, seed)
            }
            GraphSpec::RandomConnected { n, permille, seed } => {
                require(n >= 2, "random connected graph needs n >= 2")?;
                require(permille <= 1000, "edge permille must be <= 1000")?;
                Graph::random_connected(n, f64::from(permille) / 1000.0, seed)
            }
            GraphSpec::Figure2 => return Ok(figure2_graph()),
        };
        let partition = TreePartition::claim_f5(&graph);
        Ok((graph, partition))
    }

    /// A short display name for report labels (e.g. `"grid3x4"`).
    pub fn label(self) -> String {
        match self {
            GraphSpec::Path(n) => format!("path{n}"),
            GraphSpec::Cycle(n) => format!("cycle{n}"),
            GraphSpec::Complete(n) => format!("complete{n}"),
            GraphSpec::Grid { rows, cols } => format!("grid{rows}x{cols}"),
            GraphSpec::RandomTree { n, seed } => format!("rtree{n}s{seed}"),
            GraphSpec::RandomConnected { n, permille, seed } => {
                format!("gnp{n}p{permille}s{seed}")
            }
            GraphSpec::Figure2 => "figure2".to_string(),
        }
    }

    fn to_json(self) -> String {
        match self {
            GraphSpec::Path(n) => format!("{{\"family\":\"path\",\"n\":{n}}}"),
            GraphSpec::Cycle(n) => format!("{{\"family\":\"cycle\",\"n\":{n}}}"),
            GraphSpec::Complete(n) => format!("{{\"family\":\"complete\",\"n\":{n}}}"),
            GraphSpec::Grid { rows, cols } => {
                format!("{{\"family\":\"grid\",\"rows\":{rows},\"cols\":{cols}}}")
            }
            GraphSpec::RandomTree { n, seed } => {
                format!("{{\"family\":\"random_tree\",\"n\":{n},\"seed\":{seed}}}")
            }
            GraphSpec::RandomConnected { n, permille, seed } => format!(
                "{{\"family\":\"random_connected\",\"n\":{n},\"permille\":{permille},\"seed\":{seed}}}"
            ),
            GraphSpec::Figure2 => "{\"family\":\"figure2\"}".to_string(),
        }
    }

    fn parse(v: &Json) -> Result<Self, String> {
        let ctx = "graph";
        match req_str(v, "family", ctx)? {
            "path" => {
                check_keys(v, &["family", "n"], ctx)?;
                Ok(GraphSpec::Path(req_usize(v, "n", ctx)?))
            }
            "cycle" => {
                check_keys(v, &["family", "n"], ctx)?;
                Ok(GraphSpec::Cycle(req_usize(v, "n", ctx)?))
            }
            "complete" => {
                check_keys(v, &["family", "n"], ctx)?;
                Ok(GraphSpec::Complete(req_usize(v, "n", ctx)?))
            }
            "grid" => {
                check_keys(v, &["family", "rows", "cols"], ctx)?;
                Ok(GraphSpec::Grid {
                    rows: req_usize(v, "rows", ctx)?,
                    cols: req_usize(v, "cols", ctx)?,
                })
            }
            "random_tree" => {
                check_keys(v, &["family", "n", "seed"], ctx)?;
                Ok(GraphSpec::RandomTree {
                    n: req_usize(v, "n", ctx)?,
                    seed: req_u64(v, "seed", ctx)?,
                })
            }
            "random_connected" => {
                check_keys(v, &["family", "n", "permille", "seed"], ctx)?;
                let permille = req_u64(v, "permille", ctx)?;
                let permille = u32::try_from(permille)
                    .map_err(|_| "graph: \"permille\" out of range".to_string())?;
                Ok(GraphSpec::RandomConnected {
                    n: req_usize(v, "n", ctx)?,
                    permille,
                    seed: req_u64(v, "seed", ctx)?,
                })
            }
            "figure2" => {
                check_keys(v, &["family"], ctx)?;
                Ok(GraphSpec::Figure2)
            }
            other => Err(format!(
                "unknown graph family \"{other}\" (expected path | cycle | complete | grid | \
                 random_tree | random_connected | figure2)"
            )),
        }
    }
}

/// An adversarial grid: one attack, one coalition layout, many seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSweep {
    /// Which attack to mount.
    pub attack: AttackKind,
    /// Ring size.
    pub n: usize,
    /// Random-function key policy (phase protocols only).
    pub fn_key: FnKeySpec,
    /// Trials / base seed / threads.
    pub batch: BatchConfig,
    /// Coalition layout.
    pub coalition: CoalitionSpec,
    /// Target policy.
    pub target: TargetSpec,
    /// Protocol seed stream.
    pub seed_mode: SeedMode,
    /// Delivery discipline (FIFO fast path or timed network).
    pub schedule: ScheduleSpec,
    /// Optional crash-fault injection (forces the scalar trial path).
    pub fault: Option<FaultSpec>,
}

/// A tree-dictator grid (Theorem 7.2's simulated-tree protocol): the
/// dictator coalition forces `target` on every graph trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSweep {
    /// Graph family to elect on.
    pub graph: GraphSpec,
    /// Trials / base seed / threads.
    pub batch: BatchConfig,
    /// Forced-winner policy.
    pub target: TargetSpec,
    /// Protocol seed stream.
    pub seed_mode: SeedMode,
}

/// Any sweep the harness can run: an honest grid, an attack grid or a
/// tree-dictator grid. Dispatch with [`run_sweep`](crate::run_sweep).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Honest executions of a ring protocol.
    Honest(HonestSweep),
    /// Adversarial executions of a ring attack.
    Attack(AttackSweep),
    /// Dictator executions of the simulated-tree protocol.
    TreeDictator(TreeSweep),
}

impl From<HonestSweep> for SweepSpec {
    fn from(cfg: HonestSweep) -> Self {
        SweepSpec::Honest(cfg)
    }
}

impl From<AttackSweep> for SweepSpec {
    fn from(cfg: AttackSweep) -> Self {
        SweepSpec::Attack(cfg)
    }
}

impl From<TreeSweep> for SweepSpec {
    fn from(cfg: TreeSweep) -> Self {
        SweepSpec::TreeDictator(cfg)
    }
}

impl SweepSpec {
    /// The batch shape (trials / base seed / threads) of any sweep kind —
    /// the trial index space that sharding and checkpointing partition.
    pub fn batch(&self) -> &BatchConfig {
        match self {
            SweepSpec::Honest(h) => &h.batch,
            SweepSpec::Attack(a) => &a.batch,
            SweepSpec::TreeDictator(t) => &t.batch,
        }
    }

    /// Serializes to the canonical single-line JSON encoding (fixed
    /// field order; parses back to an equal spec).
    pub fn to_json(&self) -> String {
        match self {
            SweepSpec::Honest(h) => {
                let schedule = match h.schedule {
                    ScheduleSpec::Fifo => String::new(),
                    s => format!(",\"schedule\":{}", s.to_json()),
                };
                // `batch_width: 0` (the default) is omitted so specs
                // written before lockstep batching round-trip byte-identically.
                let batch_width = match h.batch_width {
                    0 => String::new(),
                    w => format!(",\"batch_width\":{w}"),
                };
                // Likewise `fault`: emitted only when set, so every
                // fault-free sha pin and checkpoint spec-hash is unchanged.
                let fault = match h.fault {
                    None => String::new(),
                    Some(f) => format!(",\"fault\":{}", f.to_json()),
                };
                format!(
                    "{{\"sweep\":\"honest\",\"protocol\":\"{}\",\"n\":{},\"fn_key\":{},\
                     \"trials\":{},\"base_seed\":{},\"threads\":{}{batch_width}{schedule}{fault}}}",
                    protocol_key(h.protocol),
                    h.n,
                    h.fn_key,
                    h.batch.trials,
                    h.batch.base_seed,
                    h.batch.threads
                )
            }
            SweepSpec::Attack(a) => {
                let schedule = match a.schedule {
                    ScheduleSpec::Fifo => String::new(),
                    s => format!(",\"schedule\":{}", s.to_json()),
                };
                let fault = match a.fault {
                    None => String::new(),
                    Some(f) => format!(",\"fault\":{}", f.to_json()),
                };
                format!(
                    "{{\"sweep\":\"attack\",\"attack\":\"{}\",\"n\":{},\"trials\":{},\
                     \"base_seed\":{},\"threads\":{},\"fn_key\":{},\"coalition\":{},\
                     \"target\":{},\"seed_mode\":\"{}\"{schedule}{fault}}}",
                    a.attack.name(),
                    a.n,
                    a.batch.trials,
                    a.batch.base_seed,
                    a.batch.threads,
                    a.fn_key.to_json(),
                    a.coalition.to_json(),
                    a.target.to_json(),
                    a.seed_mode.name()
                )
            }
            SweepSpec::TreeDictator(t) => format!(
                "{{\"sweep\":\"tree_dictator\",\"graph\":{},\"trials\":{},\"base_seed\":{},\
                 \"threads\":{},\"target\":{},\"seed_mode\":\"{}\"}}",
                t.graph.to_json(),
                t.batch.trials,
                t.batch.base_seed,
                t.batch.threads,
                t.target.to_json(),
                t.seed_mode.name()
            ),
        }
    }

    /// Parses the JSON encoding produced by [`SweepSpec::to_json`]
    /// (field order is free; unknown fields are rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn parse_json(src: &str) -> Result<Self, String> {
        let v = Json::parse(src)?;
        let kind = req_str(&v, "sweep", "spec")?;
        match kind {
            "honest" => {
                check_keys(
                    &v,
                    &[
                        "sweep",
                        "protocol",
                        "n",
                        "fn_key",
                        "trials",
                        "base_seed",
                        "threads",
                        "batch_width",
                        "schedule",
                        "fault",
                    ],
                    "honest sweep",
                )?;
                let protocol: ProtocolKind = req_str(&v, "protocol", "honest sweep")?.parse()?;
                let batch_width = opt_u64(&v, "batch_width", 0)? as usize;
                if batch_width > MAX_BATCH_WIDTH {
                    return Err(format!(
                        "honest sweep: \"batch_width\" must be at most {MAX_BATCH_WIDTH}"
                    ));
                }
                Ok(SweepSpec::Honest(HonestSweep {
                    protocol,
                    n: req_usize(&v, "n", "honest sweep")?,
                    fn_key: opt_u64(&v, "fn_key", 0)?,
                    batch: parse_batch(&v)?,
                    batch_width,
                    schedule: parse_schedule(&v)?,
                    fault: parse_fault(&v)?,
                }))
            }
            "attack" => {
                check_keys(
                    &v,
                    &[
                        "sweep",
                        "attack",
                        "n",
                        "trials",
                        "base_seed",
                        "threads",
                        "fn_key",
                        "coalition",
                        "target",
                        "seed_mode",
                        "schedule",
                        "fault",
                    ],
                    "attack sweep",
                )?;
                let attack: AttackKind = req_str(&v, "attack", "attack sweep")?.parse()?;
                let fn_key = match v.get("fn_key") {
                    Some(obj) => FnKeySpec::parse(obj)?,
                    None => FnKeySpec::Fixed(0),
                };
                let target = match v.get("target") {
                    Some(obj) => TargetSpec::parse(obj)?,
                    None => TargetSpec::Fixed(0),
                };
                let seed_mode = match v.get("seed_mode") {
                    Some(s) => SeedMode::parse(
                        s.as_str()
                            .ok_or_else(|| "seed_mode must be a string".to_string())?,
                    )?,
                    None => SeedMode::Derived,
                };
                Ok(SweepSpec::Attack(AttackSweep {
                    attack,
                    n: req_usize(&v, "n", "attack sweep")?,
                    fn_key,
                    batch: parse_batch(&v)?,
                    coalition: CoalitionSpec::parse(req(&v, "coalition", "attack sweep")?)?,
                    target,
                    seed_mode,
                    schedule: parse_schedule(&v)?,
                    fault: parse_fault(&v)?,
                }))
            }
            "tree_dictator" => {
                check_keys(
                    &v,
                    &[
                        "sweep",
                        "graph",
                        "trials",
                        "base_seed",
                        "threads",
                        "target",
                        "seed_mode",
                    ],
                    "tree sweep",
                )?;
                let target = match v.get("target") {
                    Some(obj) => TargetSpec::parse(obj)?,
                    None => TargetSpec::Fixed(0),
                };
                let seed_mode = match v.get("seed_mode") {
                    Some(s) => SeedMode::parse(
                        s.as_str()
                            .ok_or_else(|| "seed_mode must be a string".to_string())?,
                    )?,
                    None => SeedMode::Derived,
                };
                Ok(SweepSpec::TreeDictator(TreeSweep {
                    graph: GraphSpec::parse(req(&v, "graph", "tree sweep")?)?,
                    batch: parse_batch(&v)?,
                    target,
                    seed_mode,
                }))
            }
            other => Err(format!(
                "unknown sweep kind \"{other}\" (expected \"honest\" | \"attack\" | \
                 \"tree_dictator\")"
            )),
        }
    }

    /// Cross-checks every reference in the spec without running trials:
    /// ring sizes against protocol minimums, coalition layouts against
    /// attack preconditions, targets against their ranges.
    ///
    /// # Errors
    ///
    /// An actionable message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SweepSpec::Honest(h) => {
                let min = match h.protocol {
                    ProtocolKind::BasicLead | ProtocolKind::ALeadUni => 2,
                    ProtocolKind::PhaseAsyncLead | ProtocolKind::PhaseSumLead => 4,
                };
                require(
                    h.n >= min,
                    &format!("{} needs n >= {min}, got n={}", h.protocol.name(), h.n),
                )?;
                require(h.batch.trials >= 1, "trials must be >= 1")?;
                h.schedule.validate()?;
                if let Some(f) = &h.fault {
                    f.validate(h.n, &h.schedule)?;
                }
                Ok(())
            }
            SweepSpec::Attack(a) => {
                let min = if a.attack.uses_fn_key() { 4 } else { 2 };
                require(
                    a.n >= min,
                    &format!(
                        "{} needs n >= {min}, got n={}",
                        a.attack.protocol_name(),
                        a.n
                    ),
                )?;
                require(a.batch.trials >= 1, "trials must be >= 1")?;
                a.schedule.validate()?;
                if let Some(f) = &a.fault {
                    f.validate(a.n, &a.schedule)?;
                }
                let coalition = a.coalition.resolve(a.n)?;
                // Reuse the runner layer's layout checks (single-position
                // attacks, the cubic geometric layout, ...).
                build_runner(a.attack, a.n, &coalition).map_err(|e| e.to_string())?;
                if let TargetSpec::Fixed(v) = a.target {
                    match a.attack {
                        AttackKind::WakeupMask => require(
                            (v as usize) < coalition.k(),
                            &format!(
                                "wakeup_mask target is a coalition member index; {v} out of \
                                 range for k={}",
                                coalition.k()
                            ),
                        )?,
                        AttackKind::PhaseGuess | AttackKind::WakeupIdLie => {}
                        _ => require(
                            v < a.n as u64,
                            &format!("target {v} out of range for n={}", a.n),
                        )?,
                    }
                }
                Ok(())
            }
            SweepSpec::TreeDictator(t) => {
                require(t.batch.trials >= 1, "trials must be >= 1")?;
                t.graph.resolve()?;
                if let TargetSpec::Fixed(v) = t.target {
                    require(
                        v < t.graph.n() as u64,
                        &format!("target {v} out of range for graph n={}", t.graph.n()),
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// The short spelling of a protocol accepted by [`ProtocolKind`]'s
/// `FromStr` (used in spec files, as opposed to the display name).
pub fn protocol_key(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::BasicLead => "basic",
        ProtocolKind::ALeadUni => "alead",
        ProtocolKind::PhaseAsyncLead => "phase",
        ProtocolKind::PhaseSumLead => "phasesum",
    }
}

fn parse_schedule(v: &Json) -> Result<ScheduleSpec, String> {
    match v.get("schedule") {
        None => Ok(ScheduleSpec::Fifo),
        Some(obj) => ScheduleSpec::parse(obj),
    }
}

fn parse_fault(v: &Json) -> Result<Option<FaultSpec>, String> {
    match v.get("fault") {
        None => Ok(None),
        Some(obj) => FaultSpec::parse(obj).map(Some),
    }
}

fn parse_batch(v: &Json) -> Result<BatchConfig, String> {
    Ok(BatchConfig {
        trials: req_u64(v, "trials", "spec")?,
        base_seed: opt_u64(v, "base_seed", 0)?,
        threads: usize::try_from(opt_u64(v, "threads", 0)?)
            .map_err(|_| "\"threads\" out of range".to_string())?,
    })
}

pub(crate) fn require(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

pub(crate) fn check_keys(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), String> {
    let members = v
        .as_object()
        .ok_or_else(|| format!("{ctx} must be a JSON object"))?;
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown field \"{key}\" in {ctx} (expected one of: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

pub(crate) fn req<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing required field \"{key}\""))
}

pub(crate) fn req_str<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    req(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a string"))
}

pub(crate) fn req_u64(v: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    req(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a non-negative integer"))
}

pub(crate) fn req_usize(v: &Json, key: &str, ctx: &str) -> Result<usize, String> {
    req(v, key, ctx)?
        .as_usize()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a non-negative integer"))
}

pub(crate) fn opt_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rushing_spec() -> SweepSpec {
        SweepSpec::Attack(AttackSweep {
            attack: AttackKind::Rushing,
            n: 16,
            fn_key: FnKeySpec::Fixed(9),
            batch: BatchConfig {
                trials: 500,
                base_seed: 1,
                threads: 0,
            },
            coalition: CoalitionSpec::EquallySpaced { k: 4, offset: 1 },
            target: TargetSpec::Fixed(3),
            seed_mode: SeedMode::Derived,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        })
    }

    #[test]
    fn attack_spec_round_trips_through_json() {
        let spec = rushing_spec();
        let json = spec.to_json();
        let parsed = SweepSpec::parse_json(&json).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json(), json);
        spec.validate().unwrap();
    }

    #[test]
    fn honest_and_tree_specs_round_trip() {
        let honest = SweepSpec::Honest(HonestSweep {
            protocol: ProtocolKind::PhaseAsyncLead,
            n: 64,
            fn_key: 9,
            batch: BatchConfig {
                trials: 500,
                base_seed: 1,
                threads: 0,
            },
            batch_width: 0,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        });
        let tree = SweepSpec::TreeDictator(TreeSweep {
            graph: GraphSpec::Grid { rows: 3, cols: 4 },
            batch: BatchConfig {
                trials: 64,
                base_seed: 0,
                threads: 0,
            },
            target: TargetSpec::SeedProduct { multiplier: 5 },
            seed_mode: SeedMode::RawIndex,
        });
        for spec in [honest, tree] {
            let json = spec.to_json();
            assert_eq!(SweepSpec::parse_json(&json).unwrap(), spec);
            spec.validate().unwrap();
        }
    }

    #[test]
    fn fifo_specs_serialize_without_a_schedule_key() {
        // The default schedule is omitted from the encoding so existing
        // pinned spec files (and their shas) are unchanged.
        assert!(!rushing_spec().to_json().contains("schedule"));
    }

    #[test]
    fn timed_specs_round_trip_through_json() {
        let mut timed = rushing_spec();
        let SweepSpec::Attack(ref mut a) = timed else {
            unreachable!()
        };
        a.schedule = ScheduleSpec::Timed {
            latency: LatencySpec::TwoPoint {
                lo: 10,
                hi: 1000,
                hi_permille: 100,
            },
            loss_permille: 25,
            dup_permille: 5,
        };
        let json = timed.to_json();
        assert!(json.contains("\"schedule\":{\"mode\":\"timed\""), "{json}");
        let parsed = SweepSpec::parse_json(&json).unwrap();
        assert_eq!(parsed, timed);
        assert_eq!(parsed.to_json(), json);
        timed.validate().unwrap();

        let honest = SweepSpec::Honest(HonestSweep {
            protocol: ProtocolKind::PhaseAsyncLead,
            n: 16,
            fn_key: 7,
            batch: BatchConfig {
                trials: 10,
                base_seed: 0,
                threads: 0,
            },
            batch_width: 0,
            schedule: ScheduleSpec::Timed {
                latency: LatencySpec::Uniform { lo: 0, hi: 50 },
                loss_permille: 0,
                dup_permille: 0,
            },
            fault: None,
        });
        let json = honest.to_json();
        assert_eq!(SweepSpec::parse_json(&json).unwrap(), honest);
        honest.validate().unwrap();
    }

    #[test]
    fn schedule_validation_names_the_violated_constraint() {
        let base = |schedule| {
            SweepSpec::Honest(HonestSweep {
                protocol: ProtocolKind::BasicLead,
                n: 8,
                fn_key: 0,
                batch: BatchConfig {
                    trials: 1,
                    base_seed: 0,
                    threads: 0,
                },
                batch_width: 0,
                schedule,
                fault: None,
            })
        };
        let err = base(ScheduleSpec::Timed {
            latency: LatencySpec::ZERO,
            loss_permille: 1001,
            dup_permille: 0,
        })
        .validate()
        .unwrap_err();
        assert!(err.contains("loss_permille must be <= 1000"), "{err}");

        let err = base(ScheduleSpec::Timed {
            latency: LatencySpec::Uniform { lo: 9, hi: 9 },
            loss_permille: 0,
            dup_permille: 0,
        })
        .validate()
        .unwrap_err();
        assert!(err.contains("uniform latency needs hi > lo"), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_and_missing_fields() {
        let err = SweepSpec::parse_json(r#"{"sweep":"attack","n":16,"trials":5}"#).unwrap_err();
        assert!(err.contains("missing required field \"attack\""), "{err}");

        let err = SweepSpec::parse_json(
            r#"{"sweep":"honest","protocol":"phase","n":8,"trials":5,"bogus":1}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown field \"bogus\""), "{err}");

        let err = SweepSpec::parse_json(r#"{"sweep":"picnic"}"#).unwrap_err();
        assert!(err.contains("unknown sweep kind"), "{err}");
    }

    #[test]
    fn validate_names_the_violated_constraint() {
        let SweepSpec::Attack(mut a) = rushing_spec() else {
            unreachable!()
        };
        a.target = TargetSpec::Fixed(99);
        let err = SweepSpec::Attack(a.clone()).validate().unwrap_err();
        assert!(err.contains("target 99 out of range"), "{err}");

        a.target = TargetSpec::Fixed(3);
        a.coalition = CoalitionSpec::Explicit {
            positions: vec![99],
        };
        let err = SweepSpec::Attack(a.clone()).validate().unwrap_err();
        assert!(err.contains("coalition"), "{err}");

        a.coalition = CoalitionSpec::EquallySpaced { k: 2, offset: 1 };
        a.attack = AttackKind::BasicSingle;
        let err = SweepSpec::Attack(a).validate().unwrap_err();
        assert!(err.contains("single adversary"), "{err}");
    }

    #[test]
    fn coalition_placements_resolve_deterministically() {
        let spec = CoalitionSpec::RandomLocated {
            k: 5,
            layout_seed: 7,
        };
        let a = spec.resolve(32).unwrap();
        let b = spec.resolve(32).unwrap();
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.k(), 5);

        let cubic = CoalitionSpec::Cubic.resolve(64).unwrap();
        assert_eq!(
            cubic.positions(),
            fle_attacks::cubic_distances(64)
                .unwrap()
                .coalition()
                .positions()
        );
    }
}
