//! Mergeable partial reports over contiguous trial ranges.
//!
//! A [`ReportPartial`] is the resumable/shardable form of a
//! [`TrialReport`]: it aggregates any subset of a sweep's trial index
//! space as a union of disjoint ranges, carries **exact** message/step
//! histograms (counts keyed by value) instead of pre-reduced
//! [`MetricSummary`]s, and folds with an associative, commutative
//! [`ReportPartial::merge`]. Once the union covers the whole index space,
//! [`ReportPartial::finish`] reduces the histograms to the same nearest-rank
//! percentiles and `u128`-exact mean that [`TrialReport::from_trials`]
//! computes — so a sweep split across shards, checkpoints, or crash/resume
//! cycles serializes byte-identically to the monolithic run.

use std::collections::BTreeMap;

use crate::batch::TrialFault;
use crate::json::Json;
use crate::report::{
    AttackSummary, FailCounts, FaultSummary, MetricSummary, TrialOutcome, TrialReport,
};
use crate::spec::{check_keys, opt_u64, req, req_str, req_u64, req_usize, require};
use ring_sim::Outcome;

/// Format marker every serialized partial carries.
pub const PARTIAL_FORMAT: &str = "fle-report-partial";
/// Version of the partial-report JSON schema.
pub const PARTIAL_VERSION: u64 = 1;

/// Mergeable aggregate of a subset of one sweep's trials.
///
/// Construct with [`ReportPartial::new_honest`] /
/// [`ReportPartial::new_attack`], feed trials with the `record*` methods
/// (each trial index may be recorded exactly once across all partials of
/// a sweep), combine shards with [`merge`](ReportPartial::merge), and
/// reduce with [`finish`](ReportPartial::finish) once coverage is
/// complete.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportPartial {
    protocol: String,
    n: usize,
    base_seed: u64,
    trials_total: u64,
    attack: bool,
    /// Whether the sweep injects crash faults: set by
    /// [`with_faults`](ReportPartial::with_faults), carried through merge
    /// and serialization so the finished report grows a fault arm.
    faulty: bool,
    /// Trials in which at least one planned crash fired (fault-enabled
    /// sweeps only).
    crashed: u64,
    /// Sorted, disjoint, coalesced half-open `[lo, hi)` index ranges.
    ranges: Vec<(u64, u64)>,
    wins: Vec<u64>,
    out_of_range: u64,
    fails: FailCounts,
    successes: u64,
    infeasible: u64,
    /// Exact histogram: message count -> number of trials with it.
    messages: BTreeMap<u64, u64>,
    /// Exact histogram: step count -> number of trials with it.
    steps: BTreeMap<u64, u64>,
    /// Contained trial panics, sorted by index.
    faults: Vec<TrialFault>,
}

impl ReportPartial {
    fn new(protocol: &str, n: usize, base_seed: u64, trials_total: u64, attack: bool) -> Self {
        Self {
            protocol: protocol.to_string(),
            n,
            base_seed,
            trials_total,
            attack,
            faulty: false,
            crashed: 0,
            ranges: Vec::new(),
            wins: vec![0; n],
            out_of_range: 0,
            fails: FailCounts::default(),
            successes: 0,
            infeasible: 0,
            messages: BTreeMap::new(),
            steps: BTreeMap::new(),
            faults: Vec::new(),
        }
    }

    /// An empty partial for an honest sweep of `trials_total` trials.
    pub fn new_honest(protocol: &str, n: usize, base_seed: u64, trials_total: u64) -> Self {
        Self::new(protocol, n, base_seed, trials_total, false)
    }

    /// An empty partial for an attack sweep of `trials_total` trials.
    pub fn new_attack(protocol: &str, n: usize, base_seed: u64, trials_total: u64) -> Self {
        Self::new(protocol, n, base_seed, trials_total, true)
    }

    /// Marks this partial as aggregating a fault-enabled sweep: trials are
    /// fed through [`record_faulty`](ReportPartial::record_faulty) /
    /// [`record_attack_faulty`](ReportPartial::record_attack_faulty) and
    /// the finished report carries a [`FaultSummary`] arm. Fault-enabled
    /// and fault-free partials never merge.
    pub fn with_faults(mut self) -> Self {
        self.faulty = true;
        self
    }

    /// Whether this partial aggregates attack trials.
    pub fn is_attack(&self) -> bool {
        self.attack
    }

    /// Whether this partial aggregates a fault-enabled sweep.
    pub fn is_faulty(&self) -> bool {
        self.faulty
    }

    /// The protocol (or `protocol:attack`) label.
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// The ring/graph size the sweep runs on.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The full sweep's trial count this partial is a piece of.
    pub fn trials_total(&self) -> u64 {
        self.trials_total
    }

    /// The covered index ranges (sorted, disjoint, half-open).
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Number of trial indices covered so far (recorded + faulted).
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// Contained trial faults recorded so far, sorted by index.
    pub fn faults(&self) -> &[TrialFault] {
        &self.faults
    }

    /// Marks `index` covered, keeping `ranges` sorted and coalesced.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or already covered — both are
    /// caller bugs (each trial runs exactly once).
    fn note_index(&mut self, index: u64) {
        assert!(
            index < self.trials_total,
            "trial index {index} out of bounds for {} trials",
            self.trials_total
        );
        // Position of the first range starting after `index`.
        let at = self.ranges.partition_point(|&(lo, _)| lo <= index);
        let touches_next = at < self.ranges.len() && self.ranges[at].0 == index + 1;
        if at > 0 {
            let (lo, hi) = self.ranges[at - 1];
            assert!(
                index >= hi,
                "trial index {index} already covered [{lo},{hi})"
            );
            if hi == index {
                self.ranges[at - 1].1 = index + 1;
                if touches_next {
                    self.ranges[at - 1].1 = self.ranges[at].1;
                    self.ranges.remove(at);
                }
                return;
            }
        }
        if touches_next {
            self.ranges[at].0 = index;
        } else {
            self.ranges.insert(at, (index, index + 1));
        }
    }

    fn record_outcome(&mut self, t: &TrialOutcome) {
        match t.outcome {
            Outcome::Elected(v) if (v as usize) < self.n => self.wins[v as usize] += 1,
            Outcome::Elected(_) => self.out_of_range += 1,
            Outcome::Fail(r) => self.fails.record(r),
        }
        *self.messages.entry(t.messages).or_insert(0) += 1;
        *self.steps.entry(t.steps).or_insert(0) += 1;
    }

    /// Records one honest trial at global `index`.
    ///
    /// # Panics
    ///
    /// Panics on an attack partial, an out-of-bounds index, or a
    /// double-recorded index.
    pub fn record(&mut self, index: u64, outcome: TrialOutcome) {
        assert!(!self.attack, "honest trial recorded into an attack partial");
        self.note_index(index);
        self.record_outcome(&outcome);
    }

    /// Records one attack trial at global `index`: `outcome = None` marks
    /// an infeasible trial (no execution statistics), `success` whether the
    /// attack achieved its goal.
    ///
    /// # Panics
    ///
    /// Panics on an honest partial, an out-of-bounds index, or a
    /// double-recorded index.
    pub fn record_attack(&mut self, index: u64, outcome: Option<TrialOutcome>, success: bool) {
        assert!(self.attack, "attack trial recorded into an honest partial");
        self.note_index(index);
        if success {
            self.successes += 1;
        }
        match outcome {
            Some(t) => self.record_outcome(&t),
            None => self.infeasible += 1,
        }
    }

    /// Records one honest trial of a fault-enabled sweep at global
    /// `index`: `crashed` says whether at least one planned crash fired
    /// during the trial.
    ///
    /// # Panics
    ///
    /// Panics on a non-fault-enabled or attack partial, an out-of-bounds
    /// index, or a double-recorded index.
    pub fn record_faulty(&mut self, index: u64, outcome: TrialOutcome, crashed: bool) {
        assert!(
            self.faulty,
            "faulty trial recorded into a fault-free partial"
        );
        self.record(index, outcome);
        if crashed {
            self.crashed += 1;
        }
    }

    /// Records one attack trial of a fault-enabled sweep at global
    /// `index` (see [`record_attack`](ReportPartial::record_attack);
    /// `crashed` as in [`record_faulty`](ReportPartial::record_faulty)).
    ///
    /// # Panics
    ///
    /// Panics on a non-fault-enabled or honest partial, an out-of-bounds
    /// index, or a double-recorded index.
    pub fn record_attack_faulty(
        &mut self,
        index: u64,
        outcome: Option<TrialOutcome>,
        success: bool,
        crashed: bool,
    ) {
        assert!(
            self.faulty,
            "faulty trial recorded into a fault-free partial"
        );
        self.record_attack(index, outcome, success);
        if crashed {
            self.crashed += 1;
        }
    }

    /// Records a contained trial panic: its index is consumed (covered)
    /// but contributes to no statistic except the fault list.
    pub fn record_fault(&mut self, fault: TrialFault) {
        self.note_index(fault.index);
        let at = self.faults.partition_point(|f| f.index <= fault.index);
        self.faults.insert(at, fault);
    }

    /// Folds `other` (a disjoint piece of the same sweep) into `self`.
    ///
    /// Associative and commutative: any merge tree over the same set of
    /// pieces yields the same partial, so shards may arrive in any order.
    ///
    /// # Errors
    ///
    /// If the sweeps differ (protocol/n/base_seed/trials_total/kind) or
    /// the covered ranges overlap.
    pub fn merge(&mut self, other: &ReportPartial) -> Result<(), String> {
        require(
            self.protocol == other.protocol
                && self.n == other.n
                && self.base_seed == other.base_seed
                && self.trials_total == other.trials_total
                && self.attack == other.attack
                && self.faulty == other.faulty,
            &format!(
                "partials describe different sweeps: \
                 ({}, n={}, base_seed={}, trials={}, attack={}, faulty={}) vs \
                 ({}, n={}, base_seed={}, trials={}, attack={}, faulty={})",
                self.protocol,
                self.n,
                self.base_seed,
                self.trials_total,
                self.attack,
                self.faulty,
                other.protocol,
                other.n,
                other.base_seed,
                other.trials_total,
                other.attack,
                other.faulty
            ),
        )?;
        let mut ranges: Vec<(u64, u64)> =
            Vec::with_capacity(self.ranges.len() + other.ranges.len());
        ranges.extend_from_slice(&self.ranges);
        ranges.extend_from_slice(&other.ranges);
        ranges.sort_unstable();
        let mut coalesced: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            if let Some(last) = coalesced.last_mut() {
                if lo < last.1 {
                    return Err(format!(
                        "overlapping trial ranges [{},{}) and [{lo},{hi})",
                        last.0, last.1
                    ));
                }
                if lo == last.1 {
                    last.1 = hi;
                    continue;
                }
            }
            coalesced.push((lo, hi));
        }
        self.ranges = coalesced;
        for (w, o) in self.wins.iter_mut().zip(&other.wins) {
            *w += o;
        }
        self.out_of_range += other.out_of_range;
        self.fails.abort += other.fails.abort;
        self.fails.disagreement += other.fails.disagreement;
        self.fails.deadlock += other.fails.deadlock;
        self.fails.step_limit += other.fails.step_limit;
        self.fails.crash_partition += other.fails.crash_partition;
        self.crashed += other.crashed;
        self.successes += other.successes;
        self.infeasible += other.infeasible;
        for (&v, &c) in &other.messages {
            *self.messages.entry(v).or_insert(0) += c;
        }
        for (&v, &c) in &other.steps {
            *self.steps.entry(v).or_insert(0) += c;
        }
        self.faults.extend(other.faults.iter().cloned());
        self.faults.sort_by_key(|f| f.index);
        Ok(())
    }

    /// Where a checkpointed run of the range starting at `start` resumes:
    /// the end of the single covered prefix beginning there.
    ///
    /// # Errors
    ///
    /// If coverage is not empty and not one contiguous range starting at
    /// `start` (e.g. shard files were merged in).
    pub fn resume_point(&self, start: u64) -> Result<u64, String> {
        match self.ranges.as_slice() {
            [] => Ok(start),
            [(lo, hi)] if *lo == start => Ok(*hi),
            _ => Err(format!(
                "partial coverage is not a contiguous prefix from {start}: {:?}",
                self.ranges
            )),
        }
    }

    /// Reduces a fully-covered partial to the [`TrialReport`] the
    /// monolithic run would have produced (byte-identical serialization
    /// when no trial faulted; faulted trials are excluded from `trials`
    /// and listed in [`TrialReport::faults`]).
    ///
    /// # Errors
    ///
    /// If coverage is incomplete (names the covered/total counts).
    pub fn finish(&self) -> Result<TrialReport, String> {
        let complete = match self.trials_total {
            0 => self.ranges.is_empty(),
            t => self.ranges.as_slice() == [(0, t)],
        };
        require(
            complete,
            &format!(
                "partial covers {} of {} trials in {} range(s); merge the missing shards before \
                 finishing",
                self.covered(),
                self.trials_total,
                self.ranges.len()
            ),
        )?;
        Ok(TrialReport {
            protocol: self.protocol.clone(),
            n: self.n,
            trials: self.trials_total - self.faults.len() as u64,
            base_seed: self.base_seed,
            wins: self.wins.clone(),
            out_of_range: self.out_of_range,
            fails: self.fails,
            messages: summary_of_histogram(&self.messages),
            steps: summary_of_histogram(&self.steps),
            attack: self.attack.then_some(AttackSummary {
                successes: self.successes,
                infeasible: self.infeasible,
            }),
            fault: self.faulty.then_some(FaultSummary {
                crashed_trials: self.crashed,
            }),
            faults: self.faults.clone(),
        })
    }

    /// Serializes to a single-line versioned JSON object (pinned field
    /// order; [`ReportPartial::parse_json`] round-trips it).
    pub fn to_json(&self) -> String {
        let pairs = |hist: &BTreeMap<u64, u64>| {
            hist.iter()
                .map(|(v, c)| format!("[{v},{c}]"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let ranges = self
            .ranges
            .iter()
            .map(|(lo, hi)| format!("[{lo},{hi}]"))
            .collect::<Vec<_>>()
            .join(",");
        let wins = self
            .wins
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let attack_arm = if self.attack {
            format!(
                "\"successes\":{},\"infeasible\":{},",
                self.successes, self.infeasible
            )
        } else {
            String::new()
        };
        // Fault-enabled partials carry the crash counters; fault-free
        // partials keep the exact historical bytes.
        let crash_partition = if self.faulty {
            format!(",\"crash_partition\":{}", self.fails.crash_partition)
        } else {
            String::new()
        };
        let fault_arm = if self.faulty {
            format!("\"crashed\":{},", self.crashed)
        } else {
            String::new()
        };
        let faults = self
            .faults
            .iter()
            .map(|f| {
                format!(
                    "{{\"index\":{},\"seed\":{},\"message\":\"{}\"}}",
                    f.index,
                    f.seed,
                    Json::escape(&f.message)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"format\":\"{}\",\"version\":{},\"kind\":\"{}\",\"protocol\":\"{}\",",
                "\"n\":{},\"base_seed\":{},\"trials_total\":{},\"ranges\":[{}],",
                "\"wins\":[{}],\"out_of_range\":{},",
                "\"fails\":{{\"abort\":{},\"disagreement\":{},\"deadlock\":{},\"step_limit\":{}{}}},",
                "{}{}\"messages\":[{}],\"steps\":[{}],\"faults\":[{}]}}"
            ),
            PARTIAL_FORMAT,
            PARTIAL_VERSION,
            if self.attack { "attack" } else { "honest" },
            Json::escape(&self.protocol),
            self.n,
            self.base_seed,
            self.trials_total,
            ranges,
            wins,
            self.out_of_range,
            self.fails.abort,
            self.fails.disagreement,
            self.fails.deadlock,
            self.fails.step_limit,
            crash_partition,
            attack_arm,
            fault_arm,
            pairs(&self.messages),
            pairs(&self.steps),
            faults,
        )
    }

    /// Parses the encoding produced by [`ReportPartial::to_json`] (field
    /// order free; unknown fields rejected; counts cross-checked against
    /// the covered ranges).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field or the failed
    /// consistency check.
    pub fn parse_json(src: &str) -> Result<Self, String> {
        Self::from_value(&Json::parse(src)?)
    }

    pub(crate) fn from_value(v: &Json) -> Result<Self, String> {
        let ctx = "partial report";
        check_keys(
            v,
            &[
                "format",
                "version",
                "kind",
                "protocol",
                "n",
                "base_seed",
                "trials_total",
                "ranges",
                "wins",
                "out_of_range",
                "fails",
                "successes",
                "infeasible",
                "crashed",
                "messages",
                "steps",
                "faults",
            ],
            ctx,
        )?;
        let format = req_str(v, "format", ctx)?;
        require(
            format == PARTIAL_FORMAT,
            &format!("{ctx}: format is \"{format}\", expected \"{PARTIAL_FORMAT}\""),
        )?;
        let version = req_u64(v, "version", ctx)?;
        require(
            version == PARTIAL_VERSION,
            &format!("{ctx}: unsupported version {version} (this build reads {PARTIAL_VERSION})"),
        )?;
        let attack = match req_str(v, "kind", ctx)? {
            "honest" => false,
            "attack" => true,
            other => return Err(format!("{ctx}: unknown kind \"{other}\"")),
        };
        let n = req_usize(v, "n", ctx)?;
        let mut out = Self::new(
            req_str(v, "protocol", ctx)?,
            n,
            req_u64(v, "base_seed", ctx)?,
            req_u64(v, "trials_total", ctx)?,
            attack,
        );
        let ranges = req(v, "ranges", ctx)?
            .as_array()
            .ok_or_else(|| format!("{ctx}: \"ranges\" must be an array"))?;
        let mut prev_hi: Option<u64> = None;
        for r in ranges {
            let pair = r
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("{ctx}: each range must be a [lo,hi] pair"))?;
            let lo = pair[0]
                .as_u64()
                .ok_or_else(|| format!("{ctx}: range bounds must be integers"))?;
            let hi = pair[1]
                .as_u64()
                .ok_or_else(|| format!("{ctx}: range bounds must be integers"))?;
            require(
                lo < hi && hi <= out.trials_total,
                &format!(
                    "{ctx}: range [{lo},{hi}) invalid for {} trials",
                    out.trials_total
                ),
            )?;
            // Strictly increasing with a gap: coalesced form is canonical.
            require(
                prev_hi.is_none_or(|p| lo > p),
                &format!("{ctx}: ranges must be sorted, disjoint and coalesced"),
            )?;
            prev_hi = Some(hi);
            out.ranges.push((lo, hi));
        }
        let wins = req(v, "wins", ctx)?
            .as_array()
            .ok_or_else(|| format!("{ctx}: \"wins\" must be an array"))?;
        require(
            wins.len() == n,
            &format!("{ctx}: wins has {} entries, expected n={n}", wins.len()),
        )?;
        for (slot, w) in out.wins.iter_mut().zip(wins) {
            *slot = w
                .as_u64()
                .ok_or_else(|| format!("{ctx}: win counts must be integers"))?;
        }
        out.out_of_range = req_u64(v, "out_of_range", ctx)?;
        let fails = req(v, "fails", ctx)?;
        check_keys(
            fails,
            &[
                "abort",
                "disagreement",
                "deadlock",
                "step_limit",
                "crash_partition",
            ],
            "fails",
        )?;
        out.fails.abort = req_u64(fails, "abort", "fails")?;
        out.fails.disagreement = req_u64(fails, "disagreement", "fails")?;
        out.fails.deadlock = req_u64(fails, "deadlock", "fails")?;
        out.fails.step_limit = req_u64(fails, "step_limit", "fails")?;
        // The crash counters travel together: a fault-enabled partial
        // carries both "crashed" and "fails.crash_partition", a fault-free
        // one carries neither.
        out.faulty = v.get("crashed").is_some();
        if out.faulty {
            out.crashed = req_u64(v, "crashed", ctx)?;
            out.fails.crash_partition = opt_u64(fails, "crash_partition", 0)?;
        } else {
            require(
                fails.get("crash_partition").is_none(),
                &format!("{ctx}: fault-free partials carry no crash_partition field"),
            )?;
        }
        if attack {
            out.successes = req_u64(v, "successes", ctx)?;
            out.infeasible = req_u64(v, "infeasible", ctx)?;
        } else {
            require(
                v.get("successes").is_none() && v.get("infeasible").is_none(),
                &format!("{ctx}: honest partials carry no successes/infeasible fields"),
            )?;
        }
        out.messages = parse_histogram(v, "messages", ctx)?;
        out.steps = parse_histogram(v, "steps", ctx)?;
        let faults = req(v, "faults", ctx)?
            .as_array()
            .ok_or_else(|| format!("{ctx}: \"faults\" must be an array"))?;
        let mut prev_index: Option<u64> = None;
        for f in faults {
            check_keys(f, &["index", "seed", "message"], "fault")?;
            let index = req_u64(f, "index", "fault")?;
            require(
                prev_index.is_none_or(|p| index > p),
                &format!("{ctx}: faults must be sorted by index"),
            )?;
            prev_index = Some(index);
            out.faults.push(TrialFault {
                index,
                seed: req_u64(f, "seed", "fault")?,
                message: req_str(f, "message", "fault")?.to_string(),
            });
        }
        // The books must balance: every covered index is either a fault or
        // a recorded trial, and every ran trial contributed one histogram
        // sample.
        let recorded = out
            .covered()
            .checked_sub(out.faults.len() as u64)
            .ok_or_else(|| format!("{ctx}: more faults than covered trials"))?;
        let accounted =
            out.wins.iter().sum::<u64>() + out.out_of_range + out.fails.total() + out.infeasible;
        require(
            accounted == recorded,
            &format!("{ctx}: outcome counts ({accounted}) != covered trials ({recorded})"),
        )?;
        let ran = recorded - out.infeasible;
        require(
            out.crashed <= ran,
            &format!(
                "{ctx}: crashed trials ({}) exceed ran trials ({ran})",
                out.crashed
            ),
        )?;
        for (name, hist) in [("messages", &out.messages), ("steps", &out.steps)] {
            let samples: u64 = hist.values().sum();
            require(
                samples == ran,
                &format!("{ctx}: {name} histogram holds {samples} samples, expected {ran}"),
            )?;
        }
        Ok(out)
    }
}

fn parse_histogram(v: &Json, key: &str, ctx: &str) -> Result<BTreeMap<u64, u64>, String> {
    let pairs = req(v, key, ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be an array of [value,count] pairs"))?;
    let mut hist = BTreeMap::new();
    for p in pairs {
        let pair = p
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{ctx}: each {key} entry must be a [value,count] pair"))?;
        let value = pair[0]
            .as_u64()
            .ok_or_else(|| format!("{ctx}: {key} values must be integers"))?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| format!("{ctx}: {key} counts must be integers"))?;
        require(count >= 1, &format!("{ctx}: {key} counts must be >= 1"))?;
        require(
            hist.insert(value, count).is_none(),
            &format!("{ctx}: duplicate {key} value {value}"),
        )?;
    }
    Ok(hist)
}

/// Reduces an exact value->count histogram to the [`MetricSummary`] that
/// [`MetricSummary::of`] computes on the expanded sample list: the mean
/// sums in `u128` (order-independent, exact), and nearest-rank percentiles
/// walk the cumulative counts.
fn summary_of_histogram(hist: &BTreeMap<u64, u64>) -> MetricSummary {
    let len: u64 = hist.values().sum();
    if len == 0 {
        return MetricSummary::default();
    }
    let sum: u128 = hist.iter().map(|(&v, &c)| v as u128 * c as u128).sum();
    let rank = |pct: u64| -> u64 {
        let target = (pct as u128 * len as u128).div_ceil(100).max(1);
        let mut seen: u128 = 0;
        for (&v, &c) in hist {
            seen += c as u128;
            if seen >= target {
                return v;
            }
        }
        *hist.keys().next_back().expect("non-empty histogram")
    };
    MetricSummary {
        min: *hist.keys().next().expect("non-empty histogram"),
        max: *hist.keys().next_back().expect("non-empty histogram"),
        mean: sum as f64 / len as f64,
        p50: rank(50),
        p90: rank(90),
        p99: rank(99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::FailReason;

    fn elected(v: u64, messages: u64, steps: u64) -> TrialOutcome {
        TrialOutcome {
            outcome: Outcome::Elected(v),
            messages,
            steps,
        }
    }

    fn sample_outcomes() -> Vec<TrialOutcome> {
        (0..40)
            .map(|i| match i % 7 {
                6 => TrialOutcome {
                    outcome: Outcome::Fail(FailReason::Deadlock),
                    messages: i,
                    steps: i + 1,
                },
                r => elected(r % 4, 100 + i % 5, 200 + i % 3),
            })
            .collect()
    }

    #[test]
    fn any_split_finishes_like_from_trials() {
        let outcomes = sample_outcomes();
        let monolithic = TrialReport::from_trials("Test", 4, 9, &outcomes);
        for split in [1, 7, 20, 39] {
            let mut a = ReportPartial::new_honest("Test", 4, 9, 40);
            let mut b = ReportPartial::new_honest("Test", 4, 9, 40);
            for (i, t) in outcomes.iter().enumerate() {
                let part = if i < split { &mut a } else { &mut b };
                part.record(i as u64, *t);
            }
            // Merge in both orders: commutativity.
            let mut ab = a.clone();
            ab.merge(&b).unwrap();
            let mut ba = b.clone();
            ba.merge(&a).unwrap();
            assert_eq!(ab, ba);
            assert_eq!(ab.finish().unwrap().to_json(), monolithic.to_json());
        }
    }

    #[test]
    fn attack_split_finishes_like_from_attack_trials() {
        let trials: Vec<(Option<TrialOutcome>, bool)> = (0..30)
            .map(|i| match i % 5 {
                0 => (None, false),
                1 => (Some(elected(3, 50 + i, 60 + i)), true),
                _ => (Some(elected(i % 4, 50 + i, 60 + i)), false),
            })
            .collect();
        let monolithic = TrialReport::from_attack_trials("T:atk", 4, 2, &trials);
        let mut parts: Vec<ReportPartial> = (0..3)
            .map(|_| ReportPartial::new_attack("T:atk", 4, 2, 30))
            .collect();
        for (i, &(o, s)) in trials.iter().enumerate() {
            parts[i % 3].record_attack(i as u64, o, s);
        }
        let (head, rest) = parts.split_at_mut(1);
        let merged = &mut head[0];
        for p in rest {
            merged.merge(p).unwrap();
        }
        assert_eq!(merged.finish().unwrap().to_json(), monolithic.to_json());
    }

    #[test]
    fn merge_rejects_overlap_and_mismatched_headers() {
        let mut a = ReportPartial::new_honest("Test", 2, 0, 10);
        a.record(3, elected(0, 1, 1));
        let mut b = ReportPartial::new_honest("Test", 2, 0, 10);
        b.record(3, elected(1, 1, 1));
        assert!(a.clone().merge(&b).unwrap_err().contains("overlapping"));
        let c = ReportPartial::new_honest("Test", 2, 1, 10);
        assert!(a.merge(&c).unwrap_err().contains("different sweeps"));
    }

    #[test]
    fn finish_requires_full_coverage() {
        let mut p = ReportPartial::new_honest("Test", 2, 0, 3);
        p.record(0, elected(0, 1, 1));
        p.record(2, elected(1, 1, 1));
        let err = p.finish().unwrap_err();
        assert!(err.contains("2 of 3"), "{err}");
        p.record(1, elected(1, 1, 1));
        assert_eq!(p.finish().unwrap().trials, 3);
    }

    #[test]
    fn faults_are_excluded_from_stats_and_listed() {
        let mut p = ReportPartial::new_honest("Test", 2, 0, 4);
        p.record(0, elected(0, 5, 6));
        p.record_fault(TrialFault {
            index: 1,
            seed: 42,
            message: "boom".into(),
        });
        p.record(2, elected(1, 7, 8));
        p.record(3, elected(1, 7, 9));
        let report = p.finish().unwrap();
        assert_eq!(report.trials, 3);
        assert_eq!(report.wins, vec![1, 2]);
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].seed, 42);
        assert!(report.to_json().contains("\"faults\":[{\"index\":1,"));
    }

    #[test]
    fn json_round_trips() {
        let outcomes = sample_outcomes();
        let mut p = ReportPartial::new_honest("Test", 4, 9, 50);
        for (i, t) in outcomes.iter().enumerate() {
            // Two ranges with a gap: [0,20) and [30,50).
            let index = if i < 20 { i } else { i + 10 };
            p.record(index as u64, *t);
        }
        p.record_fault(TrialFault {
            index: 25,
            seed: 7,
            message: "x\"y".into(),
        });
        let json = p.to_json();
        let back = ReportPartial::parse_json(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parse_rejects_inconsistent_books() {
        let mut p = ReportPartial::new_honest("Test", 2, 0, 5);
        p.record(0, elected(0, 3, 4));
        let good = p.to_json();
        let bad = good.replace("\"out_of_range\":0", "\"out_of_range\":1");
        assert!(ReportPartial::parse_json(&bad)
            .unwrap_err()
            .contains("outcome counts"));
        let bad = good.replace("\"version\":1", "\"version\":9");
        assert!(ReportPartial::parse_json(&bad)
            .unwrap_err()
            .contains("unsupported version"));
    }

    #[test]
    fn note_index_coalesces_in_any_order() {
        let mut p = ReportPartial::new_honest("Test", 1, 0, 10);
        for i in [4u64, 6, 5, 0, 9, 1, 8, 2, 7, 3] {
            p.record(i, elected(0, 1, 1));
        }
        assert_eq!(p.ranges(), &[(0, 10)]);
        assert_eq!(p.covered(), 10);
    }
}
