//! Crash-safe checkpointing for long sweeps.
//!
//! A [`SweepCheckpoint`] is a versioned JSON snapshot of an in-progress
//! sweep: the spec's `sha256` (so a resume never silently continues a
//! *different* sweep), the trial range being run, and the
//! [`ReportPartial`] accumulated so far. [`run_sweep_checkpointed`] writes
//! one atomically (temp file + rename) after every chunk of
//! `checkpoint_every` trials; if the process dies — SIGKILL included —
//! rerunning the same command fast-forwards the deterministic
//! [`trial_seed`](crate::trial_seed) schedule past the recorded prefix and
//! finishes with byte-identical output.

use std::path::Path;

use crate::json::Json;
use crate::partial::ReportPartial;
use crate::sha256_hex;
use crate::spec::{check_keys, req, req_str, req_u64, require, SweepSpec};
use crate::sweep::run_sweep_partial;

/// Format marker every checkpoint file carries.
pub const CHECKPOINT_FORMAT: &str = "fle-sweep-checkpoint";
/// Version of the checkpoint JSON schema.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Snapshot of an in-progress sweep range.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// `sha256_hex` of the spec's canonical JSON ([`SweepSpec::to_json`]).
    pub spec_sha256: String,
    /// Start of the trial range this run covers (inclusive).
    pub start: u64,
    /// End of the trial range this run covers (exclusive).
    pub end: u64,
    /// Trials accumulated so far — always the contiguous prefix
    /// `[start, completed())`.
    pub partial: ReportPartial,
}

impl SweepCheckpoint {
    /// First trial index not yet covered by [`SweepCheckpoint::partial`].
    pub fn completed(&self) -> u64 {
        self.partial
            .resume_point(self.start)
            .expect("checkpoint partial is a contiguous prefix")
    }

    /// Serializes to a single-line versioned JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"format\":\"{}\",\"version\":{},\"spec_sha256\":\"{}\",\"start\":{},\"end\":{},\
             \"completed\":{},\"partial\":{}}}",
            CHECKPOINT_FORMAT,
            CHECKPOINT_VERSION,
            self.spec_sha256,
            self.start,
            self.end,
            self.completed(),
            self.partial.to_json(),
        )
    }

    /// Parses the encoding produced by [`SweepCheckpoint::to_json`],
    /// cross-checking the recorded `completed` marker against the
    /// partial's actual coverage.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn parse_json(src: &str) -> Result<Self, String> {
        let v = Json::parse(src)?;
        let ctx = "sweep checkpoint";
        check_keys(
            &v,
            &[
                "format",
                "version",
                "spec_sha256",
                "start",
                "end",
                "completed",
                "partial",
            ],
            ctx,
        )?;
        let format = req_str(&v, "format", ctx)?;
        require(
            format == CHECKPOINT_FORMAT,
            &format!("{ctx}: format is \"{format}\", expected \"{CHECKPOINT_FORMAT}\""),
        )?;
        let version = req_u64(&v, "version", ctx)?;
        require(
            version == CHECKPOINT_VERSION,
            &format!(
                "{ctx}: unsupported version {version} (this build reads {CHECKPOINT_VERSION})"
            ),
        )?;
        let cp = Self {
            spec_sha256: req_str(&v, "spec_sha256", ctx)?.to_string(),
            start: req_u64(&v, "start", ctx)?,
            end: req_u64(&v, "end", ctx)?,
            partial: ReportPartial::from_value(req(&v, "partial", ctx)?)?,
        };
        require(
            cp.start <= cp.end && cp.end <= cp.partial.trials_total(),
            &format!(
                "{ctx}: range [{}, {}) invalid for {} trials",
                cp.start,
                cp.end,
                cp.partial.trials_total()
            ),
        )?;
        let completed = cp
            .partial
            .resume_point(cp.start)
            .map_err(|e| format!("{ctx}: {e}"))?;
        require(
            completed <= cp.end,
            &format!("{ctx}: covers past its own range end {}", cp.end),
        )?;
        let recorded = req_u64(&v, "completed", ctx)?;
        require(
            recorded == completed,
            &format!(
                "{ctx}: completed marker says {recorded} but partial covers up to {completed}"
            ),
        )?;
        Ok(cp)
    }
}

/// Writes `checkpoint` to `path` atomically: the bytes land in
/// `<path>.tmp` first and are renamed over `path`, so a crash mid-write
/// leaves the previous checkpoint intact.
///
/// # Errors
///
/// The underlying I/O error, naming the path.
pub fn write_checkpoint(path: &Path, checkpoint: &SweepCheckpoint) -> Result<(), String> {
    let mut name = path
        .file_name()
        .map(|s| s.to_os_string())
        .ok_or_else(|| format!("checkpoint path {} has no file name", path.display()))?;
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    std::fs::write(&tmp, format!("{}\n", checkpoint.to_json()))
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        )
    })
}

/// What [`run_sweep_checkpointed`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointedRun {
    /// The accumulated partial covering the whole requested range.
    pub partial: ReportPartial,
    /// `Some(i)` if a checkpoint file existed and the run fast-forwarded
    /// to trial `i` instead of starting at `start`.
    pub resumed_from: Option<u64>,
    /// Checkpoint files written by this invocation.
    pub checkpoints_written: u64,
}

/// Runs trials `start..end` of `spec`, checkpointing to `path` after
/// every `every` trials (`0` means only once, at the end).
///
/// If `path` already holds a checkpoint, the run validates that it
/// belongs to this spec (by `sha256` of the canonical spec JSON) and this
/// exact range, then resumes after its covered prefix. The file is left
/// in place on return — covering the full range — so the caller decides
/// when the run's output is safely consumed and the file can be removed.
///
/// # Errors
///
/// Invalid spec or range, an unreadable/mismatched checkpoint, or a
/// checkpoint write failure. A mismatched spec hash is an error, never a
/// silent restart: delete the stale file to start over.
pub fn run_sweep_checkpointed(
    spec: &SweepSpec,
    path: &Path,
    every: u64,
    start: u64,
    end: u64,
) -> Result<CheckpointedRun, String> {
    let spec_sha256 = sha256_hex(spec.to_json().as_bytes());
    let (mut partial, resumed_from) = if path.exists() {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        let cp = SweepCheckpoint::parse_json(&src)
            .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
        require(
            cp.spec_sha256 == spec_sha256,
            &format!(
                "checkpoint {} belongs to a different spec (its spec sha256 {}, this run's {}); \
                 delete it to start over",
                path.display(),
                cp.spec_sha256,
                spec_sha256
            ),
        )?;
        require(
            cp.start == start && cp.end == end,
            &format!(
                "checkpoint {} covers trial range [{}, {}), this run asked for [{start}, {end})",
                path.display(),
                cp.start,
                cp.end
            ),
        )?;
        let at = cp.completed();
        (cp.partial, Some(at))
    } else {
        // An empty partial of the right shape (validates spec + range).
        (run_sweep_partial(spec, start, start)?, None)
    };
    let mut at = resumed_from.unwrap_or(start);
    let chunk = if every == 0 {
        (end - start).max(1)
    } else {
        every
    };
    let mut checkpoints_written = 0;
    while at < end {
        let hi = (at + chunk).min(end);
        let piece = run_sweep_partial(spec, at, hi)?;
        partial.merge(&piece)?;
        at = hi;
        let cp = SweepCheckpoint {
            spec_sha256: spec_sha256.clone(),
            start,
            end,
            partial,
        };
        write_checkpoint(path, &cp)?;
        partial = cp.partial;
        checkpoints_written += 1;
    }
    Ok(CheckpointedRun {
        partial,
        resumed_from,
        checkpoints_written,
    })
}
