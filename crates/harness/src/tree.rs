//! Tree-dictator grids: Theorem 7.2's simulated-tree protocol under its
//! dictator coalition, swept over deterministic seeds.

use crate::partial::ReportPartial;
use crate::spec::TreeSweep;
use crate::{run_batch_range, TrialOutcome, TrialReport};
use fle_topology::tree_fle::TreeSumFle;

/// Runs `batch.trials` dictator executions of [`TreeSumFle`] on the
/// configured graph and aggregates them into a [`TrialReport`] whose
/// `attack` arm counts how often the dictator coalition forced its
/// target (Theorem 7.2 predicts: always).
///
/// Each worker thread resolves the graph and its Claim F.5 partition
/// once; per trial only the seeded protocol instance is rebuilt. The
/// report is byte-identical for every thread count.
///
/// # Errors
///
/// If the graph family parameters are invalid — the same conditions
/// [`SweepSpec::validate`](crate::SweepSpec::validate) reports. A
/// malformed spec is a `Result`, never a worker panic.
pub fn run_tree_sweep(cfg: &TreeSweep) -> Result<TrialReport, String> {
    run_tree_partial(cfg, 0, cfg.batch.trials)?.finish()
}

/// Runs trials `start..end` of the tree-dictator sweep (global indices
/// and seeds) into a mergeable [`ReportPartial`]. Panicking trials are
/// contained as recorded faults.
///
/// # Errors
///
/// As for [`run_tree_sweep`].
pub fn run_tree_partial(cfg: &TreeSweep, start: u64, end: u64) -> Result<ReportPartial, String> {
    let n = cfg.graph.n();
    // Validate the spec once up front so workers can only fail per-trial.
    cfg.graph.resolve()?;
    let results = run_batch_range(
        &cfg.batch,
        start,
        end,
        || cfg.graph.resolve().expect("graph validated above"),
        |(graph, partition), index, derived| {
            let seed = cfg.seed_mode.resolve(index, derived);
            let target = cfg.target.resolve(seed, n) % n as u64;
            let fle = TreeSumFle::new(graph, partition, seed);
            let exec = fle.run_with_dictator(target);
            let success = exec.outcome.elected() == Some(target);
            (Some(TrialOutcome::of(&exec)), success)
        },
    );
    let label = format!("TreeSumFle:{}", cfg.graph.label());
    let mut partial = ReportPartial::new_attack(&label, n, cfg.batch.base_seed, cfg.batch.trials);
    for (i, slot) in results.into_iter().enumerate() {
        match slot {
            Ok((outcome, success)) => partial.record_attack(start + i as u64, outcome, success),
            Err(fault) => partial.record_fault(fault),
        }
    }
    Ok(partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GraphSpec, SeedMode, TargetSpec};
    use crate::BatchConfig;

    #[test]
    fn dictator_always_wins_across_graph_families() {
        for graph in [
            GraphSpec::Path(8),
            GraphSpec::Grid { rows: 3, cols: 4 },
            GraphSpec::Figure2,
        ] {
            let report = run_tree_sweep(&TreeSweep {
                graph,
                batch: BatchConfig {
                    trials: 12,
                    base_seed: 0,
                    threads: 1,
                },
                target: TargetSpec::SeedProduct { multiplier: 5 },
                seed_mode: SeedMode::RawIndex,
            })
            .expect("valid spec");
            let arm = report.attack.expect("tree sweeps carry the arm");
            assert_eq!(arm.successes, 12, "{graph:?}");
            assert_eq!(arm.infeasible, 0, "{graph:?}");
            assert_eq!(report.n, graph.n(), "{graph:?}");
        }
    }

    #[test]
    fn tree_sweep_is_thread_count_invariant() {
        let sweep = |threads| {
            run_tree_sweep(&TreeSweep {
                graph: GraphSpec::RandomConnected {
                    n: 12,
                    permille: 250,
                    seed: 4,
                },
                batch: BatchConfig {
                    trials: 24,
                    base_seed: 7,
                    threads,
                },
                target: TargetSpec::Fixed(3),
                seed_mode: SeedMode::Derived,
            })
            .expect("valid spec")
        };
        let baseline = sweep(1);
        for threads in [2, 8] {
            assert_eq!(sweep(threads).to_json(), baseline.to_json());
        }
    }
}
