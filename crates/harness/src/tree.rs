//! Tree-dictator grids: Theorem 7.2's simulated-tree protocol under its
//! dictator coalition, swept over deterministic seeds.

use crate::spec::TreeSweep;
use crate::{run_batch, TrialOutcome, TrialReport};
use fle_topology::tree_fle::TreeSumFle;

/// Runs `batch.trials` dictator executions of [`TreeSumFle`] on the
/// configured graph and aggregates them into a [`TrialReport`] whose
/// `attack` arm counts how often the dictator coalition forced its
/// target (Theorem 7.2 predicts: always).
///
/// Each worker thread resolves the graph and its Claim F.5 partition
/// once; per trial only the seeded protocol instance is rebuilt. The
/// report is byte-identical for every thread count.
///
/// # Panics
///
/// Panics if the graph family parameters are invalid; call
/// [`SweepSpec::validate`](crate::SweepSpec::validate) first for an
/// actionable error instead.
pub fn run_tree_sweep(cfg: &TreeSweep) -> TrialReport {
    let n = cfg.graph.n();
    let trials: Vec<(Option<TrialOutcome>, bool)> = run_batch(
        &cfg.batch,
        || {
            cfg.graph
                .resolve()
                .unwrap_or_else(|e| panic!("invalid tree sweep: {e}"))
        },
        |(graph, partition), index, derived| {
            let seed = cfg.seed_mode.resolve(index, derived);
            let target = cfg.target.resolve(seed, n) % n as u64;
            let fle = TreeSumFle::new(graph, partition, seed);
            let exec = fle.run_with_dictator(target);
            let success = exec.outcome.elected() == Some(target);
            (Some(TrialOutcome::of(&exec)), success)
        },
    );
    let label = format!("TreeSumFle:{}", cfg.graph.label());
    TrialReport::from_attack_trials(&label, n, cfg.batch.base_seed, &trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GraphSpec, SeedMode, TargetSpec};
    use crate::BatchConfig;

    #[test]
    fn dictator_always_wins_across_graph_families() {
        for graph in [
            GraphSpec::Path(8),
            GraphSpec::Grid { rows: 3, cols: 4 },
            GraphSpec::Figure2,
        ] {
            let report = run_tree_sweep(&TreeSweep {
                graph,
                batch: BatchConfig {
                    trials: 12,
                    base_seed: 0,
                    threads: 1,
                },
                target: TargetSpec::SeedProduct { multiplier: 5 },
                seed_mode: SeedMode::RawIndex,
            });
            let arm = report.attack.expect("tree sweeps carry the arm");
            assert_eq!(arm.successes, 12, "{graph:?}");
            assert_eq!(arm.infeasible, 0, "{graph:?}");
            assert_eq!(report.n, graph.n(), "{graph:?}");
        }
    }

    #[test]
    fn tree_sweep_is_thread_count_invariant() {
        let sweep = |threads| {
            run_tree_sweep(&TreeSweep {
                graph: GraphSpec::RandomConnected {
                    n: 12,
                    permille: 250,
                    seed: 4,
                },
                batch: BatchConfig {
                    trials: 24,
                    base_seed: 7,
                    threads,
                },
                target: TargetSpec::Fixed(3),
                seed_mode: SeedMode::Derived,
            })
        };
        let baseline = sweep(1);
        for threads in [2, 8] {
            assert_eq!(sweep(threads).to_json(), baseline.to_json());
        }
    }
}
