//! The generic deterministic batch runner.

use crate::trial_seed;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-wide default worker count used when [`BatchConfig::threads`] is
/// 0. Itself 0 means "ask [`std::thread::available_parallelism`]".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (0 restores auto-detection).
///
/// `fle-lab --threads N` routes through this so every experiment in the
/// process, including legacy [`par_seeds`] call sites, obeys the flag.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count a [`BatchConfig::threads`] of 0 resolves to: the value
/// of [`set_default_threads`] if set, otherwise the available parallelism.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Shape of one batch: how many trials, from which base seed, on how many
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of trials to run.
    pub trials: u64,
    /// Base seed; trial `i` runs with [`trial_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Worker threads; 0 means [`default_threads`]. The result is
    /// identical for every value.
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            base_seed: 0,
            threads: 0,
        }
    }
}

impl BatchConfig {
    /// The resolved worker count for this batch (at least 1, at most
    /// `trials`).
    pub fn resolved_threads(&self) -> usize {
        let t = if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        };
        t.clamp(1, self.trials.max(1) as usize)
    }
}

/// One contained trial failure: the panicking trial's global index, its
/// derived seed (rerun `trial(worker, index, seed)` with exactly these to
/// reproduce), and the panic payload when it was a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFault {
    /// Global trial index within the sweep's `0..trials` space.
    pub index: u64,
    /// The [`trial_seed`]-derived seed the trial ran with.
    pub seed: u64,
    /// The panic payload (`"non-string panic payload"` if it was neither
    /// `&str` nor `String`).
    pub message: String,
}

/// Renders a caught panic payload as a fault message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the contiguous trial range `start..end` of a `cfg.trials`-trial
/// batch across worker threads, containing per-trial panics, and returns
/// one entry per trial in trial order.
///
/// Indices and seeds are *global*: trial `i` runs with
/// [`trial_seed`]`(cfg.base_seed, i)` regardless of the range, so a batch
/// split across shards or checkpoints replays the exact seed schedule of
/// the monolithic run. A panicking trial becomes an `Err(`[`TrialFault`]`)`
/// slot instead of aborting the batch; the worker that hit it is discarded
/// (its cached state may be mid-trial garbage) and rebuilt via
/// `make_worker` before the next trial.
///
/// # Panics
///
/// Panics if the range is not within `0..=cfg.trials`.
pub fn run_batch_range<W, T: Send>(
    cfg: &BatchConfig,
    start: u64,
    end: u64,
    make_worker: impl Fn() -> W + Sync,
    trial: impl Fn(&mut W, u64, u64) -> T + Sync,
) -> Vec<Result<T, TrialFault>> {
    assert!(
        start <= end && end <= cfg.trials,
        "trial range {start}..{end} outside batch of {} trials",
        cfg.trials
    );
    let len = end - start;
    let threads = {
        let t = if cfg.threads == 0 {
            default_threads()
        } else {
            cfg.threads
        };
        t.clamp(1, len.max(1) as usize)
    };
    let base_seed = cfg.base_seed;
    let run_one = |worker: &mut W, index: u64| -> Result<T, TrialFault> {
        let seed = trial_seed(base_seed, index);
        catch_unwind(AssertUnwindSafe(|| trial(worker, index, seed))).map_err(|payload| {
            TrialFault {
                index,
                seed,
                message: panic_message(payload),
            }
        })
    };
    if threads <= 1 || len <= 1 {
        let mut worker = make_worker();
        let mut out = Vec::with_capacity(len as usize);
        for index in start..end {
            let result = run_one(&mut worker, index);
            if result.is_err() {
                worker = make_worker();
            }
            out.push(result);
        }
        return out;
    }
    let mut slots: Vec<Option<Result<T, TrialFault>>> = (0..len).map(|_| None).collect();
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, piece) in slots.chunks_mut(chunk).enumerate() {
            let run_one = &run_one;
            let make_worker = &make_worker;
            scope.spawn(move || {
                let mut worker = make_worker();
                for (i, slot) in piece.iter_mut().enumerate() {
                    let index = start + (t * chunk + i) as u64;
                    let result = run_one(&mut worker, index);
                    if result.is_err() {
                        worker = make_worker();
                    }
                    *slot = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Process-wide count of trials that completed on a lockstep batch fast
/// path (a [`run_batch_range_grouped`] group that returned `true`).
/// Instrumentation only — tests assert lower bounds to prove batching
/// engaged; never compare exactly (parallel test runs share it).
static BATCHED_TRIALS: AtomicU64 = AtomicU64::new(0);

/// The process-wide number of trials served by lockstep groups so far
/// (see `BATCHED_TRIALS` above).
pub fn batched_trials() -> u64 {
    BATCHED_TRIALS.load(Ordering::Relaxed)
}

/// [`run_batch_range`] with a group fast path: within each worker's
/// contiguous piece, full `width`-trial groups are attempted through
/// `group` first, and only the pieces the fast path cannot serve — a
/// group that returns `false` (diverged), panics, or under-fills, and the
/// ragged tail shorter than `width` — run through the scalar `trial`
/// closure.
///
/// `group(worker, group_start, out)` must either push exactly `width`
/// results for global trials `group_start..group_start + width` (in
/// order) and return `true`, or return `false` leaving the batch
/// attempt's results unused. Groups are aligned to each worker piece's
/// start, and the pieces are the same chunks [`run_batch_range`] uses —
/// so for a given `(threads, start, end)` the scalar path serves exactly
/// the same indices whether a checkpoint resume or shard split lands
/// mid-chunk or not, and results are bit-identical to the all-scalar
/// runner in every case.
///
/// A `width` of 0 or 1 delegates to [`run_batch_range`] unchanged.
///
/// # Panics
///
/// Panics if the range is not within `0..=cfg.trials`.
pub fn run_batch_range_grouped<W, T: Send>(
    cfg: &BatchConfig,
    start: u64,
    end: u64,
    width: usize,
    make_worker: impl Fn() -> W + Sync,
    group: impl Fn(&mut W, u64, &mut Vec<T>) -> bool + Sync,
    trial: impl Fn(&mut W, u64, u64) -> T + Sync,
) -> Vec<Result<T, TrialFault>> {
    if width <= 1 {
        return run_batch_range(cfg, start, end, make_worker, trial);
    }
    assert!(
        start <= end && end <= cfg.trials,
        "trial range {start}..{end} outside batch of {} trials",
        cfg.trials
    );
    let len = end - start;
    let threads = {
        let t = if cfg.threads == 0 {
            default_threads()
        } else {
            cfg.threads
        };
        t.clamp(1, len.max(1) as usize)
    };
    let base_seed = cfg.base_seed;
    let run_one = |worker: &mut W, index: u64| -> Result<T, TrialFault> {
        let seed = trial_seed(base_seed, index);
        catch_unwind(AssertUnwindSafe(|| trial(worker, index, seed))).map_err(|payload| {
            TrialFault {
                index,
                seed,
                message: panic_message(payload),
            }
        })
    };
    // Serves one worker piece covering global trials
    // `piece_start..piece_start + piece.len()`.
    let run_piece = |piece: &mut [Option<Result<T, TrialFault>>], piece_start: u64| {
        let mut worker = make_worker();
        let mut buf: Vec<T> = Vec::with_capacity(width);
        let mut i = 0usize;
        while i < piece.len() {
            let index = piece_start + i as u64;
            if piece.len() - i >= width {
                buf.clear();
                let ok = catch_unwind(AssertUnwindSafe(|| group(&mut worker, index, &mut buf)));
                match ok {
                    Ok(true) if buf.len() == width => {
                        BATCHED_TRIALS.fetch_add(width as u64, Ordering::Relaxed);
                        for (j, result) in buf.drain(..).enumerate() {
                            piece[i + j] = Some(Ok(result));
                        }
                        i += width;
                        continue;
                    }
                    Ok(_) => {} // diverged (or under-filled): re-run scalar
                    Err(_) => {
                        // A panicking group may have left the worker's
                        // cached state mid-trial; rebuild before the
                        // scalar re-run (which attributes any persistent
                        // fault to its exact trial).
                        worker = make_worker();
                    }
                }
                for j in 0..width {
                    let result = run_one(&mut worker, index + j as u64);
                    if result.is_err() {
                        worker = make_worker();
                    }
                    piece[i + j] = Some(result);
                }
                i += width;
            } else {
                // Ragged tail shorter than the batch width: scalar.
                let result = run_one(&mut worker, index);
                if result.is_err() {
                    worker = make_worker();
                }
                piece[i] = Some(result);
                i += 1;
            }
        }
    };
    let mut slots: Vec<Option<Result<T, TrialFault>>> = (0..len).map(|_| None).collect();
    if threads <= 1 || len <= 1 {
        run_piece(&mut slots, start);
    } else {
        let chunk = slots.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, piece) in slots.chunks_mut(chunk).enumerate() {
                let run_piece = &run_piece;
                scope.spawn(move || run_piece(piece, start + (t * chunk) as u64));
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Runs `trials` independent trials across worker threads, giving each
/// worker its own state from `make_worker`, and returns the results in
/// trial order.
///
/// `trial(worker, index, seed)` must be deterministic in `(index, seed)`
/// given a fresh-equivalent worker — the workers exist purely for
/// allocation reuse (e.g. a [`ring_sim::Engine`] per thread) and must not
/// leak state between trials. Under that contract the returned vector is
/// identical for every thread count.
///
/// A panicking trial no longer tears down sibling workers: the whole batch
/// completes first (via [`run_batch_range`]), then this wrapper re-raises
/// the first fault with its index and repro seed. Callers that want the
/// surviving results instead should use [`run_batch_range`] directly.
///
/// # Examples
///
/// ```
/// use fle_harness::{run_batch, BatchConfig, trial_seed};
///
/// let cfg = BatchConfig { trials: 10, base_seed: 7, threads: 3 };
/// let out = run_batch(&cfg, || (), |(), i, seed| (i, seed));
/// assert_eq!(out.len(), 10);
/// assert!(out.iter().enumerate().all(|(i, &(j, s))| {
///     j == i as u64 && s == trial_seed(7, i as u64)
/// }));
/// ```
pub fn run_batch<W, T: Send>(
    cfg: &BatchConfig,
    make_worker: impl Fn() -> W + Sync,
    trial: impl Fn(&mut W, u64, u64) -> T + Sync,
) -> Vec<T> {
    run_batch_range(cfg, 0, cfg.trials, make_worker, trial)
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|f| {
                panic!(
                    "trial {} (seed {}) panicked: {}",
                    f.index, f.seed, f.message
                )
            })
        })
        .collect()
}

/// Runs `f(seed)` for `seed in 0..trials` across the worker pool and
/// returns the results in seed order.
///
/// The legacy `fle-experiments` surface: seeds are the *raw trial
/// indices* (not [`trial_seed`]-derived), preserving the exact random
/// streams of the recorded experiment tables. New code should prefer
/// [`run_batch`], which separates the seed stream from the index space and
/// supports per-worker engine reuse.
///
/// # Examples
///
/// ```
/// use fle_harness::par_seeds;
///
/// let squares = par_seeds(8, |s| s * s);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_seeds<T: Send>(trials: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let cfg = BatchConfig {
        trials,
        base_seed: 0,
        threads: 0,
    };
    run_batch(&cfg, || (), |(), index, _seed| f(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = par_seeds(100, |s| s + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert!(par_seeds(0, |s| s).is_empty());
        assert_eq!(par_seeds(1, |s| s), vec![0]);
    }

    #[test]
    fn batch_results_identical_across_thread_counts() {
        let run = |threads| {
            let cfg = BatchConfig {
                trials: 97,
                base_seed: 5,
                threads,
            };
            run_batch(
                &cfg,
                || 0u64,
                |acc, i, seed| {
                    // A worker-stateful trial: the accumulator must not leak
                    // into results (it only proves workers are per-thread).
                    *acc += 1;
                    i.wrapping_mul(31) ^ seed
                },
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert_eq!(one, run(64));
    }

    #[test]
    fn resolved_threads_clamps() {
        let cfg = BatchConfig {
            trials: 3,
            base_seed: 0,
            threads: 100,
        };
        assert_eq!(cfg.resolved_threads(), 3);
        let cfg = BatchConfig {
            trials: 0,
            base_seed: 0,
            threads: 100,
        };
        assert_eq!(cfg.resolved_threads(), 1);
    }

    #[test]
    fn range_matches_full_batch_slice() {
        let cfg = BatchConfig {
            trials: 50,
            base_seed: 9,
            threads: 4,
        };
        let full = run_batch(&cfg, || (), |(), i, seed| i ^ seed);
        let part = run_batch_range(&cfg, 13, 37, || (), |(), i, seed| i ^ seed);
        let part: Vec<u64> = part.into_iter().map(|r| r.expect("no faults")).collect();
        assert_eq!(part, full[13..37]);
    }

    #[test]
    fn panicking_trial_becomes_fault_not_abort() {
        for threads in [1, 2, 8] {
            let cfg = BatchConfig {
                trials: 20,
                base_seed: 3,
                threads,
            };
            // Workers count trials served so the rebuild is observable: the
            // worker that hit index 7 restarts its count from zero.
            let out = run_batch_range(
                &cfg,
                0,
                20,
                || 0u64,
                |served, i, seed| {
                    if i == 7 {
                        panic!("injected fault at {i}");
                    }
                    *served += 1;
                    (i, seed, *served)
                },
            );
            assert_eq!(out.len(), 20);
            for (i, slot) in out.iter().enumerate() {
                if i == 7 {
                    let fault = slot.as_ref().expect_err("index 7 panicked");
                    assert_eq!(fault.index, 7);
                    assert_eq!(fault.seed, trial_seed(3, 7));
                    assert_eq!(fault.message, "injected fault at 7");
                } else {
                    let (j, seed, served) = slot.as_ref().expect("healthy trial");
                    assert_eq!(*j, i as u64);
                    assert_eq!(*seed, trial_seed(3, i as u64));
                    assert!(*served >= 1);
                }
            }
            // The worker serving index 8 was rebuilt after the fault, so its
            // counter restarted at 1 (single-thread case pins this exactly).
            if threads == 1 {
                let (_, _, served) = out[8].as_ref().expect("healthy trial");
                assert_eq!(*served, 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "trial 3 (seed")]
    fn run_batch_reraises_fault_with_repro_seed() {
        let cfg = BatchConfig {
            trials: 5,
            base_seed: 0,
            threads: 1,
        };
        run_batch(
            &cfg,
            || (),
            |(), i, _seed| {
                assert!(i != 3, "boom");
            },
        );
    }

    /// The grouped runner with marker closures: group results are tagged
    /// so tests can see exactly which indices took which path.
    fn run_marked(
        trials: u64,
        start: u64,
        end: u64,
        width: usize,
        threads: usize,
        diverge_at: Option<u64>,
        panic_at: Option<u64>,
    ) -> Vec<(u64, &'static str)> {
        let cfg = BatchConfig {
            trials,
            base_seed: 11,
            threads,
        };
        run_batch_range_grouped(
            &cfg,
            start,
            end,
            width,
            || (),
            |(), gstart, out| {
                if panic_at.is_some_and(|p| (gstart..gstart + width as u64).contains(&p)) {
                    panic!("group panic");
                }
                if diverge_at.is_some_and(|d| (gstart..gstart + width as u64).contains(&d)) {
                    return false;
                }
                out.extend((0..width as u64).map(|j| (gstart + j, "batch")));
                true
            },
            |(), i, _seed| (i, "scalar"),
        )
        .into_iter()
        .map(|r| r.expect("no scalar faults injected"))
        .collect()
    }

    #[test]
    fn grouped_runner_covers_every_index_in_order() {
        for threads in [1, 2, 8] {
            for width in [2, 7, 8, 64] {
                let out = run_marked(100, 0, 100, width, threads, None, None);
                assert_eq!(out.len(), 100);
                for (i, (idx, _)) in out.iter().enumerate() {
                    assert_eq!(*idx, i as u64, "threads={threads} width={width}");
                }
            }
        }
    }

    #[test]
    fn ragged_tail_runs_scalar() {
        // 10 trials at width 4, single thread: two full groups, then a
        // 2-trial scalar tail.
        let out = run_marked(10, 0, 10, 4, 1, None, None);
        let tags: Vec<&str> = out.iter().map(|(_, t)| *t).collect();
        assert_eq!(
            tags,
            ["batch"; 8]
                .iter()
                .chain(["scalar"; 2].iter())
                .copied()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn mid_range_start_realigns_groups_to_the_piece() {
        // A checkpoint resume landing mid-chunk: the range 3..13 groups
        // from 3 (3..7, 7..11) and runs 11..13 scalar — no group ever
        // spans the resume point.
        let out = run_marked(20, 3, 13, 4, 1, None, None);
        assert_eq!(out[0], (3, "batch"));
        assert_eq!(out[7], (10, "batch"));
        assert_eq!(out[8], (11, "scalar"));
        assert_eq!(out[9], (12, "scalar"));
    }

    #[test]
    fn diverged_group_falls_back_to_scalar_for_exactly_its_trials() {
        let out = run_marked(16, 0, 16, 4, 1, Some(6), None);
        for (i, (idx, tag)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            let expect = if (4..8).contains(&i) {
                "scalar"
            } else {
                "batch"
            };
            assert_eq!(*tag, expect, "index {i}");
        }
    }

    #[test]
    fn panicking_group_falls_back_to_scalar() {
        for threads in [1, 2] {
            let out = run_marked(16, 0, 16, 8, threads, None, Some(2));
            for (i, (idx, tag)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64);
                // Both thread counts form the groups 0..8 and 8..16 (one
                // piece, or one piece each); the panic only hits the group
                // containing index 2.
                let expect = if i < 8 { "scalar" } else { "batch" };
                assert_eq!(*tag, expect, "threads={threads} index {i}");
            }
        }
    }

    #[test]
    fn grouped_scalar_faults_attribute_to_their_trial() {
        let cfg = BatchConfig {
            trials: 8,
            base_seed: 2,
            threads: 1,
        };
        let out = run_batch_range_grouped(
            &cfg,
            0,
            8,
            4,
            || (),
            |(), _gstart, _out| false, // force scalar everywhere
            |(), i, _seed| {
                assert!(i != 5, "boom at 5");
                i
            },
        );
        for (i, slot) in out.iter().enumerate() {
            if i == 5 {
                let fault = slot.as_ref().expect_err("trial 5 fails");
                assert_eq!(fault.index, 5);
                assert_eq!(fault.seed, trial_seed(2, 5));
            } else {
                assert_eq!(*slot.as_ref().expect("healthy"), i as u64);
            }
        }
    }

    #[test]
    fn grouped_counts_batched_trials() {
        let before = batched_trials();
        let _ = run_marked(32, 0, 32, 8, 1, None, None);
        assert!(batched_trials() >= before + 32);
    }

    #[test]
    fn width_one_delegates_to_scalar_runner() {
        let cfg = BatchConfig {
            trials: 6,
            base_seed: 1,
            threads: 2,
        };
        let grouped = run_batch_range_grouped(
            &cfg,
            0,
            6,
            1,
            || (),
            |(), _g, _o| panic!("group path must not run at width 1"),
            |(), i, seed| i ^ seed,
        );
        let scalar = run_batch_range(&cfg, 0, 6, || (), |(), i, seed| i ^ seed);
        let grouped: Vec<u64> = grouped.into_iter().map(|r| r.expect("ok")).collect();
        let scalar: Vec<u64> = scalar.into_iter().map(|r| r.expect("ok")).collect();
        assert_eq!(grouped, scalar);
    }

    #[test]
    fn default_threads_override_roundtrip() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        let cfg = BatchConfig {
            trials: 100,
            base_seed: 0,
            threads: 0,
        };
        assert_eq!(cfg.resolved_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }
}
