//! The generic deterministic batch runner.

use crate::trial_seed;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count used when [`BatchConfig::threads`] is
/// 0. Itself 0 means "ask [`std::thread::available_parallelism`]".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (0 restores auto-detection).
///
/// `fle-lab --threads N` routes through this so every experiment in the
/// process, including legacy [`par_seeds`] call sites, obeys the flag.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count a [`BatchConfig::threads`] of 0 resolves to: the value
/// of [`set_default_threads`] if set, otherwise the available parallelism.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Shape of one batch: how many trials, from which base seed, on how many
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of trials to run.
    pub trials: u64,
    /// Base seed; trial `i` runs with [`trial_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Worker threads; 0 means [`default_threads`]. The result is
    /// identical for every value.
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            base_seed: 0,
            threads: 0,
        }
    }
}

impl BatchConfig {
    /// The resolved worker count for this batch (at least 1, at most
    /// `trials`).
    pub fn resolved_threads(&self) -> usize {
        let t = if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        };
        t.clamp(1, self.trials.max(1) as usize)
    }
}

/// Runs `trials` independent trials across worker threads, giving each
/// worker its own state from `make_worker`, and returns the results in
/// trial order.
///
/// `trial(worker, index, seed)` must be deterministic in `(index, seed)`
/// given a fresh-equivalent worker — the workers exist purely for
/// allocation reuse (e.g. a [`ring_sim::Engine`] per thread) and must not
/// leak state between trials. Under that contract the returned vector is
/// identical for every thread count.
///
/// # Examples
///
/// ```
/// use fle_harness::{run_batch, BatchConfig, trial_seed};
///
/// let cfg = BatchConfig { trials: 10, base_seed: 7, threads: 3 };
/// let out = run_batch(&cfg, || (), |(), i, seed| (i, seed));
/// assert_eq!(out.len(), 10);
/// assert!(out.iter().enumerate().all(|(i, &(j, s))| {
///     j == i as u64 && s == trial_seed(7, i as u64)
/// }));
/// ```
pub fn run_batch<W, T: Send>(
    cfg: &BatchConfig,
    make_worker: impl Fn() -> W + Sync,
    trial: impl Fn(&mut W, u64, u64) -> T + Sync,
) -> Vec<T> {
    let trials = cfg.trials;
    let threads = cfg.resolved_threads();
    if threads <= 1 || trials <= 1 {
        let mut worker = make_worker();
        return (0..trials)
            .map(|i| trial(&mut worker, i, trial_seed(cfg.base_seed, i)))
            .collect();
    }
    let base_seed = cfg.base_seed;
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, piece) in slots.chunks_mut(chunk).enumerate() {
            let trial = &trial;
            let make_worker = &make_worker;
            scope.spawn(move || {
                let mut worker = make_worker();
                for (i, slot) in piece.iter_mut().enumerate() {
                    let index = (t * chunk + i) as u64;
                    *slot = Some(trial(&mut worker, index, trial_seed(base_seed, index)));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Runs `f(seed)` for `seed in 0..trials` across the worker pool and
/// returns the results in seed order.
///
/// The legacy `fle-experiments` surface: seeds are the *raw trial
/// indices* (not [`trial_seed`]-derived), preserving the exact random
/// streams of the recorded experiment tables. New code should prefer
/// [`run_batch`], which separates the seed stream from the index space and
/// supports per-worker engine reuse.
///
/// # Examples
///
/// ```
/// use fle_harness::par_seeds;
///
/// let squares = par_seeds(8, |s| s * s);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_seeds<T: Send>(trials: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let cfg = BatchConfig {
        trials,
        base_seed: 0,
        threads: 0,
    };
    run_batch(&cfg, || (), |(), index, _seed| f(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = par_seeds(100, |s| s + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert!(par_seeds(0, |s| s).is_empty());
        assert_eq!(par_seeds(1, |s| s), vec![0]);
    }

    #[test]
    fn batch_results_identical_across_thread_counts() {
        let run = |threads| {
            let cfg = BatchConfig {
                trials: 97,
                base_seed: 5,
                threads,
            };
            run_batch(
                &cfg,
                || 0u64,
                |acc, i, seed| {
                    // A worker-stateful trial: the accumulator must not leak
                    // into results (it only proves workers are per-thread).
                    *acc += 1;
                    i.wrapping_mul(31) ^ seed
                },
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert_eq!(one, run(64));
    }

    #[test]
    fn resolved_threads_clamps() {
        let cfg = BatchConfig {
            trials: 3,
            base_seed: 0,
            threads: 100,
        };
        assert_eq!(cfg.resolved_threads(), 3);
        let cfg = BatchConfig {
            trials: 0,
            base_seed: 0,
            threads: 100,
        };
        assert_eq!(cfg.resolved_threads(), 1);
    }

    #[test]
    fn default_threads_override_roundtrip() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        let cfg = BatchConfig {
            trials: 100,
            base_seed: 0,
            threads: 0,
        };
        assert_eq!(cfg.resolved_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }
}
