//! The generic deterministic batch runner.

use crate::trial_seed;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count used when [`BatchConfig::threads`] is
/// 0. Itself 0 means "ask [`std::thread::available_parallelism`]".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (0 restores auto-detection).
///
/// `fle-lab --threads N` routes through this so every experiment in the
/// process, including legacy [`par_seeds`] call sites, obeys the flag.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count a [`BatchConfig::threads`] of 0 resolves to: the value
/// of [`set_default_threads`] if set, otherwise the available parallelism.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Shape of one batch: how many trials, from which base seed, on how many
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of trials to run.
    pub trials: u64,
    /// Base seed; trial `i` runs with [`trial_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Worker threads; 0 means [`default_threads`]. The result is
    /// identical for every value.
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            base_seed: 0,
            threads: 0,
        }
    }
}

impl BatchConfig {
    /// The resolved worker count for this batch (at least 1, at most
    /// `trials`).
    pub fn resolved_threads(&self) -> usize {
        let t = if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        };
        t.clamp(1, self.trials.max(1) as usize)
    }
}

/// One contained trial failure: the panicking trial's global index, its
/// derived seed (rerun `trial(worker, index, seed)` with exactly these to
/// reproduce), and the panic payload when it was a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFault {
    /// Global trial index within the sweep's `0..trials` space.
    pub index: u64,
    /// The [`trial_seed`]-derived seed the trial ran with.
    pub seed: u64,
    /// The panic payload (`"non-string panic payload"` if it was neither
    /// `&str` nor `String`).
    pub message: String,
}

/// Renders a caught panic payload as a fault message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the contiguous trial range `start..end` of a `cfg.trials`-trial
/// batch across worker threads, containing per-trial panics, and returns
/// one entry per trial in trial order.
///
/// Indices and seeds are *global*: trial `i` runs with
/// [`trial_seed`]`(cfg.base_seed, i)` regardless of the range, so a batch
/// split across shards or checkpoints replays the exact seed schedule of
/// the monolithic run. A panicking trial becomes an `Err(`[`TrialFault`]`)`
/// slot instead of aborting the batch; the worker that hit it is discarded
/// (its cached state may be mid-trial garbage) and rebuilt via
/// `make_worker` before the next trial.
///
/// # Panics
///
/// Panics if the range is not within `0..=cfg.trials`.
pub fn run_batch_range<W, T: Send>(
    cfg: &BatchConfig,
    start: u64,
    end: u64,
    make_worker: impl Fn() -> W + Sync,
    trial: impl Fn(&mut W, u64, u64) -> T + Sync,
) -> Vec<Result<T, TrialFault>> {
    assert!(
        start <= end && end <= cfg.trials,
        "trial range {start}..{end} outside batch of {} trials",
        cfg.trials
    );
    let len = end - start;
    let threads = {
        let t = if cfg.threads == 0 {
            default_threads()
        } else {
            cfg.threads
        };
        t.clamp(1, len.max(1) as usize)
    };
    let base_seed = cfg.base_seed;
    let run_one = |worker: &mut W, index: u64| -> Result<T, TrialFault> {
        let seed = trial_seed(base_seed, index);
        catch_unwind(AssertUnwindSafe(|| trial(worker, index, seed))).map_err(|payload| {
            TrialFault {
                index,
                seed,
                message: panic_message(payload),
            }
        })
    };
    if threads <= 1 || len <= 1 {
        let mut worker = make_worker();
        let mut out = Vec::with_capacity(len as usize);
        for index in start..end {
            let result = run_one(&mut worker, index);
            if result.is_err() {
                worker = make_worker();
            }
            out.push(result);
        }
        return out;
    }
    let mut slots: Vec<Option<Result<T, TrialFault>>> = (0..len).map(|_| None).collect();
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, piece) in slots.chunks_mut(chunk).enumerate() {
            let run_one = &run_one;
            let make_worker = &make_worker;
            scope.spawn(move || {
                let mut worker = make_worker();
                for (i, slot) in piece.iter_mut().enumerate() {
                    let index = start + (t * chunk + i) as u64;
                    let result = run_one(&mut worker, index);
                    if result.is_err() {
                        worker = make_worker();
                    }
                    *slot = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Runs `trials` independent trials across worker threads, giving each
/// worker its own state from `make_worker`, and returns the results in
/// trial order.
///
/// `trial(worker, index, seed)` must be deterministic in `(index, seed)`
/// given a fresh-equivalent worker — the workers exist purely for
/// allocation reuse (e.g. a [`ring_sim::Engine`] per thread) and must not
/// leak state between trials. Under that contract the returned vector is
/// identical for every thread count.
///
/// A panicking trial no longer tears down sibling workers: the whole batch
/// completes first (via [`run_batch_range`]), then this wrapper re-raises
/// the first fault with its index and repro seed. Callers that want the
/// surviving results instead should use [`run_batch_range`] directly.
///
/// # Examples
///
/// ```
/// use fle_harness::{run_batch, BatchConfig, trial_seed};
///
/// let cfg = BatchConfig { trials: 10, base_seed: 7, threads: 3 };
/// let out = run_batch(&cfg, || (), |(), i, seed| (i, seed));
/// assert_eq!(out.len(), 10);
/// assert!(out.iter().enumerate().all(|(i, &(j, s))| {
///     j == i as u64 && s == trial_seed(7, i as u64)
/// }));
/// ```
pub fn run_batch<W, T: Send>(
    cfg: &BatchConfig,
    make_worker: impl Fn() -> W + Sync,
    trial: impl Fn(&mut W, u64, u64) -> T + Sync,
) -> Vec<T> {
    run_batch_range(cfg, 0, cfg.trials, make_worker, trial)
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|f| {
                panic!(
                    "trial {} (seed {}) panicked: {}",
                    f.index, f.seed, f.message
                )
            })
        })
        .collect()
}

/// Runs `f(seed)` for `seed in 0..trials` across the worker pool and
/// returns the results in seed order.
///
/// The legacy `fle-experiments` surface: seeds are the *raw trial
/// indices* (not [`trial_seed`]-derived), preserving the exact random
/// streams of the recorded experiment tables. New code should prefer
/// [`run_batch`], which separates the seed stream from the index space and
/// supports per-worker engine reuse.
///
/// # Examples
///
/// ```
/// use fle_harness::par_seeds;
///
/// let squares = par_seeds(8, |s| s * s);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_seeds<T: Send>(trials: u64, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let cfg = BatchConfig {
        trials,
        base_seed: 0,
        threads: 0,
    };
    run_batch(&cfg, || (), |(), index, _seed| f(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = par_seeds(100, |s| s + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert!(par_seeds(0, |s| s).is_empty());
        assert_eq!(par_seeds(1, |s| s), vec![0]);
    }

    #[test]
    fn batch_results_identical_across_thread_counts() {
        let run = |threads| {
            let cfg = BatchConfig {
                trials: 97,
                base_seed: 5,
                threads,
            };
            run_batch(
                &cfg,
                || 0u64,
                |acc, i, seed| {
                    // A worker-stateful trial: the accumulator must not leak
                    // into results (it only proves workers are per-thread).
                    *acc += 1;
                    i.wrapping_mul(31) ^ seed
                },
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert_eq!(one, run(64));
    }

    #[test]
    fn resolved_threads_clamps() {
        let cfg = BatchConfig {
            trials: 3,
            base_seed: 0,
            threads: 100,
        };
        assert_eq!(cfg.resolved_threads(), 3);
        let cfg = BatchConfig {
            trials: 0,
            base_seed: 0,
            threads: 100,
        };
        assert_eq!(cfg.resolved_threads(), 1);
    }

    #[test]
    fn range_matches_full_batch_slice() {
        let cfg = BatchConfig {
            trials: 50,
            base_seed: 9,
            threads: 4,
        };
        let full = run_batch(&cfg, || (), |(), i, seed| i ^ seed);
        let part = run_batch_range(&cfg, 13, 37, || (), |(), i, seed| i ^ seed);
        let part: Vec<u64> = part.into_iter().map(|r| r.expect("no faults")).collect();
        assert_eq!(part, full[13..37]);
    }

    #[test]
    fn panicking_trial_becomes_fault_not_abort() {
        for threads in [1, 2, 8] {
            let cfg = BatchConfig {
                trials: 20,
                base_seed: 3,
                threads,
            };
            // Workers count trials served so the rebuild is observable: the
            // worker that hit index 7 restarts its count from zero.
            let out = run_batch_range(
                &cfg,
                0,
                20,
                || 0u64,
                |served, i, seed| {
                    if i == 7 {
                        panic!("injected fault at {i}");
                    }
                    *served += 1;
                    (i, seed, *served)
                },
            );
            assert_eq!(out.len(), 20);
            for (i, slot) in out.iter().enumerate() {
                if i == 7 {
                    let fault = slot.as_ref().expect_err("index 7 panicked");
                    assert_eq!(fault.index, 7);
                    assert_eq!(fault.seed, trial_seed(3, 7));
                    assert_eq!(fault.message, "injected fault at 7");
                } else {
                    let (j, seed, served) = slot.as_ref().expect("healthy trial");
                    assert_eq!(*j, i as u64);
                    assert_eq!(*seed, trial_seed(3, i as u64));
                    assert!(*served >= 1);
                }
            }
            // The worker serving index 8 was rebuilt after the fault, so its
            // counter restarted at 1 (single-thread case pins this exactly).
            if threads == 1 {
                let (_, _, served) = out[8].as_ref().expect("healthy trial");
                assert_eq!(*served, 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "trial 3 (seed")]
    fn run_batch_reraises_fault_with_repro_seed() {
        let cfg = BatchConfig {
            trials: 5,
            base_seed: 0,
            threads: 1,
        };
        run_batch(
            &cfg,
            || (),
            |(), i, _seed| {
                assert!(i != 3, "boom");
            },
        );
    }

    #[test]
    fn default_threads_override_roundtrip() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        let cfg = BatchConfig {
            trials: 100,
            base_seed: 0,
            threads: 0,
        };
        assert_eq!(cfg.resolved_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }
}
