//! Protocol-level batch sweeps with per-worker engine reuse.

use crate::partial::ReportPartial;
use crate::spec::{FaultSpec, ScheduleSpec, SweepSpec};
use crate::{
    run_attack_partial, run_attack_sweep, run_batch_range, run_batch_range_grouped,
    run_tree_partial, run_tree_sweep, trial_seed, BatchConfig, TrialFault, TrialOutcome,
    TrialReport,
};
use fle_core::protocols::{
    run_ring_honest_pooled_into, run_ring_honest_timed_into, ALeadBatchCache, ALeadNode, ALeadUni,
    BasicBatchCache, BasicLead, BasicNode, PhaseAsyncLead, PhaseBatchCache, PhaseMsg, PhaseNode,
    PhaseSumLead,
};
use ring_sim::{
    ArenaBacked, Engine, Execution, FaultConfig, FaultPlan, FifoScheduler, Node, NodeId,
    TimedNetConfig, TimedScheduler, Topology, TrialArena,
};

/// The ring protocols the harness can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Appendix B's non-resilient strawman (`n ≥ 2`).
    BasicLead,
    /// Abraham et al.'s buffered protocol (`n ≥ 2`).
    ALeadUni,
    /// The paper's Θ(√n)-resilient protocol (`n ≥ 4`).
    PhaseAsyncLead,
    /// The Appendix E.4 ablation (`n ≥ 4`).
    PhaseSumLead,
}

impl ProtocolKind {
    /// All sweepable protocols, in paper order.
    pub const ALL: &'static [ProtocolKind] = &[
        ProtocolKind::BasicLead,
        ProtocolKind::ALeadUni,
        ProtocolKind::PhaseAsyncLead,
        ProtocolKind::PhaseSumLead,
    ];

    /// The protocol's display name (matches
    /// [`fle_core::protocols::FleProtocol::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::BasicLead => "Basic-LEAD",
            ProtocolKind::ALeadUni => "A-LEADuni",
            ProtocolKind::PhaseAsyncLead => "PhaseAsyncLead",
            ProtocolKind::PhaseSumLead => "PhaseSumLead",
        }
    }
}

impl std::str::FromStr for ProtocolKind {
    type Err = String;

    /// Parses a CLI spelling: `basic`, `alead`, `phase`, `phasesum` (or
    /// the full display names, case-insensitively, with `-` stripped).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let key: String = s
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        match key.as_str() {
            "basic" | "basiclead" => Ok(ProtocolKind::BasicLead),
            "alead" | "aleaduni" => Ok(ProtocolKind::ALeadUni),
            "phase" | "phaseasynclead" => Ok(ProtocolKind::PhaseAsyncLead),
            "phasesum" | "phasesumlead" => Ok(ProtocolKind::PhaseSumLead),
            _ => Err(format!(
                "unknown protocol '{s}' (expected basic | alead | phase | phasesum)"
            )),
        }
    }
}

/// The lockstep batch width [`HonestSweep::batch_width`] 0 resolves to.
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// The largest accepted [`HonestSweep::batch_width`]: beyond this the
/// lane state stops fitting in cache and the fast path only gets slower.
pub const MAX_BATCH_WIDTH: usize = 1024;

/// One honest protocol sweep: which protocol, at what size, over which
/// batch. Wrap in [`SweepSpec::Honest`] (or use `.into()`) to dispatch
/// through [`run_sweep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HonestSweep {
    /// The protocol to run honestly.
    pub protocol: ProtocolKind,
    /// Ring size.
    pub n: usize,
    /// Key of the random function `f` (used by `PhaseAsyncLead` only).
    pub fn_key: u64,
    /// Trial count, base seed and worker threads.
    pub batch: BatchConfig,
    /// Lockstep batch width `k`: trials run `k` at a time through the
    /// structure-of-arrays engine (`ring_sim::batch`). 0 resolves to
    /// [`DEFAULT_BATCH_WIDTH`]; 1 forces the scalar path; timed
    /// schedules always run scalar. Results are bit-identical for every
    /// width.
    pub batch_width: usize,
    /// Delivery discipline (FIFO fast path or timed network).
    pub schedule: ScheduleSpec,
    /// Optional crash-fault injection: per trial, a deterministic
    /// [`FaultPlan`] is drawn from the trial seed's fault stream and
    /// installed on the engine. Forces the scalar trial path.
    pub fault: Option<FaultSpec>,
}

impl HonestSweep {
    /// The lockstep width this sweep actually runs with: the configured
    /// width (0 → [`DEFAULT_BATCH_WIDTH`]), forced to 1 (scalar) under a
    /// timed schedule (whose per-delivery noise streams are inherently
    /// per-trial) or a fault plan (whose crash instants diverge trials
    /// immediately).
    pub fn resolved_batch_width(&self) -> usize {
        if self.schedule.timed_net().is_some() || self.fault.is_some() {
            return 1;
        }
        match self.batch_width {
            0 => DEFAULT_BATCH_WIDTH,
            w => w,
        }
    }
}

/// Per-worker state of one honest protocol sweep: a reusable [`Engine`],
/// the monomorphized node vector, the (constant) wake list, a pooled FIFO
/// scheduler, the per-worker [`TrialArena`] node-state pool and the reused
/// [`Execution`] out-parameter. Once every buffer has reached its
/// steady-state capacity — after the first trial — a trial performs *no*
/// heap allocation at all, node construction included (phase-node stores
/// are drawn from and reclaimed into the arena).
struct SweepWorker<M, N> {
    engine: Engine<M>,
    nodes: Vec<N>,
    wakes: Vec<NodeId>,
    scheduler: FifoScheduler,
    timed: TimedScheduler<M>,
    arena: TrialArena,
    exec: Execution,
}

impl<M: Clone, N: Node<M> + ArenaBacked> SweepWorker<M, N> {
    fn new(n: usize, wakes: Vec<NodeId>) -> Self {
        Self {
            engine: Engine::new(Topology::ring(n)),
            nodes: Vec::with_capacity(n),
            wakes,
            scheduler: FifoScheduler::new(),
            timed: TimedScheduler::new(),
            arena: TrialArena::new(),
            exec: Execution::default(),
        }
    }

    /// Runs one honest trial through the monomorphized, arena-pooled
    /// engine fast path, reusing every worker buffer, and reduces it to
    /// its [`TrialOutcome`].
    fn trial(&mut self, honest: impl FnMut(NodeId, &mut TrialArena) -> N) -> TrialOutcome {
        let n = self.engine.topology().len();
        run_ring_honest_pooled_into(
            &mut self.engine,
            n,
            honest,
            &self.wakes,
            &mut self.nodes,
            &mut self.scheduler,
            &mut self.arena,
            &mut self.exec,
        );
        TrialOutcome::of(&self.exec)
    }

    /// The timed-network twin of [`SweepWorker::trial`]: same pooled
    /// buffers, but deliveries run on the virtual-time scheduler with the
    /// trial's network stream derived from `seed`.
    fn trial_timed(
        &mut self,
        honest: impl FnMut(NodeId, &mut TrialArena) -> N,
        net: &TimedNetConfig,
        seed: u64,
    ) -> TrialOutcome {
        let n = self.engine.topology().len();
        run_ring_honest_timed_into(
            &mut self.engine,
            n,
            honest,
            &self.wakes,
            &mut self.nodes,
            &mut self.timed,
            net,
            seed,
            &mut self.arena,
            &mut self.exec,
        );
        TrialOutcome::of(&self.exec)
    }
}

/// Runs `batch.trials` honest executions of the configured protocol, one
/// deterministic seed per trial, and aggregates them into a
/// [`TrialReport`].
///
/// Each worker thread owns one sweep worker — a reusable [`Engine`] plus
/// monomorphized node, scheduler, arena and result buffers — and one
/// hoisted protocol instance: the seed-independent state
/// (`PhaseParams`, the keyed `RandomFn`, the ring size) is built *once*
/// per worker in `make_worker`, and each trial derives its seeded copy
/// from it, so steady-state trials allocate nothing. The report (and its
/// JSON/CSV serializations) is byte-identical for every thread count.
///
/// # Panics
///
/// Panics if `n` is below the protocol's minimum ring size.
pub fn run_honest_sweep(cfg: &HonestSweep) -> TrialReport {
    run_honest_partial(cfg, 0, cfg.batch.trials)
        .finish()
        .expect("full-range partial always finishes")
}

/// Runs trials `start..end` of the honest sweep (global indices and
/// seeds, as in [`run_batch_range_grouped`]) into a mergeable
/// [`ReportPartial`].
/// Panicking trials are contained as recorded faults.
///
/// `run_honest_partial(cfg, 0, trials).finish()` is exactly
/// [`run_honest_sweep`]; disjoint ranges merge to the same bytes.
///
/// # Panics
///
/// Panics if `n` is below the protocol's minimum ring size or the range
/// is out of bounds.
pub fn run_honest_partial(cfg: &HonestSweep, start: u64, end: u64) -> ReportPartial {
    if let Some(fspec) = &cfg.fault {
        return run_honest_faulty_partial(cfg, fspec, start, end);
    }
    let n = cfg.n;
    let width = cfg.resolved_batch_width();
    let base_seed = cfg.batch.base_seed;
    let net = cfg.schedule.timed_net();
    let net = net.as_ref();
    /// Fills `seeds` with the lockstep group's per-lane trial seeds —
    /// exactly the seeds the scalar path would derive for those indices.
    fn group_seeds(seeds: &mut Vec<u64>, base_seed: u64, gstart: u64, width: usize) {
        seeds.clear();
        seeds.extend((0..width as u64).map(|j| trial_seed(base_seed, gstart + j)));
    }
    let outcomes = match cfg.protocol {
        ProtocolKind::BasicLead => run_batch_range_grouped(
            &cfg.batch,
            start,
            end,
            width,
            || {
                let p = BasicLead::new(n);
                let w = SweepWorker::<u64, BasicNode>::new(n, p.wakes());
                (w, p, BasicBatchCache::ring(n), Vec::new())
            },
            |(w, p, cache, seeds), gstart, out| {
                group_seeds(seeds, base_seed, gstart, width);
                if !p.run_honest_batch_into(seeds, cache) {
                    return false;
                }
                for lane in 0..width {
                    cache.execution_into(lane, &mut w.exec);
                    out.push(TrialOutcome::of(&w.exec));
                }
                true
            },
            |(w, p, _, _), _i, seed| {
                let p = p.clone().with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
        ProtocolKind::ALeadUni => run_batch_range_grouped(
            &cfg.batch,
            start,
            end,
            width,
            || {
                let p = ALeadUni::new(n);
                let w = SweepWorker::<u64, ALeadNode>::new(n, p.wakes());
                (w, p, ALeadBatchCache::ring(n), Vec::new())
            },
            |(w, p, cache, seeds), gstart, out| {
                group_seeds(seeds, base_seed, gstart, width);
                if !p.run_honest_batch_into(seeds, cache) {
                    return false;
                }
                for lane in 0..width {
                    cache.execution_into(lane, &mut w.exec);
                    out.push(TrialOutcome::of(&w.exec));
                }
                true
            },
            |(w, p, _, _), _i, seed| {
                let p = p.clone().with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
        ProtocolKind::PhaseAsyncLead => run_batch_range_grouped(
            &cfg.batch,
            start,
            end,
            width,
            || {
                let p = PhaseAsyncLead::new(n).with_fn_key(cfg.fn_key);
                let w = SweepWorker::<PhaseMsg, PhaseNode>::new(n, p.wakes());
                (w, p, PhaseBatchCache::ring(n), Vec::new())
            },
            |(w, p, cache, seeds), gstart, out| {
                group_seeds(seeds, base_seed, gstart, width);
                if !p.run_honest_batch_into(seeds, cache) {
                    return false;
                }
                for lane in 0..width {
                    cache.execution_into(lane, &mut w.exec);
                    out.push(TrialOutcome::of(&w.exec));
                }
                true
            },
            |(w, p, _, _), _i, seed| {
                let p = p.with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
        ProtocolKind::PhaseSumLead => run_batch_range_grouped(
            &cfg.batch,
            start,
            end,
            width,
            || {
                let p = PhaseSumLead::new(n);
                let w = SweepWorker::<PhaseMsg, PhaseNode>::new(n, p.wakes());
                (w, p, PhaseBatchCache::ring(n), Vec::new())
            },
            |(w, p, cache, seeds), gstart, out| {
                group_seeds(seeds, base_seed, gstart, width);
                if !p.run_honest_batch_into(seeds, cache) {
                    return false;
                }
                for lane in 0..width {
                    cache.execution_into(lane, &mut w.exec);
                    out.push(TrialOutcome::of(&w.exec));
                }
                true
            },
            |(w, p, _, _), _i, seed| {
                let p = p.with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
    };
    let mut partial = ReportPartial::new_honest(
        cfg.protocol.name(),
        n,
        cfg.batch.base_seed,
        cfg.batch.trials,
    );
    record_honest(&mut partial, start, outcomes);
    partial
}

/// Runs the scalar trials of a fault-enabled honest sweep: each trial
/// draws its [`FaultPlan`] from the trial seed's fault stream
/// ([`ring_sim::FAULT_STREAM_SALT`]) and installs it on the worker's
/// engine before running, and returns `(outcome, crashed)` where
/// `crashed` says whether at least one planned crash fired.
fn run_faulty_trials<M: Clone, N: Node<M> + ArenaBacked, P>(
    batch: &BatchConfig,
    start: u64,
    end: u64,
    n: usize,
    fcfg: &FaultConfig,
    make: impl Fn() -> (SweepWorker<M, N>, P) + Sync,
    trial: impl Fn(&mut SweepWorker<M, N>, &P, u64) -> TrialOutcome + Sync,
) -> Vec<Result<(TrialOutcome, bool), TrialFault>> {
    run_batch_range(
        batch,
        start,
        end,
        || {
            let (w, p) = make();
            (w, p, FaultPlan::none())
        },
        |(w, p, plan), _i, seed| {
            plan.draw_into(fcfg, n, seed);
            w.engine.set_fault_plan(plan);
            let out = trial(w, p, seed);
            (out, w.exec.stats.crashes > 0)
        },
    )
}

/// The fault-enabled twin of [`run_honest_partial`]'s body: always
/// scalar (see [`HonestSweep::resolved_batch_width`]), and the returned
/// partial carries the crash counters
/// ([`ReportPartial::with_faults`]).
fn run_honest_faulty_partial(
    cfg: &HonestSweep,
    fspec: &FaultSpec,
    start: u64,
    end: u64,
) -> ReportPartial {
    let n = cfg.n;
    let fcfg = fspec.config();
    let net = cfg.schedule.timed_net();
    let net = net.as_ref();
    let outcomes = match cfg.protocol {
        ProtocolKind::BasicLead => run_faulty_trials(
            &cfg.batch,
            start,
            end,
            n,
            &fcfg,
            || {
                let p = BasicLead::new(n);
                let w = SweepWorker::<u64, BasicNode>::new(n, p.wakes());
                (w, p)
            },
            |w, p, seed| {
                let p = p.clone().with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
        ProtocolKind::ALeadUni => run_faulty_trials(
            &cfg.batch,
            start,
            end,
            n,
            &fcfg,
            || {
                let p = ALeadUni::new(n);
                let w = SweepWorker::<u64, ALeadNode>::new(n, p.wakes());
                (w, p)
            },
            |w, p, seed| {
                let p = p.clone().with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
        ProtocolKind::PhaseAsyncLead => run_faulty_trials(
            &cfg.batch,
            start,
            end,
            n,
            &fcfg,
            || {
                let p = PhaseAsyncLead::new(n).with_fn_key(cfg.fn_key);
                let w = SweepWorker::<PhaseMsg, PhaseNode>::new(n, p.wakes());
                (w, p)
            },
            |w, p, seed| {
                let p = p.with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
        ProtocolKind::PhaseSumLead => run_faulty_trials(
            &cfg.batch,
            start,
            end,
            n,
            &fcfg,
            || {
                let p = PhaseSumLead::new(n);
                let w = SweepWorker::<PhaseMsg, PhaseNode>::new(n, p.wakes());
                (w, p)
            },
            |w, p, seed| {
                let p = p.with_seed(seed);
                match net {
                    Some(net) => {
                        w.trial_timed(|id, arena| p.honest_ring_node_in(id, arena), net, seed)
                    }
                    None => w.trial(|id, arena| p.honest_ring_node_in(id, arena)),
                }
            },
        ),
    };
    let mut partial = ReportPartial::new_honest(
        cfg.protocol.name(),
        n,
        cfg.batch.base_seed,
        cfg.batch.trials,
    )
    .with_faults();
    for (i, slot) in outcomes.into_iter().enumerate() {
        match slot {
            Ok((outcome, crashed)) => partial.record_faulty(start + i as u64, outcome, crashed),
            Err(fault) => partial.record_fault(fault),
        }
    }
    partial
}

/// Feeds a [`run_batch_range`] result vector (whose slot `i` is global
/// trial `start + i`) into an honest partial.
fn record_honest(
    partial: &mut ReportPartial,
    start: u64,
    outcomes: Vec<Result<TrialOutcome, TrialFault>>,
) {
    for (i, slot) in outcomes.into_iter().enumerate() {
        match slot {
            Ok(outcome) => partial.record(start + i as u64, outcome),
            Err(fault) => partial.record_fault(fault),
        }
    }
}

/// Runs any [`SweepSpec`] — honest, attack or tree-dictator — and
/// aggregates it into a [`TrialReport`]. The report (and its JSON/CSV
/// serializations) is byte-identical for every thread count.
///
/// Attack and tree grids dispatch onto per-worker caches
/// ([`run_attack_sweep`] / [`run_tree_sweep`]) so steady-state trials
/// are allocation-free.
///
/// # Errors
///
/// If the spec violates a constructor precondition (e.g. an infeasible
/// coalition layout) — the same conditions [`SweepSpec::validate`]
/// reports.
///
/// # Panics
///
/// Panics if `n` is below an honest protocol's minimum ring size (honest
/// specs have no runner-layer checks; call [`SweepSpec::validate`]
/// first).
pub fn run_sweep(spec: &SweepSpec) -> Result<TrialReport, String> {
    match spec {
        SweepSpec::Honest(cfg) => Ok(run_honest_sweep(cfg)),
        SweepSpec::Attack(cfg) => run_attack_sweep(cfg),
        SweepSpec::TreeDictator(cfg) => run_tree_sweep(cfg),
    }
}

/// Runs trials `start..end` of any [`SweepSpec`] into a mergeable
/// [`ReportPartial`] — the primitive sharding and checkpointing are built
/// on. Disjoint ranges [`merge`](ReportPartial::merge) and
/// [`finish`](ReportPartial::finish) to bytes identical to
/// [`run_sweep`] over the full range.
///
/// # Errors
///
/// If the range exceeds the spec's trial count or the spec is invalid.
pub fn run_sweep_partial(spec: &SweepSpec, start: u64, end: u64) -> Result<ReportPartial, String> {
    let trials = spec.batch().trials;
    if start > end || end > trials {
        return Err(format!(
            "trial range [{start}, {end}) invalid for a sweep of {trials} trials"
        ));
    }
    match spec {
        SweepSpec::Honest(cfg) => Ok(run_honest_partial(cfg, start, end)),
        SweepSpec::Attack(cfg) => run_attack_partial(cfg, start, end),
        SweepSpec::TreeDictator(cfg) => run_tree_partial(cfg, start, end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial_seed;
    use fle_core::protocols::FleProtocol;

    #[test]
    fn protocol_kind_parses() {
        assert_eq!("basic".parse::<ProtocolKind>(), Ok(ProtocolKind::BasicLead));
        assert_eq!(
            "A-LEADuni".parse::<ProtocolKind>(),
            Ok(ProtocolKind::ALeadUni)
        );
        assert_eq!(
            "phase".parse::<ProtocolKind>(),
            Ok(ProtocolKind::PhaseAsyncLead)
        );
        assert_eq!(
            "PhaseSumLead".parse::<ProtocolKind>(),
            Ok(ProtocolKind::PhaseSumLead)
        );
        assert!("nope".parse::<ProtocolKind>().is_err());
    }

    #[test]
    fn sweep_accounts_every_trial() {
        for &protocol in ProtocolKind::ALL {
            let report = run_sweep(&SweepSpec::Honest(HonestSweep {
                protocol,
                n: 6,
                fn_key: 3,
                batch: BatchConfig {
                    trials: 20,
                    base_seed: 2,
                    threads: 1,
                },
                batch_width: 0,
                schedule: ScheduleSpec::Fifo,
                fault: None,
            }))
            .expect("valid spec");
            assert_eq!(report.protocol, protocol.name());
            assert_eq!(
                report.elected() + report.out_of_range + report.fails.total(),
                20,
                "{protocol:?}"
            );
            // Honest runs never fail.
            assert_eq!(report.fails.total(), 0, "{protocol:?}");
            assert_eq!(report.out_of_range, 0, "{protocol:?}");
        }
    }

    #[test]
    fn zero_profile_timed_sweep_matches_fifo_sweep() {
        use ring_sim::LatencySpec;
        for &protocol in ProtocolKind::ALL {
            let base = HonestSweep {
                protocol,
                n: 8,
                fn_key: 5,
                batch: BatchConfig {
                    trials: 25,
                    base_seed: 11,
                    threads: 1,
                },
                batch_width: 0,
                schedule: ScheduleSpec::Fifo,
                fault: None,
            };
            let fifo = run_honest_sweep(&base);
            let timed = run_honest_sweep(&HonestSweep {
                schedule: ScheduleSpec::Timed {
                    latency: LatencySpec::ZERO,
                    loss_permille: 0,
                    dup_permille: 0,
                },
                ..base
            });
            assert_eq!(timed.to_json(), fifo.to_json(), "{protocol:?}");
        }
    }

    #[test]
    fn sweep_matches_direct_protocol_runs() {
        let n = 8;
        let batch = BatchConfig {
            trials: 12,
            base_seed: 9,
            threads: 1,
        };
        let report = run_honest_sweep(&HonestSweep {
            protocol: ProtocolKind::ALeadUni,
            n,
            fn_key: 0,
            batch,
            batch_width: 0,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        });
        let mut wins = vec![0u64; n];
        for i in 0..batch.trials {
            let exec = ALeadUni::new(n)
                .with_seed(trial_seed(batch.base_seed, i))
                .run_honest();
            wins[exec.outcome.elected().expect("honest") as usize] += 1;
        }
        assert_eq!(report.wins, wins);
        // A-LEADuni sends exactly n² messages in every honest run.
        assert_eq!(report.messages.min, (n * n) as u64);
        assert_eq!(report.messages.max, (n * n) as u64);
    }
}
