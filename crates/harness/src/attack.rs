//! Attack-grid execution: [`AttackSweep`] specs dispatched onto
//! per-worker [`AttackRunner`](fle_attacks::AttackRunner) caches.

use crate::partial::ReportPartial;
use crate::spec::AttackSweep;
use crate::{run_batch_range, TrialOutcome, TrialReport};
use fle_attacks::build_runner;
use ring_sim::TimedNetConfig;

/// Runs `batch.trials` adversarial executions of the configured attack,
/// one deterministic seed per trial, and aggregates them into a
/// [`TrialReport`] whose `attack` arm carries the success/infeasible
/// counts and the Wilson 95% CI on the success rate.
///
/// Each worker thread builds one cached runner
/// ([`fle_attacks::build_runner`]) in `make_worker`: protocol base,
/// engine, scheduler, arena and result buffers are all reused, so
/// steady-state trials are allocation-free. Trials whose per-instance
/// preconditions fail count as `infeasible` (and never as successes).
/// The report is byte-identical for every thread count.
///
/// # Errors
///
/// If the spec is invalid (unresolvable coalition, layout rejected by
/// the runner) — the same conditions
/// [`SweepSpec::validate`](crate::SweepSpec::validate) reports. A
/// malformed spec is a `Result`, never a worker panic, so a long-running
/// multi-sweep process survives it.
pub fn run_attack_sweep(cfg: &AttackSweep) -> Result<TrialReport, String> {
    run_attack_partial(cfg, 0, cfg.batch.trials)?.finish()
}

/// [`run_attack_sweep`] with an explicit (possibly asymmetric, per-edge)
/// [`TimedNetConfig`] instead of the uniform net implied by
/// `cfg.schedule`. This is the entry point for experiments that place
/// slow links *relative to the coalition* (e.g. adversary placement vs.
/// asymmetric latency); everything else — batching, seed streams, report
/// aggregation, thread-count invariance — is identical.
///
/// # Errors
///
/// As for [`run_attack_sweep`].
pub fn run_attack_sweep_with_net(
    cfg: &AttackSweep,
    net: &TimedNetConfig,
) -> Result<TrialReport, String> {
    run_attack_partial_impl(cfg, Some(net), 0, cfg.batch.trials)?.finish()
}

/// Runs trials `start..end` of the attack sweep (global indices and
/// seeds) into a mergeable [`ReportPartial`]. Panicking trials are
/// contained as recorded faults; infeasible trials count as such.
///
/// # Errors
///
/// As for [`run_attack_sweep`].
pub fn run_attack_partial(
    cfg: &AttackSweep,
    start: u64,
    end: u64,
) -> Result<ReportPartial, String> {
    let net = cfg.schedule.timed_net();
    run_attack_partial_impl(cfg, net.as_ref(), start, end)
}

/// [`run_attack_partial`] with an explicit [`TimedNetConfig`], the
/// range form of [`run_attack_sweep_with_net`].
///
/// # Errors
///
/// As for [`run_attack_sweep`].
pub fn run_attack_partial_with_net(
    cfg: &AttackSweep,
    net: &TimedNetConfig,
    start: u64,
    end: u64,
) -> Result<ReportPartial, String> {
    run_attack_partial_impl(cfg, Some(net), start, end)
}

fn run_attack_partial_impl(
    cfg: &AttackSweep,
    net: Option<&TimedNetConfig>,
    start: u64,
    end: u64,
) -> Result<ReportPartial, String> {
    // Validate the spec once up front so workers can only fail per-trial:
    // the coalition must resolve and the runner must accept the layout.
    let coalition = cfg.coalition.resolve(cfg.n)?;
    build_runner(cfg.attack, cfg.n, &coalition).map_err(|e| e.to_string())?;
    let fcfg = cfg.fault.map(|f| f.config());
    let results = run_batch_range(
        &cfg.batch,
        start,
        end,
        || {
            let mut runner =
                build_runner(cfg.attack, cfg.n, &coalition).expect("layout validated above");
            runner.set_timed_net(net);
            runner.set_faults(fcfg.as_ref());
            runner
        },
        |runner, index, derived| {
            let seed = cfg.seed_mode.resolve(index, derived);
            let fn_key = cfg.fn_key.resolve(seed);
            let target = cfg.target.resolve(seed, cfg.n);
            match runner.run_trial(seed, fn_key, target) {
                // Infeasible trials never ran, so they never crashed.
                Ok(r) => (
                    Some(TrialOutcome::of(r.exec)),
                    r.success,
                    r.exec.stats.crashes > 0,
                ),
                Err(_) => (None, false, false),
            }
        },
    );
    let label = format!("{}:{}", cfg.attack.protocol_name(), cfg.attack.name());
    let mut partial =
        ReportPartial::new_attack(&label, cfg.n, cfg.batch.base_seed, cfg.batch.trials);
    let faulty = fcfg.is_some();
    if faulty {
        partial = partial.with_faults();
    }
    for (i, slot) in results.into_iter().enumerate() {
        match slot {
            Ok((outcome, success, crashed)) => {
                let index = start + i as u64;
                if faulty {
                    partial.record_attack_faulty(index, outcome, success, crashed);
                } else {
                    partial.record_attack(index, outcome, success);
                }
            }
            Err(fault) => partial.record_fault(fault),
        }
    }
    Ok(partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CoalitionSpec, FnKeySpec, ScheduleSpec, SeedMode, TargetSpec};
    use crate::BatchConfig;
    use fle_attacks::{AttackKind, RushingAttack};
    use fle_core::protocols::ALeadUni;
    use fle_core::Coalition;

    fn rushing_sweep(threads: usize, seed_mode: SeedMode) -> AttackSweep {
        AttackSweep {
            attack: AttackKind::Rushing,
            n: 16,
            fn_key: FnKeySpec::Fixed(0),
            batch: BatchConfig {
                trials: 40,
                base_seed: 1,
                threads,
            },
            coalition: CoalitionSpec::EquallySpaced { k: 7, offset: 1 },
            target: TargetSpec::Fixed(3),
            seed_mode,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        }
    }

    #[test]
    fn attack_sweep_is_thread_count_invariant() {
        let baseline = run_attack_sweep(&rushing_sweep(1, SeedMode::Derived)).expect("valid");
        for threads in [2, 8] {
            let report =
                run_attack_sweep(&rushing_sweep(threads, SeedMode::Derived)).expect("valid");
            assert_eq!(report.to_json(), baseline.to_json(), "threads={threads}");
            assert_eq!(report.to_csv(), baseline.to_csv(), "threads={threads}");
        }
    }

    #[test]
    fn zero_profile_timed_attack_sweep_matches_fifo() {
        use ring_sim::LatencySpec;
        let fifo = run_attack_sweep(&rushing_sweep(1, SeedMode::Derived)).expect("valid");
        let mut timed_cfg = rushing_sweep(1, SeedMode::Derived);
        timed_cfg.schedule = ScheduleSpec::Timed {
            latency: LatencySpec::ZERO,
            loss_permille: 0,
            dup_permille: 0,
        };
        let timed = run_attack_sweep(&timed_cfg).expect("valid");
        assert_eq!(timed.to_json(), fifo.to_json());
    }

    #[test]
    fn raw_index_mode_matches_historical_loops() {
        // The pre-spec experiment tables looped `for seed in 0..trials`
        // and ran the attack directly; RawIndex mode must reproduce that
        // stream exactly.
        let report = run_attack_sweep(&rushing_sweep(1, SeedMode::RawIndex)).expect("valid");
        let coalition = Coalition::equally_spaced(16, 7, 1).unwrap();
        let attack = RushingAttack::new(3);
        let mut successes = 0;
        for seed in 0..40u64 {
            let p = ALeadUni::new(16).with_seed(seed);
            let exec = attack.run(&p, &coalition).unwrap();
            if exec.outcome.elected() == Some(3) {
                successes += 1;
            }
        }
        let attack_arm = report.attack.expect("attack sweeps carry the arm");
        assert_eq!(attack_arm.successes, successes);
        assert_eq!(attack_arm.infeasible, 0);
        assert_eq!(report.trials, 40);
    }

    #[test]
    fn invalid_spec_is_an_error_not_a_panic() {
        // k > n cannot resolve; historically this panicked inside a worker.
        let mut cfg = rushing_sweep(1, SeedMode::Derived);
        cfg.coalition = CoalitionSpec::EquallySpaced { k: 99, offset: 0 };
        let err = run_attack_sweep(&cfg).unwrap_err();
        assert!(err.contains("coalition"), "unexpected message: {err}");
    }

    #[test]
    fn infeasible_trials_are_counted_not_dropped() {
        // Rushing with a too-sparse coalition: every trial refuses.
        let cfg = AttackSweep {
            attack: AttackKind::Rushing,
            n: 16,
            fn_key: FnKeySpec::Fixed(0),
            batch: BatchConfig {
                trials: 10,
                base_seed: 0,
                threads: 1,
            },
            coalition: CoalitionSpec::Explicit {
                positions: vec![5, 11],
            },
            target: TargetSpec::Fixed(1),
            seed_mode: SeedMode::Derived,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        };
        let report = run_attack_sweep(&cfg).expect("valid");
        let arm = report.attack.expect("attack arm");
        assert_eq!(arm.infeasible, 10);
        assert_eq!(arm.successes, 0);
        assert_eq!(report.trials, 10);
        assert_eq!(report.elected(), 0);
    }
}
