//! # fle-harness — deterministic parallel trial execution
//!
//! Every experiment in the reproduction is a Monte-Carlo estimate over
//! thousands of simulated executions. This crate is the batch engine under
//! all of them: it fans `trials` independent simulations out across worker
//! threads and aggregates the outcomes into a [`TrialReport`], with two
//! hard guarantees:
//!
//! 1. **Bit-determinism.** Each trial's seed is a pure function of
//!    `(base_seed, trial_index)` ([`trial_seed`]), trial results are
//!    collected into their index slot, and aggregation walks the slots in
//!    index order — so a batch produces *byte-identical* output no matter
//!    how many threads run it or how they interleave.
//! 2. **Allocation reuse.** Each worker thread owns one reusable
//!    [`ring_sim::Engine`] (preallocated link queues and adjacency
//!    tables), so per-trial setup cost is the node behaviours only, not
//!    the whole simulator working set.
//!
//! ## Layers
//!
//! * [`run_batch`] — the generic core: per-worker state + per-trial
//!   closure → results in trial order.
//! * [`par_seeds`] — the legacy `fle-experiments` surface, now a thin
//!   wrapper over [`run_batch`] (seeds are the raw trial indices, for
//!   compatibility with the recorded experiment tables).
//! * [`run_sweep`] — spec-level batches: build a [`SweepSpec`] (an honest
//!   [`HonestSweep`], an adversarial [`AttackSweep`] or a tree-dictator
//!   [`TreeSweep`]), get a [`TrialReport`] with per-node win counts,
//!   failure counts, message/step summaries and percentiles — plus, for
//!   adversarial grids, attack success counts with Wilson 95% CIs —
//!   serializable to JSON ([`TrialReport::to_json`]) and CSV
//!   ([`TrialReport::to_csv`]). Specs round-trip through deterministic
//!   JSON ([`SweepSpec::to_json`] / [`SweepSpec::parse_json`]) and are
//!   reference-checked by [`SweepSpec::validate`].
//! * [`run_sweep_partial`] / [`ReportPartial`] — the crash-safe form:
//!   any contiguous trial range aggregates into a mergeable partial with
//!   exact metric histograms; disjoint partials [`merge`](ReportPartial::merge)
//!   in any order and [`finish`](ReportPartial::finish) to bytes
//!   identical to the monolithic run. [`run_sweep_checkpointed`] builds
//!   atomic-file checkpoint/resume on top; panicking trials are contained
//!   per-trial as recorded [`TrialFault`]s instead of aborting the sweep.
//!
//! ## Example
//!
//! ```
//! use fle_harness::{BatchConfig, HonestSweep, ProtocolKind, SweepSpec, run_sweep};
//!
//! let spec = SweepSpec::Honest(HonestSweep {
//!     protocol: ProtocolKind::PhaseAsyncLead,
//!     n: 8,
//!     fn_key: 9,
//!     batch: BatchConfig { trials: 64, base_seed: 1, threads: 2 },
//!     batch_width: 0, // 0 = default lockstep width; results are width-invariant
//!     schedule: fle_harness::ScheduleSpec::Fifo,
//!     fault: None,
//! });
//! let report = run_sweep(&spec).expect("valid spec");
//! assert_eq!(report.trials, 64);
//! assert_eq!(report.wins.iter().sum::<u64>() + report.fails.total(), 64);
//! // Identical regardless of thread count:
//! let serial = run_sweep(&SweepSpec::Honest(HonestSweep {
//!     protocol: ProtocolKind::PhaseAsyncLead,
//!     n: 8,
//!     fn_key: 9,
//!     batch: BatchConfig { trials: 64, base_seed: 1, threads: 1 },
//!     batch_width: 0,
//!     schedule: fle_harness::ScheduleSpec::Fifo,
//!     fault: None,
//! }))
//! .expect("valid spec");
//! assert_eq!(report.to_json(), serial.to_json());
//! // ... and regardless of how the trial range is sharded:
//! let mut left = fle_harness::run_sweep_partial(&spec, 0, 40).expect("valid range");
//! let right = fle_harness::run_sweep_partial(&spec, 40, 64).expect("valid range");
//! left.merge(&right).expect("disjoint shards");
//! assert_eq!(left.finish().expect("full coverage").to_json(), report.to_json());
//! // Specs round-trip through JSON for scenario files:
//! assert_eq!(fle_harness::SweepSpec::parse_json(&spec.to_json()), Ok(spec));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod batch;
mod checkpoint;
mod digest;
mod json;
mod partial;
mod report;
mod spec;
mod sweep;
mod tree;

pub use attack::{
    run_attack_partial, run_attack_partial_with_net, run_attack_sweep, run_attack_sweep_with_net,
};
pub use batch::{
    batched_trials, default_threads, par_seeds, run_batch, run_batch_range,
    run_batch_range_grouped, set_default_threads, BatchConfig, TrialFault,
};
pub use checkpoint::{
    run_sweep_checkpointed, write_checkpoint, CheckpointedRun, SweepCheckpoint, CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
};
pub use digest::sha256_hex;
pub use json::Json;
pub use partial::{ReportPartial, PARTIAL_FORMAT, PARTIAL_VERSION};
pub use report::{
    wilson_ci95, AttackSummary, FailCounts, FaultSummary, MetricSummary, TrialOutcome, TrialReport,
};
pub use spec::{
    protocol_key, AttackSweep, CoalitionSpec, FaultSpec, FnKeySpec, GraphSpec, ScheduleSpec,
    SeedMode, SweepSpec, TargetSpec, TreeSweep,
};
// The timed-network and fault-injection building blocks, re-exported so
// spec consumers can construct schedules, per-edge nets and crash plans
// without naming `ring_sim`.
pub use ring_sim::{
    CrashInstant, FaultConfig, FaultPlan, LatencySpec, LinkProfile, TimedNetConfig,
};
pub use sweep::{
    run_honest_partial, run_honest_sweep, run_sweep, run_sweep_partial, HonestSweep, ProtocolKind,
    DEFAULT_BATCH_WIDTH, MAX_BATCH_WIDTH,
};
pub use tree::{run_tree_partial, run_tree_sweep};

use ring_sim::rng::mix;

/// Domain-separation salt for [`trial_seed`] (distinct from the salts used
/// by `SplitMix64::derive`, so harness streams never collide with per-node
/// streams).
const TRIAL_SALT: u64 = 0x7f1e_ba7c_4a11_5eed;

/// Derives the seed of trial `trial_index` in a batch seeded `base_seed`.
///
/// A pure function of its arguments — the cornerstone of the harness's
/// thread-count independence. Workers never share or advance a common RNG;
/// every trial recomputes its own seed from scratch.
///
/// # Examples
///
/// ```
/// use fle_harness::trial_seed;
///
/// assert_eq!(trial_seed(1, 0), trial_seed(1, 0));
/// assert_ne!(trial_seed(1, 0), trial_seed(1, 1));
/// assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
/// ```
pub fn trial_seed(base_seed: u64, trial_index: u64) -> u64 {
    // Two rounds of the SplitMix64 finalizer with the batch seed folded in
    // between: well-mixed, stream-separated, and trivially reproducible.
    mix(mix(trial_index ^ TRIAL_SALT).wrapping_add(base_seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_spread() {
        let mut seen = std::collections::HashSet::new();
        for base in 0..4u64 {
            for i in 0..1000u64 {
                assert!(
                    seen.insert(trial_seed(base, i)),
                    "collision base={base} i={i}"
                );
            }
        }
    }
}
