//! Aggregated batch statistics and their JSON/CSV serializations.
//!
//! Everything here is deterministic down to the byte: aggregation walks
//! trials in index order, floats are produced by fixed-precision
//! formatting, and field order is pinned — so two [`TrialReport`]s built
//! from the same `(protocol, n, trials, base_seed)` serialize identically
//! no matter how many threads ran the batch.
//!
//! Allocation discipline: [`TrialOutcome`] is `Copy` (trials reduce to it
//! with no per-trial heap traffic), and aggregation makes a constant
//! number of batch-level allocations (the win vector plus one
//! pre-capacitated sample vector per metric, sorted in place) — there is
//! no per-trial `Vec` churn anywhere between the engine and the report.

use ring_sim::{Execution, FailReason, Outcome};

/// The per-trial measurement the harness aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// The trial's global outcome.
    pub outcome: Outcome,
    /// Total messages sent in the trial.
    pub messages: u64,
    /// Scheduler steps (wake-ups plus deliveries) consumed.
    pub steps: u64,
}

impl TrialOutcome {
    /// Extracts the measurement from a finished [`Execution`].
    pub fn of(exec: &Execution) -> Self {
        Self {
            outcome: exec.outcome,
            messages: exec.stats.total_sent(),
            steps: exec.stats.steps,
        }
    }
}

/// Failure counts by [`FailReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailCounts {
    /// Trials where some node aborted with `⊥`.
    pub abort: u64,
    /// Trials where two nodes output different values.
    pub disagreement: u64,
    /// Trials that deadlocked.
    pub deadlock: u64,
    /// Trials that hit the step limit.
    pub step_limit: u64,
}

impl FailCounts {
    /// Total failed trials.
    pub fn total(&self) -> u64 {
        self.abort + self.disagreement + self.deadlock + self.step_limit
    }

    fn record(&mut self, reason: FailReason) {
        match reason {
            FailReason::Abort => self.abort += 1,
            FailReason::Disagreement => self.disagreement += 1,
            FailReason::Deadlock => self.deadlock += 1,
            FailReason::StepLimit => self.step_limit += 1,
        }
    }
}

/// Order statistics of one per-trial metric (messages or steps).
///
/// Percentiles use the nearest-rank method on the sorted samples; an empty
/// sample set yields all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricSummary {
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

impl MetricSummary {
    /// Summarizes `samples` (order-independent: sorts a copy).
    pub fn of(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        Self {
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sum as f64 / sorted.len() as f64,
            p50: nearest_rank(&sorted, 50),
            p90: nearest_rank(&sorted, 90),
            p99: nearest_rank(&sorted, 99),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.min,
            self.max,
            fmt_f64(self.mean),
            self.p50,
            self.p90,
            self.p99
        )
    }
}

/// Nearest-rank percentile of pre-sorted samples.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    let rank = (pct as u128 * sorted.len() as u128).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// Fixed-precision float formatting so serialized reports are
/// byte-deterministic.
fn fmt_f64(x: f64) -> String {
    format!("{x:.6}")
}

/// Aggregated statistics of one batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    /// Protocol name (e.g. `PhaseAsyncLead`).
    pub protocol: String,
    /// Ring size.
    pub n: usize,
    /// Number of trials aggregated.
    pub trials: u64,
    /// The batch's base seed.
    pub base_seed: u64,
    /// `wins[i]` = trials that elected node `i`.
    pub wins: Vec<u64>,
    /// Trials electing a value outside `[0, n)` — no protocol in this
    /// workspace produces one; recorded so the accounting always closes.
    pub out_of_range: u64,
    /// Failed trials by reason.
    pub fails: FailCounts,
    /// Summary of per-trial total message counts.
    pub messages: MetricSummary,
    /// Summary of per-trial scheduler step counts.
    pub steps: MetricSummary,
}

impl TrialReport {
    /// Aggregates `outcomes` (in trial order) into a report.
    pub fn from_trials(
        protocol: &str,
        n: usize,
        base_seed: u64,
        outcomes: &[TrialOutcome],
    ) -> Self {
        let mut wins = vec![0u64; n];
        let mut out_of_range = 0;
        let mut fails = FailCounts::default();
        let mut messages = Vec::with_capacity(outcomes.len());
        let mut steps = Vec::with_capacity(outcomes.len());
        for t in outcomes {
            match t.outcome {
                Outcome::Elected(v) if (v as usize) < n => wins[v as usize] += 1,
                Outcome::Elected(_) => out_of_range += 1,
                Outcome::Fail(r) => fails.record(r),
            }
            messages.push(t.messages);
            steps.push(t.steps);
        }
        Self {
            protocol: protocol.to_string(),
            n,
            trials: outcomes.len() as u64,
            base_seed,
            wins,
            out_of_range,
            fails,
            messages: MetricSummary::of(&messages),
            steps: MetricSummary::of(&steps),
        }
    }

    /// Total trials that elected a leader in `[0, n)`.
    pub fn elected(&self) -> u64 {
        self.wins.iter().sum()
    }

    /// Per-node win probabilities (`wins[i] / trials`).
    pub fn win_rates(&self) -> Vec<f64> {
        let t = self.trials.max(1) as f64;
        self.wins.iter().map(|&w| w as f64 / t).collect()
    }

    /// The largest per-node win probability — the quantity the paper's
    /// bias bounds are stated about.
    pub fn max_win_probability(&self) -> f64 {
        self.win_rates().iter().copied().fold(0.0, f64::max)
    }

    /// Serializes to a single-line JSON object with pinned field order.
    ///
    /// Byte-identical for byte-identical batches, regardless of thread
    /// count.
    pub fn to_json(&self) -> String {
        let wins = self
            .wins
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"protocol\":\"{}\",\"n\":{},\"trials\":{},\"base_seed\":{},",
                "\"elected\":{},\"out_of_range\":{},",
                "\"fails\":{{\"abort\":{},\"disagreement\":{},\"deadlock\":{},\"step_limit\":{}}},",
                "\"wins\":[{}],\"messages\":{},\"steps\":{}}}"
            ),
            self.protocol,
            self.n,
            self.trials,
            self.base_seed,
            self.elected(),
            self.out_of_range,
            self.fails.abort,
            self.fails.disagreement,
            self.fails.deadlock,
            self.fails.step_limit,
            wins,
            self.messages.to_json(),
            self.steps.to_json(),
        )
    }

    /// Serializes the per-node win table to CSV
    /// (`node,wins,win_rate` with a header row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,wins,win_rate\n");
        let t = self.trials.max(1) as f64;
        for (i, &w) in self.wins.iter().enumerate() {
            out.push_str(&format!("{i},{w},{}\n", fmt_f64(w as f64 / t)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elected(v: u64, messages: u64, steps: u64) -> TrialOutcome {
        TrialOutcome {
            outcome: Outcome::Elected(v),
            messages,
            steps,
        }
    }

    #[test]
    fn aggregates_wins_and_fails() {
        let outcomes = [
            elected(0, 10, 12),
            elected(2, 10, 14),
            elected(2, 12, 16),
            elected(9, 10, 12), // out of range for n = 4
            TrialOutcome {
                outcome: Outcome::Fail(FailReason::Abort),
                messages: 3,
                steps: 5,
            },
        ];
        let r = TrialReport::from_trials("Test", 4, 7, &outcomes);
        assert_eq!(r.wins, vec![1, 0, 2, 0]);
        assert_eq!(r.out_of_range, 1);
        assert_eq!(r.fails.abort, 1);
        assert_eq!(r.elected(), 3);
        assert_eq!(r.trials, 5);
        assert_eq!(r.messages.min, 3);
        assert_eq!(r.messages.max, 12);
    }

    #[test]
    fn metric_summary_percentiles() {
        let samples: Vec<u64> = (1..=100).collect();
        let m = MetricSummary::of(&samples);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 100);
        assert_eq!(m.p50, 50);
        assert_eq!(m.p90, 90);
        assert_eq!(m.p99, 99);
        assert!((m.mean - 50.5).abs() < 1e-12);
        assert_eq!(MetricSummary::of(&[]), MetricSummary::default());
        let single = MetricSummary::of(&[42]);
        assert_eq!(
            (single.min, single.p50, single.p99, single.max),
            (42, 42, 42, 42)
        );
    }

    #[test]
    fn summary_is_order_independent() {
        let a = MetricSummary::of(&[5, 1, 9, 3, 7]);
        let b = MetricSummary::of(&[9, 7, 5, 3, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn json_and_csv_are_stable() {
        let outcomes = [elected(1, 8, 10), elected(0, 8, 11)];
        let r = TrialReport::from_trials("Test", 2, 3, &outcomes);
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        assert!(json.starts_with("{\"protocol\":\"Test\",\"n\":2,\"trials\":2,\"base_seed\":3,"));
        assert!(json.contains("\"wins\":[1,1]"));
        let csv = r.to_csv();
        assert_eq!(csv, "node,wins,win_rate\n0,1,0.500000\n1,1,0.500000\n");
    }
}
