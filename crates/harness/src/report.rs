//! Aggregated batch statistics and their JSON/CSV serializations.
//!
//! Everything here is deterministic down to the byte: aggregation walks
//! trials in index order, floats are produced by fixed-precision
//! formatting, and field order is pinned — so two [`TrialReport`]s built
//! from the same `(protocol, n, trials, base_seed)` serialize identically
//! no matter how many threads ran the batch.
//!
//! Allocation discipline: [`TrialOutcome`] is `Copy` (trials reduce to it
//! with no per-trial heap traffic), and aggregation makes a constant
//! number of batch-level allocations (the win vector plus one
//! pre-capacitated sample vector per metric, sorted in place) — there is
//! no per-trial `Vec` churn anywhere between the engine and the report.

use crate::batch::TrialFault;
use crate::json::Json;
use ring_sim::{Execution, FailReason, Outcome};

/// The per-trial measurement the harness aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// The trial's global outcome.
    pub outcome: Outcome,
    /// Total messages sent in the trial.
    pub messages: u64,
    /// Scheduler steps (wake-ups plus deliveries) consumed.
    pub steps: u64,
}

impl TrialOutcome {
    /// Extracts the measurement from a finished [`Execution`].
    pub fn of(exec: &Execution) -> Self {
        Self {
            outcome: exec.outcome,
            messages: exec.stats.total_sent(),
            steps: exec.stats.steps,
        }
    }
}

/// Failure counts by [`FailReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailCounts {
    /// Trials where some node aborted with `⊥`.
    pub abort: u64,
    /// Trials where two nodes output different values.
    pub disagreement: u64,
    /// Trials that deadlocked.
    pub deadlock: u64,
    /// Trials that hit the step limit.
    pub step_limit: u64,
    /// Trials partitioned by an injected crash fault (quiescence with
    /// live non-terminated survivors). Always 0 on the fault-free path;
    /// serialized only when nonzero or the report carries a fault arm, so
    /// fault-free reports keep their historical bytes.
    pub crash_partition: u64,
}

impl FailCounts {
    /// Total failed trials.
    pub fn total(&self) -> u64 {
        self.abort + self.disagreement + self.deadlock + self.step_limit + self.crash_partition
    }

    pub(crate) fn record(&mut self, reason: FailReason) {
        match reason {
            FailReason::Abort => self.abort += 1,
            FailReason::Disagreement => self.disagreement += 1,
            FailReason::Deadlock => self.deadlock += 1,
            FailReason::StepLimit => self.step_limit += 1,
            FailReason::CrashPartition => self.crash_partition += 1,
        }
    }
}

/// Order statistics of one per-trial metric (messages or steps).
///
/// Percentiles use the nearest-rank method on the sorted samples; an empty
/// sample set yields all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricSummary {
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

impl MetricSummary {
    /// Summarizes `samples` (order-independent: sorts a copy).
    pub fn of(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        Self {
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sum as f64 / sorted.len() as f64,
            p50: nearest_rank(&sorted, 50),
            p90: nearest_rank(&sorted, 90),
            p99: nearest_rank(&sorted, 99),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.min,
            self.max,
            fmt_f64(self.mean),
            self.p50,
            self.p90,
            self.p99
        )
    }
}

/// Nearest-rank percentile of pre-sorted samples.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    let rank = (pct as u128 * sorted.len() as u128).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// Wilson score 95% confidence interval for a binomial proportion.
///
/// Returns `(lo, hi)` for `successes` out of `trials` Bernoulli trials at
/// `z = 1.96`. Unlike the normal approximation it never leaves `[0, 1]`
/// and stays informative at the boundary rates the attack tables live at
/// (`Pr = 0` and `Pr = 1`). `trials = 0` yields the vacuous `(0, 1)`.
pub fn wilson_ci95(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96_f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The attack arm of a [`TrialReport`]: how many trials achieved the
/// attack's goal, and how many were refused as infeasible before running.
///
/// Only reports aggregated from attack sweeps carry one; honest reports
/// leave [`TrialReport::attack`] as `None` and serialize exactly as
/// before, so every pre-existing golden pin is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackSummary {
    /// Trials where the attack achieved its goal (e.g. elected its
    /// target).
    pub successes: u64,
    /// Trials the attack refused to run (infeasible plan for that seed's
    /// instance). These count toward `trials` but contribute no execution
    /// statistics.
    pub infeasible: u64,
}

impl AttackSummary {
    /// Success rate over *all* trials (infeasible ones count as failures).
    pub fn success_rate(&self, trials: u64) -> f64 {
        self.successes as f64 / trials.max(1) as f64
    }

    /// Wilson 95% CI of the success rate over all trials.
    pub fn ci95(&self, trials: u64) -> (f64, f64) {
        wilson_ci95(self.successes, trials)
    }

    fn to_json(self, trials: u64) -> String {
        let (lo, hi) = self.ci95(trials);
        format!(
            "{{\"successes\":{},\"infeasible\":{},\"success_rate\":{},\"ci95_lo\":{},\"ci95_hi\":{}}}",
            self.successes,
            self.infeasible,
            fmt_f64(self.success_rate(trials)),
            fmt_f64(lo),
            fmt_f64(hi),
        )
    }
}

/// The fault arm of a [`TrialReport`]: how many trials saw at least one
/// injected crash fire, plus the survival probability (elected a leader
/// despite the faults) with its Wilson 95% CI.
///
/// Only reports aggregated from fault-enabled sweeps carry one; fault-free
/// reports leave [`TrialReport::fault`] as `None` and serialize exactly as
/// before, so every pre-existing golden pin is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSummary {
    /// Trials in which at least one planned crash fired before the
    /// execution ended.
    pub crashed_trials: u64,
}

impl FaultSummary {
    /// Survival rate: `elected / trials` (a crashed trial that still
    /// elects a leader counts as surviving).
    pub fn survival_rate(elected: u64, trials: u64) -> f64 {
        elected as f64 / trials.max(1) as f64
    }

    fn to_json(self, elected: u64, trials: u64) -> String {
        let (lo, hi) = wilson_ci95(elected, trials);
        format!(
            "{{\"crashed_trials\":{},\"survival_rate\":{},\"ci95_lo\":{},\"ci95_hi\":{}}}",
            self.crashed_trials,
            fmt_f64(Self::survival_rate(elected, trials)),
            fmt_f64(lo),
            fmt_f64(hi),
        )
    }
}

/// Fixed-precision float formatting so serialized reports are
/// byte-deterministic.
fn fmt_f64(x: f64) -> String {
    format!("{x:.6}")
}

/// Aggregated statistics of one batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    /// Protocol name (e.g. `PhaseAsyncLead`).
    pub protocol: String,
    /// Ring size.
    pub n: usize,
    /// Number of trials aggregated.
    pub trials: u64,
    /// The batch's base seed.
    pub base_seed: u64,
    /// `wins[i]` = trials that elected node `i`.
    pub wins: Vec<u64>,
    /// Trials electing a value outside `[0, n)` — no protocol in this
    /// workspace produces one; recorded so the accounting always closes.
    pub out_of_range: u64,
    /// Failed trials by reason.
    pub fails: FailCounts,
    /// Summary of per-trial total message counts.
    pub messages: MetricSummary,
    /// Summary of per-trial scheduler step counts.
    pub steps: MetricSummary,
    /// Attack-sweep arm: present only for reports aggregated from attack
    /// trials. `None` keeps honest serializations byte-identical to the
    /// pre-attack-sweep format.
    pub attack: Option<AttackSummary>,
    /// Fault-injection arm: present only for reports aggregated from
    /// fault-enabled sweeps. `None` keeps fault-free serializations
    /// byte-identical to the pre-fault format.
    pub fault: Option<FaultSummary>,
    /// Contained trial panics (index + repro seed), in index order. These
    /// trials are excluded from `trials` and every statistic; an empty
    /// vector (every fault-free run) serializes exactly as before, so
    /// golden pins are unaffected.
    pub faults: Vec<TrialFault>,
}

impl TrialReport {
    /// Aggregates `outcomes` (in trial order) into a report.
    pub fn from_trials(
        protocol: &str,
        n: usize,
        base_seed: u64,
        outcomes: &[TrialOutcome],
    ) -> Self {
        let mut wins = vec![0u64; n];
        let mut out_of_range = 0;
        let mut fails = FailCounts::default();
        let mut messages = Vec::with_capacity(outcomes.len());
        let mut steps = Vec::with_capacity(outcomes.len());
        for t in outcomes {
            match t.outcome {
                Outcome::Elected(v) if (v as usize) < n => wins[v as usize] += 1,
                Outcome::Elected(_) => out_of_range += 1,
                Outcome::Fail(r) => fails.record(r),
            }
            messages.push(t.messages);
            steps.push(t.steps);
        }
        Self {
            protocol: protocol.to_string(),
            n,
            trials: outcomes.len() as u64,
            base_seed,
            wins,
            out_of_range,
            fails,
            messages: MetricSummary::of(&messages),
            steps: MetricSummary::of(&steps),
            attack: None,
            fault: None,
            faults: Vec::new(),
        }
    }

    /// Aggregates attack trials (in trial order) into a report.
    ///
    /// Each element is `(outcome, success)`: `outcome = None` marks a
    /// trial the attack refused as infeasible (counted in
    /// [`AttackSummary::infeasible`], contributing no execution
    /// statistics), and `success` says whether the attack achieved its
    /// goal. The returned report carries an [`AttackSummary`] and thus
    /// serializes with a trailing `attack` arm.
    pub fn from_attack_trials(
        protocol: &str,
        n: usize,
        base_seed: u64,
        trials: &[(Option<TrialOutcome>, bool)],
    ) -> Self {
        let ran: Vec<TrialOutcome> = trials.iter().filter_map(|&(o, _)| o).collect();
        let mut report = Self::from_trials(protocol, n, base_seed, &ran);
        report.trials = trials.len() as u64;
        report.attack = Some(AttackSummary {
            successes: trials.iter().filter(|&&(_, s)| s).count() as u64,
            infeasible: trials.iter().filter(|&&(o, _)| o.is_none()).count() as u64,
        });
        report
    }

    /// Total trials that elected a leader in `[0, n)`.
    pub fn elected(&self) -> u64 {
        self.wins.iter().sum()
    }

    /// Per-node win probabilities (`wins[i] / trials`).
    pub fn win_rates(&self) -> Vec<f64> {
        let t = self.trials.max(1) as f64;
        self.wins.iter().map(|&w| w as f64 / t).collect()
    }

    /// The largest per-node win probability — the quantity the paper's
    /// bias bounds are stated about.
    pub fn max_win_probability(&self) -> f64 {
        self.win_rates().iter().copied().fold(0.0, f64::max)
    }

    /// Serializes to a single-line JSON object with pinned field order.
    ///
    /// Byte-identical for byte-identical batches, regardless of thread
    /// count.
    pub fn to_json(&self) -> String {
        let wins = self
            .wins
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        // `crash_partition` slots into the fails object only on
        // fault-enabled reports (or if a crash partition somehow got
        // counted), so fault-free reports keep the exact historical bytes.
        let crash_partition = if self.fault.is_some() || self.fails.crash_partition > 0 {
            format!(",\"crash_partition\":{}", self.fails.crash_partition)
        } else {
            String::new()
        };
        let mut out = format!(
            concat!(
                "{{\"protocol\":\"{}\",\"n\":{},\"trials\":{},\"base_seed\":{},",
                "\"elected\":{},\"out_of_range\":{},",
                "\"fails\":{{\"abort\":{},\"disagreement\":{},\"deadlock\":{},\"step_limit\":{}{}}},",
                "\"wins\":[{}],\"messages\":{},\"steps\":{}}}"
            ),
            self.protocol,
            self.n,
            self.trials,
            self.base_seed,
            self.elected(),
            self.out_of_range,
            self.fails.abort,
            self.fails.disagreement,
            self.fails.deadlock,
            self.fails.step_limit,
            crash_partition,
            wins,
            self.messages.to_json(),
            self.steps.to_json(),
        );
        if let Some(a) = self.attack {
            // The attack arm slots in before the closing brace; honest
            // reports (attack = None) keep the exact historical bytes.
            out.pop();
            out.push_str(&format!(",\"attack\":{}}}", a.to_json(self.trials)));
        }
        if let Some(f) = self.fault {
            // Likewise the fault arm: fault-free reports are unchanged.
            out.pop();
            out.push_str(&format!(
                ",\"fault\":{}}}",
                f.to_json(self.elected(), self.trials)
            ));
        }
        if !self.faults.is_empty() {
            let list = self
                .faults
                .iter()
                .map(|f| {
                    format!(
                        "{{\"index\":{},\"seed\":{},\"message\":\"{}\"}}",
                        f.index,
                        f.seed,
                        Json::escape(&f.message)
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            out.pop();
            out.push_str(&format!(",\"faults\":[{list}]}}"));
        }
        out
    }

    /// Serializes the per-node win table to CSV
    /// (`node,wins,win_rate` with a header row). Attack reports append a
    /// second section with the success rate and its Wilson 95% CI.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,wins,win_rate\n");
        let t = self.trials.max(1) as f64;
        for (i, &w) in self.wins.iter().enumerate() {
            out.push_str(&format!("{i},{w},{}\n", fmt_f64(w as f64 / t)));
        }
        if let Some(a) = self.attack {
            let (lo, hi) = a.ci95(self.trials);
            out.push_str("successes,infeasible,success_rate,ci95_lo,ci95_hi\n");
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                a.successes,
                a.infeasible,
                fmt_f64(a.success_rate(self.trials)),
                fmt_f64(lo),
                fmt_f64(hi),
            ));
        }
        if let Some(f) = self.fault {
            let (lo, hi) = wilson_ci95(self.elected(), self.trials);
            out.push_str("crashed_trials,survival_rate,ci95_lo,ci95_hi\n");
            out.push_str(&format!(
                "{},{},{},{}\n",
                f.crashed_trials,
                fmt_f64(FaultSummary::survival_rate(self.elected(), self.trials)),
                fmt_f64(lo),
                fmt_f64(hi),
            ));
        }
        if !self.faults.is_empty() {
            out.push_str("fault_index,seed,message\n");
            for f in &self.faults {
                out.push_str(&format!(
                    "{},{},\"{}\"\n",
                    f.index,
                    f.seed,
                    f.message.replace('"', "\"\"")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elected(v: u64, messages: u64, steps: u64) -> TrialOutcome {
        TrialOutcome {
            outcome: Outcome::Elected(v),
            messages,
            steps,
        }
    }

    #[test]
    fn aggregates_wins_and_fails() {
        let outcomes = [
            elected(0, 10, 12),
            elected(2, 10, 14),
            elected(2, 12, 16),
            elected(9, 10, 12), // out of range for n = 4
            TrialOutcome {
                outcome: Outcome::Fail(FailReason::Abort),
                messages: 3,
                steps: 5,
            },
        ];
        let r = TrialReport::from_trials("Test", 4, 7, &outcomes);
        assert_eq!(r.wins, vec![1, 0, 2, 0]);
        assert_eq!(r.out_of_range, 1);
        assert_eq!(r.fails.abort, 1);
        assert_eq!(r.elected(), 3);
        assert_eq!(r.trials, 5);
        assert_eq!(r.messages.min, 3);
        assert_eq!(r.messages.max, 12);
    }

    #[test]
    fn metric_summary_percentiles() {
        let samples: Vec<u64> = (1..=100).collect();
        let m = MetricSummary::of(&samples);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 100);
        assert_eq!(m.p50, 50);
        assert_eq!(m.p90, 90);
        assert_eq!(m.p99, 99);
        assert!((m.mean - 50.5).abs() < 1e-12);
        assert_eq!(MetricSummary::of(&[]), MetricSummary::default());
        let single = MetricSummary::of(&[42]);
        assert_eq!(
            (single.min, single.p50, single.p99, single.max),
            (42, 42, 42, 42)
        );
    }

    #[test]
    fn summary_is_order_independent() {
        let a = MetricSummary::of(&[5, 1, 9, 3, 7]);
        let b = MetricSummary::of(&[9, 7, 5, 3, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn wilson_ci95_matches_binomial_fixtures() {
        // 50/100 at z = 1.96: the textbook Wilson interval (0.4038, 0.5962).
        let (lo, hi) = wilson_ci95(50, 100);
        assert!((lo - 0.4038).abs() < 5e-4, "lo = {lo}");
        assert!((hi - 0.5962).abs() < 5e-4, "hi = {hi}");
        // 8/10: (0.4902, 0.9433) (e.g. R binom.confint method "wilson").
        let (lo, hi) = wilson_ci95(8, 10);
        assert!((lo - 0.4902).abs() < 5e-4, "lo = {lo}");
        assert!((hi - 0.9433).abs() < 5e-4, "hi = {hi}");
        // Boundary rates stay exact at the boundary but have width.
        let (lo, hi) = wilson_ci95(0, 500);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01, "hi = {hi}");
        let (lo, hi) = wilson_ci95(500, 500);
        // Exactly 1 in real arithmetic; floats land within one ulp.
        assert!((hi - 1.0).abs() < 1e-12, "hi = {hi}");
        assert!(lo > 0.99 && lo < 1.0, "lo = {lo}");
        // Degenerate batch: vacuous interval.
        assert_eq!(wilson_ci95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn attack_aggregation_counts_infeasible_and_successes() {
        let trials = [
            (Some(elected(3, 10, 12)), true),
            (Some(elected(0, 10, 12)), false),
            (None, false), // infeasible: no execution statistics
            (Some(elected(3, 11, 13)), true),
        ];
        let r = TrialReport::from_attack_trials("Test", 4, 1, &trials);
        assert_eq!(r.trials, 4);
        assert_eq!(r.wins, vec![1, 0, 0, 2]);
        let a = r.attack.expect("attack arm");
        assert_eq!(a.successes, 2);
        assert_eq!(a.infeasible, 1);
        assert!((a.success_rate(r.trials) - 0.5).abs() < 1e-12);
        // Metric summaries cover only the trials that actually ran.
        assert_eq!(r.messages.max, 11);
        let json = r.to_json();
        assert!(json.ends_with(
            "\"attack\":{\"successes\":2,\"infeasible\":1,\"success_rate\":0.500000,\
             \"ci95_lo\":0.150036,\"ci95_hi\":0.849964}}"
        ));
        let csv = r.to_csv();
        assert!(csv.contains("successes,infeasible,success_rate,ci95_lo,ci95_hi\n"));
        assert!(csv.ends_with("2,1,0.500000,0.150036,0.849964\n"));
    }

    #[test]
    fn faults_section_appears_only_when_nonempty() {
        let mut r = TrialReport::from_trials("Test", 2, 3, &[elected(1, 8, 10)]);
        let plain = r.to_json();
        assert!(!plain.contains("faults"));
        r.faults.push(TrialFault {
            index: 4,
            seed: 99,
            message: "boom \"quoted\"".into(),
        });
        let json = r.to_json();
        assert!(json.starts_with(plain.trim_end_matches('}')));
        assert!(json.ends_with(
            ",\"faults\":[{\"index\":4,\"seed\":99,\"message\":\"boom \\\"quoted\\\"\"}]}"
        ));
        let csv = r.to_csv();
        assert!(csv.ends_with("fault_index,seed,message\n4,99,\"boom \"\"quoted\"\"\"\n"));
    }

    #[test]
    fn json_and_csv_are_stable() {
        let outcomes = [elected(1, 8, 10), elected(0, 8, 11)];
        let r = TrialReport::from_trials("Test", 2, 3, &outcomes);
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        assert!(json.starts_with("{\"protocol\":\"Test\",\"n\":2,\"trials\":2,\"base_seed\":3,"));
        assert!(json.contains("\"wins\":[1,1]"));
        let csv = r.to_csv();
        assert_eq!(csv, "node,wins,win_rate\n0,1,0.500000\n1,1,0.500000\n");
    }
}
