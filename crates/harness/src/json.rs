//! A minimal hand-rolled JSON reader for sweep-spec files.
//!
//! The workspace is dependency-free by policy, so scenario files are
//! parsed with this small recursive-descent reader instead of `serde`.
//! It supports the full JSON grammar except for one deliberate
//! restriction: numbers are kept as their raw source tokens (the spec
//! layer needs exact `u64` round-trips, which `f64` cannot provide), and
//! only integer accessors are exposed.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token (e.g. `"42"`, `"-1"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The string payload, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if this is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is a [`Json::Obj`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Escapes `s` for embedding inside a JSON string literal (the
    /// surrounding quotes are the caller's). Round-trips through
    /// [`Json::parse`].
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("malformed number at byte {start}"));
        }
        // Fractions / exponents are valid JSON but no spec field uses
        // them; reject loudly rather than silently truncate.
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (spec fields are integers)"
            ));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in spec files;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos - 1
                            ));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            r#" {"a": [1, 2, {"b": "x\ny"}], "c": null, "d": true, "e": 18446744073709551615} "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_u64(), Some(u64::MAX));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_usize(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1.5",
            "1e3",
            "\"unterminated",
            "{} trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnl\nback\\slash",
            "\u{1}\u{1f}",
        ] {
            let doc = format!("\"{}\"", Json::escape(s));
            assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(s), "doc {doc:?}");
        }
    }

    #[test]
    fn empty_containers_and_order() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<_> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
