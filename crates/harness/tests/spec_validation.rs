//! Spec-file validation suite: malformed [`SweepSpec`] JSON must fail
//! with actionable messages (naming the offending field or constraint),
//! and every well-formed spec must round-trip and validate cleanly.
//!
//! These are the errors a user sees from
//! `fle-lab attack-sweep --spec file.json`, so the messages are pinned
//! by substring: a refactor that silently degrades them to "invalid
//! spec" fails here.

use fle_attacks::AttackKind;
use fle_harness::{
    AttackSweep, BatchConfig, CoalitionSpec, FnKeySpec, GraphSpec, HonestSweep, LatencySpec,
    ProtocolKind, ScheduleSpec, SeedMode, SweepSpec, TargetSpec, TreeSweep,
};

/// Asserts `src` fails to parse and the error mentions `needle`.
fn assert_parse_error(src: &str, needle: &str) {
    let err = SweepSpec::parse_json(src).expect_err(src);
    assert!(err.contains(needle), "error for {src:?}: {err}");
}

/// Asserts `spec` fails validation and the error mentions `needle`.
fn assert_invalid(spec: SweepSpec, needle: &str) {
    let err = spec.validate().expect_err("spec must be invalid");
    assert!(err.contains(needle), "unexpected message: {err}");
}

fn attack_spec(attack: AttackKind, n: usize, coalition: CoalitionSpec) -> AttackSweep {
    AttackSweep {
        attack,
        n,
        fn_key: FnKeySpec::Fixed(0),
        batch: BatchConfig {
            trials: 10,
            base_seed: 0,
            threads: 0,
        },
        coalition,
        target: TargetSpec::Fixed(0),
        seed_mode: SeedMode::Derived,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    }
}

#[test]
fn malformed_documents_name_the_offending_field() {
    assert_parse_error("{", "expected '\"' at byte 1");
    assert_parse_error("{}", "missing required field \"sweep\"");
    assert_parse_error(r#"{"sweep":"nope"}"#, "unknown sweep kind \"nope\"");
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","n":8,"trials":10,"bogus":1}"#,
        "unknown field \"bogus\" in honest sweep",
    );
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"warp","n":8,"trials":10}"#,
        "unknown protocol 'warp'",
    );
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","trials":10}"#,
        "missing required field \"n\"",
    );
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","n":8,"trials":1.5}"#,
        "non-integer number",
    );
    assert_parse_error(
        r#"{"sweep":"attack","attack":"warp","n":8,"trials":10,
           "coalition":{"placement":"cubic"}}"#,
        "unknown attack 'warp'",
    );
    assert_parse_error(
        r#"{"sweep":"attack","attack":"rushing","n":16,"trials":10}"#,
        "missing required field \"coalition\"",
    );
    assert_parse_error(
        r#"{"sweep":"tree_dictator","trials":10}"#,
        "missing required field \"graph\"",
    );
}

#[test]
fn malformed_timed_schedules_name_the_offending_field() {
    // Unknown key inside the schedule object.
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","n":8,"trials":10,
           "schedule":{"mode":"timed","jitter":3}}"#,
        "unknown field \"jitter\" in schedule",
    );
    // Unknown schedule mode.
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","n":8,"trials":10,
           "schedule":{"mode":"warp"}}"#,
        "unknown schedule mode \"warp\"",
    );
    // Malformed latency: unknown distribution.
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","n":8,"trials":10,
           "schedule":{"mode":"timed","latency":{"dist":"pareto","ns":3}}}"#,
        "unknown latency dist \"pareto\"",
    );
    // Malformed latency: missing bound.
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","n":8,"trials":10,
           "schedule":{"mode":"timed","latency":{"dist":"uniform","lo":1}}}"#,
        "latency: missing required field \"hi\"",
    );
    // Fifo mode takes no further keys.
    assert_parse_error(
        r#"{"sweep":"honest","protocol":"phase","n":8,"trials":10,
           "schedule":{"mode":"fifo","loss_permille":5}}"#,
        "unknown field \"loss_permille\" in schedule",
    );
}

#[test]
fn validate_rejects_out_of_range_timed_schedules() {
    let timed = |schedule| {
        let mut spec = attack_spec(
            AttackKind::Rushing,
            16,
            CoalitionSpec::EquallySpaced { k: 4, offset: 1 },
        );
        spec.schedule = schedule;
        SweepSpec::Attack(spec)
    };
    // Probabilities above 1 (1000 permille) are rejected by name.
    assert_invalid(
        timed(ScheduleSpec::Timed {
            latency: LatencySpec::ZERO,
            loss_permille: 1001,
            dup_permille: 0,
        }),
        "schedule loss_permille must be <= 1000",
    );
    assert_invalid(
        timed(ScheduleSpec::Timed {
            latency: LatencySpec::ZERO,
            loss_permille: 0,
            dup_permille: 2000,
        }),
        "schedule dup_permille must be <= 1000",
    );
    // Zero-width uniform latency ranges are degenerate.
    assert_invalid(
        timed(ScheduleSpec::Timed {
            latency: LatencySpec::Uniform { lo: 5, hi: 5 },
            loss_permille: 0,
            dup_permille: 0,
        }),
        "uniform latency needs hi > lo",
    );
    assert_invalid(
        timed(ScheduleSpec::Timed {
            latency: LatencySpec::TwoPoint {
                lo: 1,
                hi: 10,
                hi_permille: 1500,
            },
            loss_permille: 0,
            dup_permille: 0,
        }),
        "two_point hi_permille must be <= 1000",
    );
    // A well-formed timed spec round-trips and validates.
    let spec = timed(ScheduleSpec::Timed {
        latency: LatencySpec::TwoPoint {
            lo: 10,
            hi: 500,
            hi_permille: 200,
        },
        loss_permille: 50,
        dup_permille: 10,
    });
    assert_eq!(SweepSpec::parse_json(&spec.to_json()), Ok(spec.clone()));
    spec.validate().unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn validate_rejects_out_of_range_references() {
    // Ring below the protocol minimum.
    assert_invalid(
        SweepSpec::Honest(HonestSweep {
            protocol: ProtocolKind::PhaseAsyncLead,
            n: 2,
            fn_key: 0,
            batch: BatchConfig {
                trials: 10,
                base_seed: 0,
                threads: 0,
            },
            batch_width: 0,
            schedule: ScheduleSpec::Fifo,
            fault: None,
        }),
        "needs n >= 4",
    );
    // Zero trials.
    let mut empty = attack_spec(AttackKind::Rushing, 16, CoalitionSpec::Cubic);
    empty.batch.trials = 0;
    assert_invalid(SweepSpec::Attack(empty), "trials must be >= 1");
    // Single-adversary attacks reject coalitions.
    assert_invalid(
        SweepSpec::Attack(attack_spec(
            AttackKind::BasicSingle,
            16,
            CoalitionSpec::EquallySpaced { k: 2, offset: 0 },
        )),
        "takes a single adversary",
    );
    // The cubic attack dictates its own Theorem 4.3 layout.
    assert_invalid(
        SweepSpec::Attack(attack_spec(
            AttackKind::Cubic,
            64,
            CoalitionSpec::EquallySpaced { k: 8, offset: 0 },
        )),
        "Theorem 4.3 layout",
    );
    // Coalition positions must lie on the ring.
    assert!(SweepSpec::Attack(attack_spec(
        AttackKind::Rushing,
        16,
        CoalitionSpec::Explicit {
            positions: vec![3, 99],
        },
    ))
    .validate()
    .is_err());
    // Fixed targets are range-checked against the ring…
    let mut spec = attack_spec(
        AttackKind::Rushing,
        16,
        CoalitionSpec::EquallySpaced { k: 4, offset: 1 },
    );
    spec.target = TargetSpec::Fixed(16);
    assert_invalid(SweepSpec::Attack(spec), "target 16 out of range for n=16");
    // …and wakeup_mask's against the coalition (member index).
    let mut spec = attack_spec(
        AttackKind::WakeupMask,
        12,
        CoalitionSpec::Contiguous { k: 3, start: 0 },
    );
    spec.target = TargetSpec::Fixed(3);
    assert_invalid(
        SweepSpec::Attack(spec),
        "wakeup_mask target is a coalition member index; 3 out of range for k=3",
    );
    // Tree targets are checked against the graph's vertex count.
    assert_invalid(
        SweepSpec::TreeDictator(TreeSweep {
            graph: GraphSpec::Path(8),
            batch: BatchConfig {
                trials: 10,
                base_seed: 0,
                threads: 0,
            },
            target: TargetSpec::Fixed(8),
            seed_mode: SeedMode::Derived,
        }),
        "target 8 out of range for graph n=8",
    );
}

#[test]
fn well_formed_specs_round_trip_and_validate() {
    let coalitions = [
        CoalitionSpec::EquallySpaced { k: 4, offset: 1 },
        CoalitionSpec::Explicit {
            positions: vec![1, 5, 9, 13],
        },
        CoalitionSpec::RandomLocated {
            k: 4,
            layout_seed: 7,
        },
    ];
    for coalition in coalitions {
        let spec = SweepSpec::Attack(attack_spec(AttackKind::Rushing, 16, coalition));
        assert_eq!(SweepSpec::parse_json(&spec.to_json()), Ok(spec.clone()));
        spec.validate().unwrap_or_else(|e| panic!("{e}"));
    }
    let spec = SweepSpec::Attack(attack_spec(AttackKind::Cubic, 64, CoalitionSpec::Cubic));
    assert_eq!(SweepSpec::parse_json(&spec.to_json()), Ok(spec.clone()));
    spec.validate().unwrap_or_else(|e| panic!("{e}"));

    let graphs = [
        GraphSpec::Cycle(9),
        GraphSpec::Grid { rows: 3, cols: 4 },
        GraphSpec::RandomConnected {
            n: 12,
            permille: 250,
            seed: 4,
        },
        GraphSpec::Figure2,
    ];
    for graph in graphs {
        let spec = SweepSpec::TreeDictator(TreeSweep {
            graph,
            batch: BatchConfig {
                trials: 5,
                base_seed: 2,
                threads: 0,
            },
            target: TargetSpec::SeedProduct { multiplier: 5 },
            seed_mode: SeedMode::RawIndex,
        });
        assert_eq!(SweepSpec::parse_json(&spec.to_json()), Ok(spec.clone()));
        spec.validate().unwrap_or_else(|e| panic!("{e}"));
    }
}
