//! Thread-count independence of the harness.
//!
//! The contract: a batch's aggregated [`TrialReport`] — and its JSON and
//! CSV serializations — are *byte-identical* no matter how many worker
//! threads run it. Seeds are pure functions of `(base_seed, index)`,
//! results land in their index slot, and aggregation walks slots in
//! order, so 1, 2 and 8 threads must be indistinguishable in output.

use fle_harness::{
    run_batch, run_honest_sweep, BatchConfig, HonestSweep, ProtocolKind, ScheduleSpec, TrialReport,
};

fn sweep_with_threads(
    protocol: ProtocolKind,
    n: usize,
    trials: u64,
    threads: usize,
) -> TrialReport {
    run_honest_sweep(&HonestSweep {
        protocol,
        n,
        fn_key: 9,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    })
}

#[test]
fn sweep_reports_identical_across_thread_counts() {
    for &protocol in ProtocolKind::ALL {
        let reference = sweep_with_threads(protocol, 16, 200, 1);
        for threads in [2, 3, 8] {
            let report = sweep_with_threads(protocol, 16, 200, threads);
            assert_eq!(report, reference, "{protocol:?} at {threads} threads");
            assert_eq!(
                report.to_json(),
                reference.to_json(),
                "{protocol:?} JSON at {threads} threads"
            );
            assert_eq!(
                report.to_csv(),
                reference.to_csv(),
                "{protocol:?} CSV at {threads} threads"
            );
        }
    }
}

#[test]
fn thread_count_exceeding_trials_is_fine() {
    let reference = sweep_with_threads(ProtocolKind::ALeadUni, 8, 5, 1);
    let wide = sweep_with_threads(ProtocolKind::ALeadUni, 8, 5, 64);
    assert_eq!(wide, reference);
}

#[test]
fn batch_slots_are_index_ordered_regardless_of_worker_partition() {
    // Workers get contiguous chunks; uneven trial counts exercise the
    // short-last-chunk path.
    for trials in [1u64, 7, 97, 100] {
        let run = |threads| {
            run_batch(
                &BatchConfig {
                    trials,
                    base_seed: 3,
                    threads,
                },
                || (),
                |(), index, seed| (index, seed),
            )
        };
        let reference = run(1);
        assert_eq!(
            reference.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            (0..trials).collect::<Vec<_>>()
        );
        for threads in [2, 5, 8] {
            assert_eq!(run(threads), reference, "trials={trials} threads={threads}");
        }
    }
}
