//! Pins the sweep workers' instance-hoisting contract: the
//! seed-independent protocol state (`PhaseParams`, the keyed `RandomFn`)
//! is built once per worker per `(protocol, n, fn_key)` config — never
//! once per trial. `fle_core` counts `PhaseAsyncLead::new` calls
//! process-wide, so these tests live alone in their own binary (no other
//! test here may construct the protocol concurrently).

use fle_core::protocols::phase_async_builds;
use fle_harness::{run_honest_sweep, BatchConfig, HonestSweep, ProtocolKind, ScheduleSpec};

fn sweep(trials: u64, threads: usize) {
    let report = run_honest_sweep(&HonestSweep {
        protocol: ProtocolKind::PhaseAsyncLead,
        n: 8,
        fn_key: 9,
        batch: BatchConfig {
            trials,
            base_seed: 1,
            threads,
        },
        batch_width: 0,
        schedule: ScheduleSpec::Fifo,
        fault: None,
    });
    assert_eq!(report.trials, trials);
}

#[test]
fn protocol_instance_is_built_once_per_worker() {
    // Single-threaded: exactly one worker, so exactly one construction —
    // regardless of the trial count.
    let before = phase_async_builds();
    sweep(64, 1);
    assert_eq!(
        phase_async_builds() - before,
        1,
        "PhaseAsyncLead::new must run once per worker, not per trial"
    );

    // Multi-threaded: at most one construction per worker thread.
    let before = phase_async_builds();
    sweep(64, 4);
    let builds = phase_async_builds() - before;
    assert!(
        (1..=4).contains(&builds),
        "expected 1..=4 per-worker constructions, got {builds}"
    );
}
