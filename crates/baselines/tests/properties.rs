//! Property-based tests for the classical baselines.

use fle_baselines::{random_ids, ChangRoberts, ItaiRodeh, PetersonDkr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both deterministic algorithms elect the position of the maximal id
    /// for arbitrary id permutations.
    #[test]
    fn extrema_finding_is_correct(n in 2usize..64, seed in any::<u64>()) {
        let ids = random_ids(n, seed);
        let max_pos = (0..n).max_by_key(|&i| ids[i]).unwrap() as u64;
        let cr = ChangRoberts::new(ids.clone()).run();
        prop_assert_eq!(cr.outcome.elected(), Some(max_pos));
        let pd = PetersonDkr::new(ids).run();
        prop_assert_eq!(pd.outcome.elected(), Some(max_pos));
    }

    /// Chang–Roberts message count is between n+n (best) and
    /// n(n+1)/2 + n (worst), Peterson's within 2n(log n + 2) + 2n.
    #[test]
    fn message_bounds_hold(n in 2usize..64, seed in any::<u64>()) {
        let ids = random_ids(n, seed);
        let nn = n as u64;
        let cr = ChangRoberts::new(ids.clone()).run().stats.total_sent();
        prop_assert!(cr >= 2 * nn, "cr={cr}");
        prop_assert!(cr <= nn * (nn + 1) / 2 + nn, "cr={cr}");
        let pd = PetersonDkr::new(ids).run().stats.total_sent();
        let bound = 2.0 * n as f64 * ((n as f64).log2() + 2.0) + 2.0 * n as f64;
        prop_assert!((pd as f64) <= bound, "pd={pd} bound={bound}");
    }

    /// Itai–Rodeh always terminates with a valid leader and each
    /// processor learns the same one.
    #[test]
    fn itai_rodeh_agreement(n in 2usize..32, seed in any::<u64>()) {
        let exec = ItaiRodeh::new(n, seed).run();
        let leader = exec.outcome.elected().expect("IR terminates w.p. 1 and within step limits here");
        prop_assert!(leader < n as u64);
        for out in &exec.outputs {
            prop_assert_eq!(out.unwrap().unwrap(), leader);
        }
    }

    /// Baseline vulnerability: a single rational adversary that always
    /// "draws" the maximum id hijacks Itai–Rodeh — the motivation for the
    /// paper's notion of fairness. (The adversary here is simulated by
    /// giving one position the largest possible id in Chang–Roberts.)
    #[test]
    fn classical_algorithms_are_trivially_biased(n in 3usize..32, seed in any::<u64>(), cheat_raw in any::<usize>()) {
        let cheat = cheat_raw % n;
        let mut ids = random_ids(n, seed);
        // The cheater claims an id above everyone else's.
        ids[cheat] = n as u64 + 1;
        let exec = ChangRoberts::new(ids).run();
        prop_assert_eq!(exec.outcome.elected(), Some(cheat as u64));
    }
}
