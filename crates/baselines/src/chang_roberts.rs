//! Chang & Roberts (1979): extrema-finding on a unidirectional ring.
//!
//! Every processor emits its id; a processor forwards only ids larger
//! than its own and swallows smaller ones. The maximal id circulates the
//! whole ring and returns to its owner, who becomes leader and sends an
//! announcement lap. Worst case `O(n²)` messages (ids increasing along
//! the ring), `Θ(n log n)` on average over random placements.

use ring_sim::{Ctx, Execution, Node, NodeId, SimBuilder, Topology};

/// A message of the Chang–Roberts protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrMsg {
    /// An id still competing.
    Candidate(u64),
    /// The winner's id, circulated once to terminate everyone.
    Leader(u64),
}

/// A Chang–Roberts instance with explicit per-position ids.
///
/// The elected leader (as reported in the [`Execution`]) is the **ring
/// position** holding the maximal id, so outcomes are comparable with the
/// FLE protocols of `fle-core`.
///
/// # Examples
///
/// ```
/// use fle_baselines::{random_ids, ChangRoberts};
///
/// let ids = random_ids(16, 3);
/// let exec = ChangRoberts::new(ids.clone()).run();
/// let max_pos = (0..16).max_by_key(|&i| ids[i]).unwrap() as u64;
/// assert_eq!(exec.outcome.elected(), Some(max_pos));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangRoberts {
    ids: Vec<u64>,
}

impl ChangRoberts {
    /// Creates an instance; `ids[i]` is the id of ring position `i`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 ids are given or ids are not distinct.
    pub fn new(ids: Vec<u64>) -> Self {
        assert!(ids.len() >= 2, "need at least 2 processors");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be distinct");
        Self { ids }
    }

    /// Runs the election; see [`Execution::stats`] for message counts.
    pub fn run(&self) -> Execution {
        self.run_with_faults(&ring_sim::FaultPlan::none())
    }

    /// Runs the election under a crash-fault plan (see [`ring_sim::fault`]).
    /// The empty plan is exactly [`run`](ChangRoberts::run).
    pub fn run_with_faults(&self, plan: &ring_sim::FaultPlan) -> Execution {
        let n = self.ids.len();
        let mut builder: SimBuilder<'_, CrMsg> = SimBuilder::new(Topology::ring(n));
        for (pos, &id) in self.ids.iter().enumerate() {
            builder = builder.boxed_node(
                pos,
                Box::new(CrNode {
                    pos: pos as u64,
                    id,
                    leader: None,
                }),
            );
        }
        builder.wake_all().fault_plan(plan.clone()).run()
    }
}

struct CrNode {
    pos: u64,
    id: u64,
    leader: Option<u64>,
}

impl Node<CrMsg> for CrNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, CrMsg>) {
        ctx.send(CrMsg::Candidate(self.id));
    }

    fn on_message(&mut self, _from: NodeId, msg: CrMsg, ctx: &mut Ctx<'_, CrMsg>) {
        match msg {
            CrMsg::Candidate(c) => {
                if c > self.id {
                    ctx.send(CrMsg::Candidate(c));
                } else if c == self.id {
                    // Our id survived a full lap: we hold the maximum.
                    self.leader = Some(self.pos);
                    ctx.send(CrMsg::Leader(self.pos));
                }
                // c < id: swallow.
            }
            CrMsg::Leader(pos) => {
                if self.leader.is_none() {
                    // Forward the announcement; the winner absorbs it.
                    ctx.send(CrMsg::Leader(pos));
                }
                ctx.terminate(Some(pos));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_ids, worst_case_ids};

    #[test]
    fn elects_position_of_max_id() {
        for seed in 0..10 {
            let ids = random_ids(20, seed);
            let exec = ChangRoberts::new(ids.clone()).run();
            let max_pos = (0..20).max_by_key(|&i| ids[i]).unwrap() as u64;
            assert_eq!(exec.outcome.elected(), Some(max_pos), "seed={seed}");
        }
    }

    #[test]
    fn worst_case_is_quadratic() {
        let n = 40u64;
        let exec = ChangRoberts::new(worst_case_ids(n as usize)).run();
        // Candidate messages: n(n+1)/2; announcement: n.
        assert_eq!(exec.stats.total_sent(), n * (n + 1) / 2 + n);
    }

    #[test]
    fn average_case_is_n_log_n_scale() {
        let n = 128usize;
        let trials = 30;
        let mut total = 0u64;
        for seed in 0..trials {
            let exec = ChangRoberts::new(random_ids(n, seed)).run();
            total += exec.stats.total_sent();
        }
        let avg = total as f64 / trials as f64;
        let n_log_n = n as f64 * (n as f64).ln();
        // Known constant: ≈ n·H_n + n ≈ n ln n + O(n). Allow slack.
        assert!(
            avg < 2.0 * n_log_n && avg > 0.5 * n_log_n,
            "avg={avg}, n ln n = {n_log_n}"
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_ids_rejected() {
        let _ = ChangRoberts::new(vec![1, 1, 2]);
    }
}
