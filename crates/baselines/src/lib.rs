//! # fle-baselines — classical ring leader election
//!
//! The non-fault-tolerant leader election algorithms the paper's related
//! work builds on (Section 1.1): they elect the processor holding the
//! *maximal id* and are the message-complexity yardsticks against which
//! the rational-agent protocols' `Θ(n²)` cost is measured.
//!
//! * [`ChangRoberts`] — Chang & Roberts 1979: `O(n²)` worst case,
//!   `Θ(n log n)` messages on average over random id placements.
//! * [`PetersonDkr`] — Peterson 1982 / Dolev–Klawe–Rodeh 1982: the
//!   classical `O(n log n)` worst-case unidirectional algorithm.
//! * [`ItaiRodeh`] — Itai & Rodeh: randomized election on an *anonymous*
//!   ring of known size, `O(n log n)` expected messages.
//!
//! All run on the same [`ring_sim`] substrate as the rational-agent
//! protocols, so the measured message counts are directly comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chang_roberts;
mod itai_rodeh;
mod peterson;

pub use chang_roberts::ChangRoberts;
pub use itai_rodeh::ItaiRodeh;
pub use peterson::PetersonDkr;

use ring_sim::rng::SplitMix64;

/// A uniformly random permutation of `0..n` derived from `seed` — the
/// random id placement under which Chang–Roberts achieves its
/// `Θ(n log n)` average (paper Section 1.1, citing Chang & Roberts).
pub fn random_ids(n: usize, seed: u64) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..n as u64).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        ids.swap(i, j);
    }
    ids
}

/// The worst-case id placement for Chang–Roberts: ids *decreasing* along
/// the ring direction, so the candidate starting at position `i` travels
/// `n − i` links before a larger id swallows it — `n(n+1)/2` messages in
/// total. (Increasing ids are the best case: every candidate dies after
/// one hop.)
pub fn worst_case_ids(n: usize) -> Vec<u64> {
    (0..n as u64).rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_ids_is_a_permutation() {
        let ids = random_ids(50, 9);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u64>>());
        assert_ne!(ids, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn random_ids_deterministic_per_seed() {
        assert_eq!(random_ids(20, 4), random_ids(20, 4));
        assert_ne!(random_ids(20, 4), random_ids(20, 5));
    }
}
