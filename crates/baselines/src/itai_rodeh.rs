//! Itai–Rodeh randomized leader election on an **anonymous** ring of
//! known size, in the asynchronous formulation of Fokkink & Pang.
//!
//! Processors have no ids; in each round every active processor draws a
//! random id in `[1, n]` and circulates a token `(round, id, hop, unique)`.
//! Tokens are compared lexicographically by `(round, id)`: an active
//! processor passes (and is defeated by) a strictly larger token, purges a
//! strictly smaller one, and forwards an equal token with `unique = false`.
//! When a processor's own token returns (`hop = n`) it either wins
//! (`unique` still true) or enters the next round together with the other
//! survivors. Expected message complexity `O(n log n)`; the winner is
//! uniform over positions by symmetry — but, unlike the paper's
//! protocols, a single *rational* adversary breaks fairness by always
//! "drawing" the maximal id, which is why fairness for rational agents
//! needs the machinery of `fle-core`.

use ring_sim::rng::SplitMix64;
use ring_sim::{Ctx, Execution, Node, NodeId, SimBuilder, Topology};

/// A message of the Itai–Rodeh protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrMsg {
    /// A circulating election token.
    Token {
        /// The round in which the token was drawn.
        round: u32,
        /// The randomly drawn id.
        id: u64,
        /// Links traversed so far (owner sends 1; back home at `n`).
        hop: u32,
        /// `false` once another processor with the same `(round, id)` saw
        /// the token.
        unique: bool,
    },
    /// The winner's ring position, circulated once to terminate everyone.
    Leader(u64),
}

/// An Itai–Rodeh instance on an anonymous ring of `n` processors.
///
/// # Examples
///
/// ```
/// use fle_baselines::ItaiRodeh;
///
/// let exec = ItaiRodeh::new(16, 42).run();
/// assert!(exec.outcome.elected().unwrap() < 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItaiRodeh {
    n: usize,
    seed: u64,
}

impl ItaiRodeh {
    /// Creates an instance; `seed` drives every processor's random draws.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least 2 processors");
        Self { n, seed }
    }

    /// Runs the election.
    pub fn run(&self) -> Execution {
        self.run_with_faults(&ring_sim::FaultPlan::none())
    }

    /// Runs the election under a crash-fault plan (see [`ring_sim::fault`]).
    /// The empty plan is exactly [`run`](ItaiRodeh::run).
    pub fn run_with_faults(&self, plan: &ring_sim::FaultPlan) -> Execution {
        let n = self.n;
        let mut builder: SimBuilder<'_, IrMsg> = SimBuilder::new(Topology::ring(n));
        for pos in 0..n {
            builder = builder.boxed_node(
                pos,
                Box::new(IrNode {
                    pos: pos as u64,
                    n: n as u32,
                    rng: SplitMix64::new(self.seed).derive(pos as u64),
                    state: IrState::Active {
                        round: 0, // draws on wake
                        id: 0,
                        deferred: Vec::new(),
                    },
                }),
            );
        }
        builder.wake_all().fault_plan(plan.clone()).run()
    }
}

enum IrState {
    Active {
        round: u32,
        id: u64,
        /// Tokens from future rounds, processed after advancing.
        deferred: Vec<IrMsg>,
    },
    Passive,
    Winner,
}

struct IrNode {
    pos: u64,
    n: u32,
    rng: SplitMix64,
    state: IrState,
}

impl IrNode {
    fn draw_and_send(&mut self, round: u32, ctx: &mut Ctx<'_, IrMsg>) {
        let id = self.rng.next_below(self.n as u64) + 1;
        if let IrState::Active {
            round: r, id: my, ..
        } = &mut self.state
        {
            *r = round;
            *my = id;
        }
        ctx.send(IrMsg::Token {
            round,
            id,
            hop: 1,
            unique: true,
        });
    }

    fn handle_token(
        &mut self,
        round: u32,
        id: u64,
        hop: u32,
        unique: bool,
        ctx: &mut Ctx<'_, IrMsg>,
    ) {
        let n = self.n;
        match &mut self.state {
            IrState::Active {
                round: my_round,
                id: my_id,
                deferred,
            } => {
                let (my_round, my_id) = (*my_round, *my_id);
                if round == my_round && id == my_id && hop == n {
                    // Our own token came home.
                    if unique {
                        self.state = IrState::Winner;
                        ctx.send(IrMsg::Leader(self.pos));
                    } else {
                        // Tie: next round with the other survivors.
                        let next = my_round + 1;
                        let pending = std::mem::take(deferred);
                        self.draw_and_send(next, ctx);
                        for msg in pending {
                            if let IrMsg::Token {
                                round,
                                id,
                                hop,
                                unique,
                            } = msg
                            {
                                self.handle_token(round, id, hop, unique, ctx);
                            }
                        }
                    }
                } else if (round, id) > (my_round, my_id) {
                    if round > my_round {
                        // A future-round token may only overtake our own
                        // pending token transiently; defer it so rounds
                        // are processed in order (Fokkink–Pang).
                        deferred.push(IrMsg::Token {
                            round,
                            id,
                            hop,
                            unique,
                        });
                    } else {
                        // Defeated within our round.
                        self.state = IrState::Passive;
                        ctx.send(IrMsg::Token {
                            round,
                            id,
                            hop: hop + 1,
                            unique,
                        });
                    }
                } else if (round, id) == (my_round, my_id) {
                    // Same draw elsewhere: mark non-unique and pass on.
                    ctx.send(IrMsg::Token {
                        round,
                        id,
                        hop: hop + 1,
                        unique: false,
                    });
                }
                // Strictly smaller: purge.
            }
            IrState::Passive => ctx.send(IrMsg::Token {
                round,
                id,
                hop: hop + 1,
                unique,
            }),
            IrState::Winner => {} // stale token
        }
    }
}

impl Node<IrMsg> for IrNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, IrMsg>) {
        self.draw_and_send(1, ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: IrMsg, ctx: &mut Ctx<'_, IrMsg>) {
        match msg {
            IrMsg::Token {
                round,
                id,
                hop,
                unique,
            } => self.handle_token(round, id, hop, unique, ctx),
            IrMsg::Leader(pos) => {
                if matches!(self.state, IrState::Winner) {
                    ctx.terminate(Some(pos));
                } else {
                    ctx.send(IrMsg::Leader(pos));
                    ctx.terminate(Some(pos));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_terminates_with_a_leader() {
        for seed in 0..50 {
            let exec = ItaiRodeh::new(12, seed).run();
            let leader = exec
                .outcome
                .elected()
                .unwrap_or_else(|| panic!("seed={seed}: {:?}", exec.outcome));
            assert!(leader < 12);
        }
    }

    #[test]
    fn winner_is_roughly_uniform_by_symmetry() {
        let n = 8usize;
        let trials = 2400;
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            let exec = ItaiRodeh::new(n, seed).run();
            counts[exec.outcome.elected().unwrap() as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.35,
                "counts={counts:?}"
            );
        }
    }

    #[test]
    fn expected_messages_are_n_log_n_scale() {
        let n = 64usize;
        let trials = 20;
        let mut total = 0u64;
        for seed in 0..trials {
            total += ItaiRodeh::new(n, seed).run().stats.total_sent();
        }
        let avg = total as f64 / trials as f64;
        let bound = 4.0 * n as f64 * (n as f64).log2();
        assert!(avg < bound, "avg={avg} bound={bound}");
    }

    #[test]
    fn works_on_minimal_ring() {
        let exec = ItaiRodeh::new(2, 7).run();
        assert!(exec.outcome.elected().is_some());
    }
}
