//! Peterson (1982) / Dolev–Klawe–Rodeh (1982): `O(n log n)` worst-case
//! extrema-finding on a unidirectional ring.
//!
//! Discovered independently, both algorithms run in phases in which every
//! *active* processor learns the temporary ids of its two nearest active
//! predecessors and survives only if the nearer one holds a local
//! maximum — halving the actives each phase. Defeated processors become
//! relays. Temporary ids migrate between processors, so when a value
//! comes full circle its *holder* only learns the maximum id; an
//! announcement lap then locates the original owner, who elects itself
//! and circulates its position.

use ring_sim::{Ctx, Execution, Node, NodeId, SimBuilder, Topology};

/// A message of the Peterson/DKR protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PetersonMsg {
    /// A temporary id travelling to the next active processor.
    Candidate(u64),
    /// The maximal id, travelling to find its original owner.
    Announce(u64),
    /// The winner's ring position, circulated once to terminate everyone.
    Elected(u64),
}

/// A Peterson/DKR instance with explicit per-position ids.
///
/// The reported outcome is the **ring position** of the processor with
/// the maximal id, comparable with the FLE protocols of `fle-core`.
///
/// # Examples
///
/// ```
/// use fle_baselines::{random_ids, PetersonDkr};
///
/// let ids = random_ids(32, 1);
/// let exec = PetersonDkr::new(ids.clone()).run();
/// let max_pos = (0..32).max_by_key(|&i| ids[i]).unwrap() as u64;
/// assert_eq!(exec.outcome.elected(), Some(max_pos));
/// // O(n log n): far below Chang–Roberts' n(n+1)/2 worst case.
/// assert!(exec.stats.total_sent() < 32 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PetersonDkr {
    ids: Vec<u64>,
}

impl PetersonDkr {
    /// Creates an instance; `ids[i]` is the id of ring position `i`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 ids are given or ids are not distinct.
    pub fn new(ids: Vec<u64>) -> Self {
        assert!(ids.len() >= 2, "need at least 2 processors");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be distinct");
        Self { ids }
    }

    /// Runs the election.
    pub fn run(&self) -> Execution {
        let n = self.ids.len();
        let mut builder: SimBuilder<'_, PetersonMsg> = SimBuilder::new(Topology::ring(n));
        for (pos, &id) in self.ids.iter().enumerate() {
            builder = builder.boxed_node(
                pos,
                Box::new(PetersonNode {
                    pos: pos as u64,
                    original_id: id,
                    state: State::Active {
                        tid: id,
                        ntid: None,
                    },
                }),
            );
        }
        builder.wake_all().run()
    }
}

enum State {
    /// Competing with temporary id `tid`; `ntid` holds the first value
    /// received this phase, if any.
    Active { tid: u64, ntid: Option<u64> },
    /// Defeated: forwards everything.
    Relay,
    /// Recognized its own id in the announcement; awaiting its `Elected`
    /// lap to complete.
    Leader,
}

struct PetersonNode {
    pos: u64,
    original_id: u64,
    state: State,
}

impl Node<PetersonMsg> for PetersonNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, PetersonMsg>) {
        if let State::Active { tid, .. } = &self.state {
            ctx.send(PetersonMsg::Candidate(*tid));
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: PetersonMsg, ctx: &mut Ctx<'_, PetersonMsg>) {
        match msg {
            PetersonMsg::Candidate(c) => {
                // `Some(max)` = the held value survived a full lap;
                // `None` = keep going (state updated in place).
                let full_lap: Option<Option<u64>> = match &mut self.state {
                    State::Active { tid, ntid } => match *ntid {
                        None if c == *tid => Some(Some(*tid)),
                        None => {
                            // First value this phase: relay it onward so
                            // the next active sees its second predecessor.
                            *ntid = Some(c);
                            ctx.send(PetersonMsg::Candidate(c));
                            None
                        }
                        Some(nt) => {
                            // Second value: survive iff the nearer
                            // predecessor's id is a local maximum.
                            if nt > *tid && nt > c {
                                *tid = nt;
                                *ntid = None;
                                ctx.send(PetersonMsg::Candidate(nt));
                                None
                            } else {
                                Some(None) // defeated
                            }
                        }
                    },
                    State::Relay => {
                        ctx.send(PetersonMsg::Candidate(c));
                        None
                    }
                    State::Leader => None, // stale candidate
                };
                match full_lap {
                    Some(Some(max_id)) => {
                        // The value we hold is the global maximum; locate
                        // its original owner.
                        if self.original_id == max_id {
                            self.state = State::Leader;
                            ctx.send(PetersonMsg::Elected(self.pos));
                        } else {
                            self.state = State::Relay;
                            ctx.send(PetersonMsg::Announce(max_id));
                        }
                    }
                    Some(None) => self.state = State::Relay,
                    None => {}
                }
            }
            PetersonMsg::Announce(max_id) => {
                if self.original_id == max_id {
                    self.state = State::Leader;
                    ctx.send(PetersonMsg::Elected(self.pos));
                } else {
                    ctx.send(PetersonMsg::Announce(max_id));
                }
            }
            PetersonMsg::Elected(pos) => {
                if matches!(self.state, State::Leader) {
                    ctx.terminate(Some(pos));
                } else {
                    ctx.send(PetersonMsg::Elected(pos));
                    ctx.terminate(Some(pos));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_ids, worst_case_ids};

    #[test]
    fn elects_position_of_max_id() {
        for seed in 0..10 {
            let n = 33;
            let ids = random_ids(n, seed);
            let exec = PetersonDkr::new(ids.clone()).run();
            let max_pos = (0..n).max_by_key(|&i| ids[i]).unwrap() as u64;
            assert_eq!(exec.outcome.elected(), Some(max_pos), "seed={seed}");
        }
    }

    #[test]
    fn worst_case_stays_n_log_n() {
        for n in [16usize, 64, 256] {
            // Chang–Roberts' worst case is Peterson's bread and butter.
            let exec = PetersonDkr::new(worst_case_ids(n)).run();
            let bound = 2.0 * n as f64 * ((n as f64).log2() + 2.0) + 2.0 * n as f64;
            assert!(
                (exec.stats.total_sent() as f64) < bound,
                "n={n}: {} messages",
                exec.stats.total_sent()
            );
        }
    }

    #[test]
    fn beats_chang_roberts_on_adversarial_rings() {
        use crate::ChangRoberts;
        let n = 64;
        let cr = ChangRoberts::new(worst_case_ids(n)).run();
        let pd = PetersonDkr::new(worst_case_ids(n)).run();
        assert!(pd.stats.total_sent() * 2 < cr.stats.total_sent());
    }

    #[test]
    fn two_processors() {
        let exec = PetersonDkr::new(vec![5, 9]).run();
        assert_eq!(exec.outcome.elected(), Some(1));
        let exec = PetersonDkr::new(vec![9, 5]).run();
        assert_eq!(exec.outcome.elected(), Some(0));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_ids_rejected() {
        let _ = PetersonDkr::new(vec![3, 3]);
    }
}
