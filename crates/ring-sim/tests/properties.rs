//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use ring_sim::rng::SplitMix64;
use ring_sim::{
    reference, Ctx, EnumerativeScheduler, FifoScheduler, FnNode, LifoScheduler, NodeId, Outcome,
    PackedToken, RandomScheduler, Scheduler, SimBuilder, Token, Topology,
};

/// Sorted multiset of tokens for conservation comparisons.
fn sorted(mut tokens: Vec<Token>) -> Vec<Token> {
    tokens.sort_unstable_by_key(|t| match *t {
        Token::Wake(i) => (0, i),
        Token::Deliver(e) => (1, e),
    });
    tokens
}

/// Drives `s` through an arbitrary interleaved push/pop sequence
/// (`ops[i] = Some(token)` pushes, `None` pops), then drains it, and
/// checks the [`Scheduler`] contract: every pop returns a token whose
/// push is still outstanding (nothing invented, nothing duplicated),
/// `len` tracks the pending count, and draining eventually pops every
/// pushed token (eventual delivery).
fn check_scheduler_contract(mut s: Box<dyn Scheduler>, ops: &[Option<Token>]) {
    let mut outstanding: Vec<Token> = Vec::new();
    let mut popped: Vec<Token> = Vec::new();
    for op in ops {
        match op {
            Some(token) => {
                s.push(*token);
                outstanding.push(*token);
            }
            None => {
                let before = s.len();
                match s.pop() {
                    Some(t) => {
                        let at = outstanding
                            .iter()
                            .position(|&o| o == t)
                            .expect("scheduler invented or duplicated a token");
                        outstanding.swap_remove(at);
                        popped.push(t);
                        assert_eq!(s.len(), before - 1);
                    }
                    None => assert!(outstanding.is_empty(), "pop refused a pending token"),
                }
            }
        }
        assert_eq!(s.len(), outstanding.len());
        assert_eq!(s.is_empty(), outstanding.is_empty());
    }
    while let Some(t) = s.pop() {
        let at = outstanding
            .iter()
            .position(|&o| o == t)
            .expect("drain invented or duplicated a token");
        outstanding.swap_remove(at);
        popped.push(t);
    }
    assert!(
        outstanding.is_empty(),
        "tokens never delivered: {outstanding:?}"
    );
    let pushed: Vec<Token> = ops.iter().flatten().copied().collect();
    assert_eq!(sorted(popped), sorted(pushed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `next_below` is always in range and deterministic per seed.
    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..10 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }

    /// Derived streams never collide with the parent stream prefix.
    #[test]
    fn rng_derive_separates_streams(seed in any::<u64>(), salt in 0u64..1000) {
        let parent = SplitMix64::new(seed);
        let mut c1 = parent.derive(salt);
        let mut c2 = parent.derive(salt.wrapping_add(1));
        prop_assert_ne!(c1.next_u64(), c2.next_u64());
    }

    /// Every scheduler returns exactly the multiset of pushed tokens.
    #[test]
    fn schedulers_conserve_tokens(edges in proptest::collection::vec(0usize..50, 1..80), seed in any::<u64>()) {
        let run = |mut s: Box<dyn Scheduler>| {
            for &e in &edges {
                s.push(Token::Deliver(e));
            }
            let mut out = Vec::new();
            while let Some(Token::Deliver(e)) = s.pop() {
                out.push(e);
            }
            out.sort_unstable();
            out
        };
        let mut expect = edges.clone();
        expect.sort_unstable();
        prop_assert_eq!(run(Box::new(FifoScheduler::new())), expect.clone());
        prop_assert_eq!(run(Box::new(LifoScheduler::new())), expect.clone());
        prop_assert_eq!(run(Box::new(RandomScheduler::new(seed))), expect.clone());
        prop_assert_eq!(run(Box::new(EnumerativeScheduler::new())), expect);
    }

    /// For ANY interleaved push/pop sequence, every scheduler — FIFO,
    /// LIFO, seeded-random and the enumerative model checker — eventually
    /// pops each pushed token exactly once and never invents one.
    #[test]
    fn schedulers_honor_contract_under_interleaved_ops(
        raw_ops in proptest::collection::vec(0u64..100, 0..120),
        seed in any::<u64>(),
    ) {
        // Encode each draw as one op: 40% pops, 60% pushes of a wake or
        // deliver token with a small id space (so duplicates are common).
        let ops: Vec<Option<Token>> = raw_ops
            .into_iter()
            .map(|v| match v % 5 {
                0 | 1 => None,
                2 => Some(Token::Wake((v / 5 % 10) as usize)),
                _ => Some(Token::Deliver((v / 5 % 10) as usize)),
            })
            .collect();
        check_scheduler_contract(Box::new(FifoScheduler::new()), &ops);
        check_scheduler_contract(Box::new(LifoScheduler::new()), &ops);
        check_scheduler_contract(Box::new(RandomScheduler::new(seed)), &ops);
        check_scheduler_contract(Box::new(EnumerativeScheduler::new()), &ops);
    }

    /// The packed-token schedulers must reproduce the pre-packing
    /// `VecDeque`/`Vec<Token>` implementations **bit for bit**: for any
    /// interleaved push/pop sequence, all three policies (FIFO, LIFO,
    /// seeded-random) pop the exact same token at every step — including
    /// `None`s on empty pops and the trailing drain. This is the oracle
    /// that licenses the `FifoScheduler` masked ring buffer and the 8-byte
    /// `PackedToken` storage as pure layout changes.
    #[test]
    fn packed_schedulers_match_reference_implementations(
        raw_ops in proptest::collection::vec(0u64..200, 0..160),
        seed in any::<u64>(),
    ) {
        // ~1/3 pops, ~2/3 pushes of wake/deliver tokens over a small id
        // space; a mid-sequence `clear` exercises storage reuse.
        let ops: Vec<Option<Token>> = raw_ops
            .iter()
            .map(|v| match v % 6 {
                0 | 1 => None,
                2 => Some(Token::Wake((v / 6 % 12) as usize)),
                _ => Some(Token::Deliver((v / 6 % 12) as usize)),
            })
            .collect();
        let differential = |mut packed: Box<dyn Scheduler>, mut oracle: Box<dyn Scheduler>| {
            for (step, op) in ops.iter().enumerate() {
                match op {
                    Some(token) => {
                        // Alternate the entry form so both the enum and
                        // the packed push surface are exercised.
                        if step % 2 == 0 {
                            packed.push(*token);
                        } else {
                            packed.push_packed(PackedToken::from(*token));
                        }
                        oracle.push(*token);
                    }
                    None => {
                        prop_assert_eq!(packed.pop(), oracle.pop(), "step {}", step);
                    }
                }
                prop_assert_eq!(packed.len(), oracle.len(), "len at step {}", step);
                if step == ops.len() / 2 {
                    packed.clear();
                    oracle.clear();
                }
            }
            loop {
                let (a, b) = (packed.pop_packed().map(PackedToken::decode), oracle.pop());
                prop_assert_eq!(a, b, "drain");
                if b.is_none() {
                    break;
                }
            }
            Ok(())
        };
        differential(
            Box::new(FifoScheduler::new()),
            Box::new(reference::FifoScheduler::new()),
        )?;
        differential(
            Box::new(LifoScheduler::new()),
            Box::new(reference::LifoScheduler::new()),
        )?;
        differential(
            Box::new(RandomScheduler::new(seed)),
            Box::new(reference::RandomScheduler::new(seed)),
        )?;
    }

    /// On a unidirectional ring every oblivious schedule produces the same
    /// outcome (the paper's Section 2 observation).
    #[test]
    fn ring_outcomes_are_schedule_independent(n in 3usize..12, laps in 1u64..4, seed in any::<u64>()) {
        let target = laps * n as u64;
        let build = || {
            let mut b: SimBuilder<'_, u64> = SimBuilder::new(Topology::ring(n));
            for i in 0..n {
                let node = FnNode::new(move |_f: NodeId, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m >= target {
                        if m < target + n as u64 - 1 {
                            ctx.send(m + 1);
                        }
                        ctx.terminate(Some(target));
                    } else {
                        ctx.send(m + 1);
                    }
                });
                if i == 0 {
                    b = b.node(0, FnNode::new(move |_f: NodeId, m: u64, ctx: &mut Ctx<'_, u64>| {
                        if m >= target {
                            if m < target + n as u64 - 1 {
                                ctx.send(m + 1);
                            }
                            ctx.terminate(Some(target));
                        } else {
                            ctx.send(m + 1);
                        }
                    }).on_wake(|ctx| ctx.send(1)));
                } else {
                    b = b.node(i, node);
                }
            }
            b.wake(0)
        };
        let fifo = build().scheduler(FifoScheduler::new()).run();
        let lifo = build().scheduler(LifoScheduler::new()).run();
        let rand = build().scheduler(RandomScheduler::new(seed)).run();
        prop_assert_eq!(fifo.outcome, Outcome::Elected(target));
        prop_assert_eq!(lifo.outcome, fifo.outcome);
        prop_assert_eq!(rand.outcome, fifo.outcome);
    }

    /// Message conservation: everything sent is eventually delivered (no
    /// deadlock scenarios here because every node replies until target).
    #[test]
    fn sends_equal_deliveries(n in 2usize..8) {
        let mut b: SimBuilder<'_, u64> = SimBuilder::new(Topology::ring(n));
        for i in 0..n {
            b = b.node(
                i,
                FnNode::new(move |_f: NodeId, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m == 0 {
                        ctx.terminate(Some(1));
                    } else {
                        ctx.send(m - 1);
                        ctx.terminate(Some(1));
                    }
                })
                .on_wake(move |ctx| {
                    ctx.send(3);
                }),
            );
        }
        let exec = b.wake_all().run();
        prop_assert_eq!(exec.stats.total_sent(), exec.stats.delivered);
    }
}
