//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use ring_sim::rng::SplitMix64;
use ring_sim::{
    Ctx, FifoScheduler, FnNode, LifoScheduler, NodeId, Outcome, RandomScheduler, Scheduler,
    SimBuilder, Token, Topology,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `next_below` is always in range and deterministic per seed.
    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..10 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }

    /// Derived streams never collide with the parent stream prefix.
    #[test]
    fn rng_derive_separates_streams(seed in any::<u64>(), salt in 0u64..1000) {
        let parent = SplitMix64::new(seed);
        let mut c1 = parent.derive(salt);
        let mut c2 = parent.derive(salt.wrapping_add(1));
        prop_assert_ne!(c1.next_u64(), c2.next_u64());
    }

    /// Every scheduler returns exactly the multiset of pushed tokens.
    #[test]
    fn schedulers_conserve_tokens(edges in proptest::collection::vec(0usize..50, 1..80), seed in any::<u64>()) {
        let run = |mut s: Box<dyn Scheduler>| {
            for &e in &edges {
                s.push(Token::Deliver(e));
            }
            let mut out = Vec::new();
            while let Some(Token::Deliver(e)) = s.pop() {
                out.push(e);
            }
            out.sort_unstable();
            out
        };
        let mut expect = edges.clone();
        expect.sort_unstable();
        prop_assert_eq!(run(Box::new(FifoScheduler::new())), expect.clone());
        prop_assert_eq!(run(Box::new(LifoScheduler::new())), expect.clone());
        prop_assert_eq!(run(Box::new(RandomScheduler::new(seed))), expect);
    }

    /// On a unidirectional ring every oblivious schedule produces the same
    /// outcome (the paper's Section 2 observation).
    #[test]
    fn ring_outcomes_are_schedule_independent(n in 3usize..12, laps in 1u64..4, seed in any::<u64>()) {
        let target = laps * n as u64;
        let build = || {
            let mut b: SimBuilder<'_, u64> = SimBuilder::new(Topology::ring(n));
            for i in 0..n {
                let node = FnNode::new(move |_f: NodeId, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m >= target {
                        if m < target + n as u64 - 1 {
                            ctx.send(m + 1);
                        }
                        ctx.terminate(Some(target));
                    } else {
                        ctx.send(m + 1);
                    }
                });
                if i == 0 {
                    b = b.node(0, FnNode::new(move |_f: NodeId, m: u64, ctx: &mut Ctx<'_, u64>| {
                        if m >= target {
                            if m < target + n as u64 - 1 {
                                ctx.send(m + 1);
                            }
                            ctx.terminate(Some(target));
                        } else {
                            ctx.send(m + 1);
                        }
                    }).on_wake(|ctx| ctx.send(1)));
                } else {
                    b = b.node(i, node);
                }
            }
            b.wake(0)
        };
        let fifo = build().scheduler(FifoScheduler::new()).run();
        let lifo = build().scheduler(LifoScheduler::new()).run();
        let rand = build().scheduler(RandomScheduler::new(seed)).run();
        prop_assert_eq!(fifo.outcome, Outcome::Elected(target));
        prop_assert_eq!(lifo.outcome, fifo.outcome);
        prop_assert_eq!(rand.outcome, fifo.outcome);
    }

    /// Message conservation: everything sent is eventually delivered (no
    /// deadlock scenarios here because every node replies until target).
    #[test]
    fn sends_equal_deliveries(n in 2usize..8) {
        let mut b: SimBuilder<'_, u64> = SimBuilder::new(Topology::ring(n));
        for i in 0..n {
            b = b.node(
                i,
                FnNode::new(move |_f: NodeId, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m == 0 {
                        ctx.terminate(Some(1));
                    } else {
                        ctx.send(m - 1);
                        ctx.terminate(Some(1));
                    }
                })
                .on_wake(move |ctx| {
                    ctx.send(3);
                }),
            );
        }
        let exec = b.wake_all().run();
        prop_assert_eq!(exec.stats.total_sent(), exec.stats.delivered);
    }
}
