//! Deterministic crash-fault injection: per-node crash-stop (with
//! optional recovery) drawn from a dedicated per-trial random stream.
//!
//! The paper's model (Section 2) assumes failure-free processors over
//! reliable FIFO links. The timed layer (`ring_sim::timed`) already steps
//! outside the *link* half of that model; this module perturbs the
//! *processor* half, in the spirit of the fail-stop leader-election
//! literature the paper contrasts itself with.
//!
//! A [`FaultPlan`] lists crash faults: node `v` stops at instant `at`
//! (and, with recovery, resumes at `recover_at`). Instants are measured
//! on the clock of whichever engine path runs the trial — the running
//! **delivery count** on the untimed paths, **virtual nanoseconds** on
//! the timed path. While a node is down it silently drops every delivery
//! and wake-up (the message is still consumed and counted — the link is
//! fine, the processor is not) and sends nothing; recovery restores the
//! node exactly as it was at the crash instant (crash-stop with
//! state-preserving restart — deliveries that arrived while it was down
//! are lost for good).
//!
//! Determinism: [`FaultPlan::draw_into`] derives every victim and instant
//! from the trial seed through [`FAULT_STREAM_SALT`], a stream disjoint
//! from the per-node protocol streams and the timed layer's
//! [`NET_STREAM_SALT`](crate::NET_STREAM_SALT) — so fault noise never
//! correlates with honest secrets or network noise, and a faulty trial
//! replays bit-identically from its seed.
//!
//! The empty plan is free: the engine dispatches **once** per run on
//! [`FaultPlan::is_empty`] into a monomorphized loop whose fault hook is
//! an inline `false` — the fault-free path carries no per-delivery check
//! and stays bit-identical to builds that predate this module.

use crate::rng::SplitMix64;
use crate::topology::NodeId;

/// Domain-separation salt for the per-trial crash-fault stream (victim
/// draws and crash-instant draws). Distinct from the per-node protocol
/// streams and from [`NET_STREAM_SALT`](crate::NET_STREAM_SALT). The
/// value spells "CRASHFLT" in ASCII.
pub const FAULT_STREAM_SALT: u64 = 0x4352_4153_4846_4C54;

/// The clock a crash instant is measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashInstant {
    /// Untimed engine paths: the instant is a running delivery count
    /// (a crash at `d` takes effect once `d` deliveries have completed).
    Deliveries(u64),
    /// The timed engine path: the instant is a virtual-clock nanosecond.
    VirtualNs(u64),
}

impl CrashInstant {
    /// The exclusive upper bound [`FaultPlan::draw_into`] draws crash
    /// instants below.
    pub fn bound(&self) -> u64 {
        match *self {
            CrashInstant::Deliveries(d) => d,
            CrashInstant::VirtualNs(t) => t,
        }
    }

    /// `true` for [`CrashInstant::VirtualNs`] (instants on the virtual
    /// clock of the timed path).
    pub fn is_timed(&self) -> bool {
        matches!(self, CrashInstant::VirtualNs(_))
    }
}

/// Shape of the crash faults one trial draws: how many nodes crash,
/// inside which window, and whether they come back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Number of distinct nodes to crash (capped at the ring size by
    /// [`FaultPlan::draw_into`]).
    pub crashes: u64,
    /// Each victim's crash instant is drawn uniformly in
    /// `[0, window.bound())`, on the clock `window` names.
    pub window: CrashInstant,
    /// When set, every crashed node recovers `recover_after` clock units
    /// after its crash instant (same units as `window`); `None` is
    /// crash-stop forever.
    pub recover_after: Option<u64>,
}

/// One concrete crash fault of a drawn [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The crashing node.
    pub node: NodeId,
    /// The crash instant, on the plan's clock.
    pub at: u64,
    /// The recovery instant, if the node comes back.
    pub recover_at: Option<u64>,
}

/// A trial's concrete crash faults, in the representation the engine
/// consults per event.
///
/// Obtain one from [`FaultPlan::draw_into`] (the deterministic per-trial
/// draw) or build it explicitly with [`FaultPlan::with_crash`] (tests and
/// placement experiments). Install on an engine with
/// [`Engine::set_fault_plan`](crate::Engine::set_fault_plan).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<CrashFault>,
    /// `true` when instants are virtual-clock nanoseconds (affects only
    /// the boundary semantics of [`FaultPlan::fired_count`]).
    timed: bool,
}

impl FaultPlan {
    /// The empty plan: no faults. Installing it is exactly the fault-free
    /// path (`tests/crash_faults.rs` pins the differential).
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the plan holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Drops every fault in place, keeping the allocation.
    pub fn clear(&mut self) {
        self.faults.clear();
        self.timed = false;
    }

    /// The plan's faults (sorted by draw order, not by node).
    pub fn faults(&self) -> &[CrashFault] {
        &self.faults
    }

    /// Adds one explicit crash fault (placement experiments and tests;
    /// sweeps use [`FaultPlan::draw_into`]).
    pub fn with_crash(mut self, node: NodeId, at: u64, recover_at: Option<u64>) -> Self {
        self.faults.push(CrashFault {
            node,
            at,
            recover_at,
        });
        self
    }

    /// Marks the plan's instants as virtual-clock nanoseconds (drawn
    /// plans inherit this from [`FaultConfig::window`]).
    pub fn with_timed(mut self, timed: bool) -> Self {
        self.timed = timed;
        self
    }

    /// Redraws this plan for one trial, in place (the per-worker reuse
    /// form): `cfg.crashes` *distinct* victims uniform over `0..n`, each
    /// with an instant uniform in `[0, cfg.window.bound())`, all from the
    /// [`FAULT_STREAM_SALT`]-derived stream of `trial_seed` — so the plan
    /// is a pure function of `(cfg, n, trial_seed)`.
    ///
    /// A `crashes` of 0 clears the plan; counts above `n` are capped at
    /// `n` (every node crashes).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` while `cfg.crashes > 0`.
    pub fn draw_into(&mut self, cfg: &FaultConfig, n: usize, trial_seed: u64) {
        self.faults.clear();
        self.timed = cfg.window.is_timed();
        if cfg.crashes == 0 {
            return;
        }
        assert!(n > 0, "cannot crash nodes of an empty topology");
        let mut rng = SplitMix64::new(trial_seed).derive(FAULT_STREAM_SALT);
        let crashes = (cfg.crashes).min(n as u64) as usize;
        let bound = cfg.window.bound().max(1);
        for _ in 0..crashes {
            // Distinct victims by rejection: the crash count is tiny
            // relative to n in every realistic sweep, so this terminates
            // fast (and deterministically, being a pure stream function).
            let node = loop {
                let v = rng.next_below(n as u64) as usize;
                if !self.faults.iter().any(|f| f.node == v) {
                    break v;
                }
            };
            let at = rng.next_below(bound);
            let recover_at = cfg.recover_after.map(|d| at.saturating_add(d));
            self.faults.push(CrashFault {
                node,
                at,
                recover_at,
            });
        }
    }

    /// `true` while `node` is down at clock value `clock` (deliveries
    /// completed so far on the untimed paths, virtual nanoseconds on the
    /// timed path).
    #[inline]
    pub fn is_down(&self, node: NodeId, clock: u64) -> bool {
        self.faults
            .iter()
            .any(|f| f.node == node && clock >= f.at && f.recover_at.is_none_or(|r| clock < r))
    }

    /// How many of the plan's faults *fired* by the end of a run — i.e.
    /// could have affected at least one event. `end` is the final clock
    /// value: the total delivery count on the untimed paths (where event
    /// clocks range over `0..end`, so a fault fires iff `at < end`) or
    /// the final virtual time on the timed path (event clocks reach `end`
    /// inclusive, so `at <= end`).
    pub fn fired_count(&self, end: u64) -> u64 {
        self.faults
            .iter()
            .filter(|f| if self.timed { f.at <= end } else { f.at < end })
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(crashes: u64, window: CrashInstant, recover_after: Option<u64>) -> FaultConfig {
        FaultConfig {
            crashes,
            window,
            recover_after,
        }
    }

    #[test]
    fn draw_is_deterministic_in_seed() {
        let c = cfg(3, CrashInstant::Deliveries(100), Some(40));
        let mut a = FaultPlan::none();
        let mut b = FaultPlan::none();
        a.draw_into(&c, 16, 77);
        b.draw_into(&c, 16, 77);
        assert_eq!(a, b);
        b.draw_into(&c, 16, 78);
        assert_ne!(a, b, "distinct seeds must vary the plan");
    }

    #[test]
    fn draw_produces_distinct_victims_within_window() {
        let c = cfg(8, CrashInstant::Deliveries(50), None);
        let mut plan = FaultPlan::none();
        for seed in 0..50 {
            plan.draw_into(&c, 8, seed);
            let mut nodes: Vec<NodeId> = plan.faults().iter().map(|f| f.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), 8, "seed {seed}: victims must be distinct");
            assert!(plan.faults().iter().all(|f| f.at < 50));
            assert!(plan.faults().iter().all(|f| f.recover_at.is_none()));
        }
    }

    #[test]
    fn crash_count_is_capped_at_n() {
        let mut plan = FaultPlan::none();
        plan.draw_into(&cfg(99, CrashInstant::Deliveries(10), None), 4, 0);
        assert_eq!(plan.faults().len(), 4);
    }

    #[test]
    fn zero_crashes_clears_the_plan() {
        let mut plan = FaultPlan::none().with_crash(1, 5, None);
        plan.draw_into(&cfg(0, CrashInstant::Deliveries(10), None), 4, 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn is_down_respects_crash_and_recovery_window() {
        let plan = FaultPlan::none().with_crash(2, 10, Some(20));
        assert!(!plan.is_down(2, 9));
        assert!(plan.is_down(2, 10));
        assert!(plan.is_down(2, 19));
        assert!(!plan.is_down(2, 20), "recovered at the recovery instant");
        assert!(!plan.is_down(3, 15), "other nodes unaffected");
        let forever = FaultPlan::none().with_crash(2, 10, None);
        assert!(forever.is_down(2, u64::MAX));
    }

    #[test]
    fn fired_count_boundary_differs_by_clock_kind() {
        let untimed = FaultPlan::none().with_crash(0, 10, None);
        assert_eq!(untimed.fired_count(10), 0, "no delivery clock reached 10");
        assert_eq!(untimed.fired_count(11), 1);
        let timed = FaultPlan::none().with_crash(0, 10, None).with_timed(true);
        assert_eq!(timed.fired_count(10), 1, "virtual time reached 10");
        assert_eq!(timed.fired_count(9), 0);
    }

    #[test]
    fn recovery_offsets_from_the_crash_instant() {
        let c = cfg(2, CrashInstant::Deliveries(30), Some(7));
        let mut plan = FaultPlan::none();
        plan.draw_into(&c, 10, 5);
        for f in plan.faults() {
            assert_eq!(f.recover_at, Some(f.at + 7));
        }
    }

    #[test]
    fn fault_stream_is_salt_separated_from_the_net_stream() {
        // Same trial seed: the fault stream's first draw must differ from
        // the net stream's (domain separation, not stream reuse).
        let mut fault = SplitMix64::new(42).derive(FAULT_STREAM_SALT);
        let mut net = SplitMix64::new(42).derive(crate::NET_STREAM_SALT);
        assert_ne!(fault.next_u64(), net.next_u64());
    }
}
