//! Execution observers for instrumentation.
//!
//! Probes let experiments watch an execution without perturbing it. The
//! paper's resilience analyses revolve around how *synchronized* the
//! processors stay — e.g. Lemma D.5 bounds `|Sentᵗᵢ − Sentᵗⱼ| ≤ 2k²` for
//! coalition members of `A-LEADuni` — so the flagship probe,
//! [`SyncGapProbe`], records the maximum over time of the pairwise
//! difference in sent-message counts across a watched set of nodes.

use crate::topology::NodeId;

/// Observer of engine events.
///
/// All methods have empty default bodies so a probe only implements what it
/// needs. `sent` and `received` are cumulative per-node counters *after*
/// the event.
pub trait Probe<M> {
    /// A message was enqueued on the link `from -> to`.
    fn on_send(&mut self, from: NodeId, to: NodeId, msg: &M, sent: &[u64]) {
        let _ = (from, to, msg, sent);
    }

    /// A message was delivered (and processed, unless the receiver had
    /// already terminated).
    fn on_deliver(&mut self, from: NodeId, to: NodeId, msg: &M, received: &[u64]) {
        let _ = (from, to, msg, received);
    }

    /// A node terminated with the given output (`None` = abort).
    fn on_terminate(&mut self, node: NodeId, output: Option<u64>) {
        let _ = (node, output);
    }
}

/// The do-nothing probe; the default for [`crate::SimBuilder`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl<M> Probe<M> for NoProbe {}

/// Records `max over time t, over watched pairs (i, j)` of
/// `|Sentᵗᵢ − Sentᵗⱼ|` — the paper's "m-synchronized" measure.
///
/// # Examples
///
/// ```
/// use ring_sim::{Probe, SyncGapProbe};
///
/// let mut probe = SyncGapProbe::new(vec![0, 2]);
/// // Simulate: node 0 sends three times, node 2 never sends.
/// let mut sent = vec![0u64; 3];
/// for _ in 0..3 {
///     sent[0] += 1;
///     Probe::<u64>::on_send(&mut probe, 0, 1, &0, &sent);
/// }
/// assert_eq!(probe.max_gap(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SyncGapProbe {
    watched: Vec<NodeId>,
    counts: Vec<u64>,
    max_gap: u64,
}

impl SyncGapProbe {
    /// Watches the given set of nodes (deduplicated, order irrelevant).
    pub fn new(mut watched: Vec<NodeId>) -> Self {
        watched.sort_unstable();
        watched.dedup();
        let counts = vec![0; watched.len()];
        Self {
            watched,
            counts,
            max_gap: 0,
        }
    }

    /// The recorded maximum sent-count gap so far.
    pub fn max_gap(&self) -> u64 {
        self.max_gap
    }

    /// The watched node set.
    pub fn watched(&self) -> &[NodeId] {
        &self.watched
    }
}

impl<M> Probe<M> for SyncGapProbe {
    fn on_send(&mut self, from: NodeId, _to: NodeId, _msg: &M, sent: &[u64]) {
        if let Ok(idx) = self.watched.binary_search(&from) {
            self.counts[idx] = sent[from];
            let max = *self.counts.iter().max().expect("non-empty watch set");
            let min = *self.counts.iter().min().expect("non-empty watch set");
            self.max_gap = self.max_gap.max(max - min);
        }
    }
}

/// Records every sent message (up to a cap), for debugging protocols and
/// asserting exact wire traces in tests.
///
/// # Examples
///
/// ```
/// use ring_sim::{MessageLogProbe, Probe};
///
/// let mut log = MessageLogProbe::new(8);
/// log.on_send(0, 1, &42u64, &[]);
/// assert_eq!(log.entries(), &[(0, 1, 42)]);
/// assert!(!log.truncated());
/// ```
#[derive(Debug, Clone)]
pub struct MessageLogProbe<M> {
    entries: Vec<(NodeId, NodeId, M)>,
    cap: usize,
    truncated: bool,
}

impl<M> MessageLogProbe<M> {
    /// Creates a log retaining at most `cap` messages (further sends only
    /// set the [`MessageLogProbe::truncated`] flag).
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Vec::new(),
            cap,
            truncated: false,
        }
    }

    /// The recorded `(from, to, message)` triples, in send order.
    pub fn entries(&self) -> &[(NodeId, NodeId, M)] {
        &self.entries
    }

    /// `true` if sends beyond the cap were dropped from the log.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Messages sent by `node`, in order.
    pub fn sent_by(&self, node: NodeId) -> Vec<&M> {
        self.entries
            .iter()
            .filter(|&&(from, _, _)| from == node)
            .map(|(_, _, m)| m)
            .collect()
    }
}

impl<M: Clone> Probe<M> for MessageLogProbe<M> {
    fn on_send(&mut self, from: NodeId, to: NodeId, msg: &M, _sent: &[u64]) {
        if self.entries.len() < self.cap {
            self.entries.push((from, to, msg.clone()));
        } else {
            self.truncated = true;
        }
    }
}

/// Counts messages delivered to each node, split by whether the receiver
/// had terminated (useful for failure-injection tests).
#[derive(Debug, Default, Clone)]
pub struct DeliveryCountProbe {
    /// Deliveries processed by a live node.
    pub processed: u64,
    /// Deliveries dropped because the receiver had terminated.
    pub dropped: u64,
    live: Vec<bool>,
}

impl DeliveryCountProbe {
    /// Creates a probe for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            processed: 0,
            dropped: 0,
            live: vec![true; n],
        }
    }
}

impl<M> Probe<M> for DeliveryCountProbe {
    fn on_deliver(&mut self, _from: NodeId, to: NodeId, _msg: &M, _received: &[u64]) {
        if self.live.get(to).copied().unwrap_or(false) {
            self.processed += 1;
        } else {
            self.dropped += 1;
        }
    }

    fn on_terminate(&mut self, node: NodeId, _output: Option<u64>) {
        if let Some(slot) = self.live.get_mut(node) {
            *slot = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_gap_tracks_watched_only() {
        let mut probe = SyncGapProbe::new(vec![1, 3]);
        let mut sent = vec![0u64; 4];
        // Unwatched node 0 sends a lot; gap must remain 0.
        for _ in 0..10 {
            sent[0] += 1;
            Probe::<u64>::on_send(&mut probe, 0, 1, &0, &sent);
        }
        assert_eq!(probe.max_gap(), 0);
        sent[1] += 1;
        Probe::<u64>::on_send(&mut probe, 1, 2, &0, &sent);
        assert_eq!(probe.max_gap(), 1);
        sent[3] += 1;
        Probe::<u64>::on_send(&mut probe, 3, 0, &0, &sent);
        assert_eq!(probe.max_gap(), 1);
    }

    #[test]
    fn sync_gap_dedups_watch_set() {
        let probe = SyncGapProbe::new(vec![2, 2, 1]);
        assert_eq!(probe.watched(), &[1, 2]);
    }

    #[test]
    fn message_log_caps_and_flags() {
        let mut log: MessageLogProbe<u64> = MessageLogProbe::new(2);
        log.on_send(0, 1, &10, &[]);
        log.on_send(1, 2, &20, &[]);
        log.on_send(2, 0, &30, &[]);
        assert_eq!(log.entries().len(), 2);
        assert!(log.truncated());
        assert_eq!(log.sent_by(1), vec![&20]);
        assert!(log.sent_by(9).is_empty());
    }

    #[test]
    fn delivery_probe_splits_by_liveness() {
        let mut probe = DeliveryCountProbe::new(2);
        Probe::<u64>::on_deliver(&mut probe, 0, 1, &0, &[]);
        Probe::<u64>::on_terminate(&mut probe, 1, Some(0));
        Probe::<u64>::on_deliver(&mut probe, 0, 1, &0, &[]);
        assert_eq!(probe.processed, 1);
        assert_eq!(probe.dropped, 1);
    }
}
