//! A synchronous round-based engine (the classical synchronous LOCAL
//! model).
//!
//! The paper's hard results live in the *asynchronous* model; its related
//! work (Section 1.1) notes that synchronous networks admit trivially
//! optimal fair leader election, resilient to `n − 1` rational agents,
//! because **silence is detectable**: every processor must commit its
//! message for round `r` before seeing anyone else's round-`r` message,
//! and a processor that stays quiet is caught immediately. This engine
//! makes that contrast executable (see `fle-core`'s `SyncLead`).
//!
//! Rounds proceed in lock-step: at round `r` every live node receives the
//! messages addressed to it in round `r − 1` (sorted by sender id) and
//! produces its round-`r` sends atomically.

use crate::outcome::{outcome_of, Outcome};
use crate::topology::{NodeId, Topology};

/// Behaviour of a processor in the synchronous model.
pub trait SyncNode<M> {
    /// Called once per round while the node is live. `inbox` holds the
    /// previous round's messages to this node, sorted by sender.
    fn on_round(&mut self, round: usize, inbox: &[(NodeId, M)], ctx: &mut SyncCtx<'_, M>);
}

/// Action handle for one synchronous round.
#[derive(Debug)]
pub struct SyncCtx<'a, M> {
    me: NodeId,
    out_neighbors: &'a [NodeId],
    sends: Vec<(NodeId, M)>,
    output: Option<Option<u64>>,
}

impl<'a, M> SyncCtx<'a, M> {
    /// The node being activated.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The node's successors in the topology.
    pub fn out_neighbors(&self) -> &[NodeId] {
        self.out_neighbors
    }

    /// Sends `msg` to neighbor `to`, delivered at the start of the next
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if there is no edge to `to`.
    pub fn send_to(&mut self, to: NodeId, msg: M) {
        assert!(
            self.out_neighbors.contains(&to),
            "node {} has no link to {to}",
            self.me
        );
        self.sends.push((to, msg));
    }

    /// Terminates with an output (`None` = abort `⊥`); sends from this
    /// round are still delivered.
    pub fn terminate(&mut self, output: Option<u64>) {
        if self.output.is_none() {
            self.output = Some(output);
        }
    }

    /// Terminates with the abort output `⊥`.
    pub fn abort(&mut self) {
        self.terminate(None);
    }
}

/// A synchronous simulation over a topology.
pub struct SyncSim<'p, M> {
    topology: Topology,
    nodes: Vec<Option<Box<dyn SyncNode<M> + 'p>>>,
    max_rounds: usize,
}

impl<'p, M> std::fmt::Debug for SyncSim<'p, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncSim")
            .field("topology", &self.topology)
            .field("max_rounds", &self.max_rounds)
            .finish_non_exhaustive()
    }
}

impl<'p, M> SyncSim<'p, M> {
    /// Starts a builder over the topology (default 4·n rounds cap).
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        Self {
            topology,
            nodes: (0..n).map(|_| None).collect(),
            max_rounds: 4 * n + 8,
        }
    }

    /// Installs the behaviour of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn node(mut self, id: NodeId, node: impl SyncNode<M> + 'p) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(Box::new(node));
        self
    }

    /// Installs a boxed behaviour of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn boxed_node(mut self, id: NodeId, node: Box<dyn SyncNode<M> + 'p>) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(node);
        self
    }

    /// Caps the number of rounds (non-termination ⇒ `FAIL`).
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Runs to unanimous termination or the round cap.
    ///
    /// # Panics
    ///
    /// Panics if some node id was left without a behaviour.
    pub fn run(self) -> SyncExecution {
        let n = self.topology.len();
        let mut nodes: Vec<Box<dyn SyncNode<M> + 'p>> = self
            .nodes
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("node {i} has no behaviour")))
            .collect();
        let out_neighbors: Vec<Vec<NodeId>> =
            (0..n).map(|i| self.topology.out_neighbors(i)).collect();
        let mut outputs: Vec<Option<Option<u64>>> = vec![None; n];
        let mut inboxes: Vec<Vec<(NodeId, M)>> = (0..n).map(|_| Vec::new()).collect();
        let mut messages = 0u64;
        let mut rounds = 0usize;
        for round in 0..self.max_rounds {
            rounds = round;
            if outputs.iter().all(Option::is_some) {
                break;
            }
            let mut next: Vec<Vec<(NodeId, M)>> = (0..n).map(|_| Vec::new()).collect();
            for (id, node) in nodes.iter_mut().enumerate() {
                if outputs[id].is_some() {
                    continue;
                }
                let mut inbox = std::mem::take(&mut inboxes[id]);
                inbox.sort_by_key(|&(from, _)| from);
                let mut ctx = SyncCtx {
                    me: id,
                    out_neighbors: &out_neighbors[id],
                    sends: Vec::new(),
                    output: None,
                };
                node.on_round(round, &inbox, &mut ctx);
                messages += ctx.sends.len() as u64;
                for (to, msg) in ctx.sends {
                    next[to].push((id, msg));
                }
                if let Some(out) = ctx.output {
                    outputs[id] = Some(out);
                }
            }
            inboxes = next;
        }
        SyncExecution {
            outcome: outcome_of(&outputs, false),
            outputs,
            rounds,
            messages,
        }
    }
}

/// Result of a synchronous run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncExecution {
    /// The global outcome.
    pub outcome: Outcome,
    /// Per-node terminal outputs.
    pub outputs: Vec<Option<Option<u64>>>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages sent.
    pub messages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FailReason;

    struct Echo {
        n: usize,
    }

    impl SyncNode<u64> for Echo {
        fn on_round(&mut self, round: usize, inbox: &[(NodeId, u64)], ctx: &mut SyncCtx<'_, u64>) {
            match round {
                0 => {
                    for to in 0..self.n {
                        if to != ctx.me() {
                            ctx.send_to(to, ctx.me() as u64);
                        }
                    }
                }
                _ => {
                    let sum: u64 = inbox.iter().map(|&(_, v)| v).sum();
                    ctx.terminate(Some(sum));
                }
            }
        }
    }

    #[test]
    fn broadcast_sum_in_two_rounds() {
        let n = 5;
        let mut sim = SyncSim::new(Topology::complete(n));
        for i in 0..n {
            sim = sim.node(i, Echo { n });
        }
        let exec = sim.run();
        // Each node sums the other ids: total = 0+1+2+3+4 − own id.
        assert!(exec.outcome.is_fail()); // outputs differ per node
        assert_eq!(exec.rounds, 2);
        assert_eq!(exec.messages, (n * (n - 1)) as u64);
    }

    #[test]
    fn round_cap_fails_cleanly() {
        struct Forever;
        impl SyncNode<u64> for Forever {
            fn on_round(&mut self, _r: usize, _i: &[(NodeId, u64)], _c: &mut SyncCtx<'_, u64>) {}
        }
        let exec = SyncSim::<u64>::new(Topology::complete(2))
            .node(0, Forever)
            .node(1, Forever)
            .max_rounds(5)
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::StepLimit));
    }

    #[test]
    fn inbox_is_sorted_by_sender() {
        struct Check;
        impl SyncNode<u64> for Check {
            fn on_round(
                &mut self,
                round: usize,
                inbox: &[(NodeId, u64)],
                ctx: &mut SyncCtx<'_, u64>,
            ) {
                if round == 0 {
                    for to in ctx.out_neighbors().to_vec() {
                        ctx.send_to(to, 1);
                    }
                } else {
                    assert!(inbox.windows(2).all(|w| w[0].0 < w[1].0));
                    ctx.terminate(Some(0));
                }
            }
        }
        let n = 6;
        let mut sim = SyncSim::new(Topology::complete(n));
        for i in 0..n {
            sim = sim.node(i, Check);
        }
        assert_eq!(sim.run().outcome, Outcome::Elected(0));
    }
}
