//! The [`Node`] behaviour trait and the [`Ctx`] action handle.

use crate::topology::NodeId;

/// Behaviour of a single processor.
///
/// A node is activated exactly once per wake-up or message delivery. During
/// an activation it may send any number of messages and may terminate with
/// an output (paper, Section 2: "When a processor receives a message, it may
/// send zero or more messages and afterwards it may also select some output
/// and terminate"). After terminating, a node is never activated again;
/// messages delivered to it are counted and dropped.
///
/// Implementations are *strategies* in the paper's game-theoretic sense:
/// the honest protocol assigns one strategy to every node, an adversarial
/// deviation substitutes arbitrary strategies on the coalition.
pub trait Node<M> {
    /// Called when the node wakes up spontaneously (only for nodes listed
    /// in [`crate::SimBuilder::wake`]).
    fn on_wake(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message arrives on an incoming link.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>);
}

/// A [`Node`] built from a closure, convenient for tests and small
/// experiments.
///
/// The closure receives `(from, msg, ctx)` on every delivery; wake-up calls
/// the optional wake closure.
///
/// # Examples
///
/// ```
/// use ring_sim::{FnNode, Outcome, SimBuilder, Topology};
///
/// let echo = |_from: usize, msg: u64, ctx: &mut ring_sim::Ctx<'_, u64>| {
///     ctx.terminate(Some(msg));
/// };
/// let exec = SimBuilder::new(Topology::ring(2))
///     .node(0, FnNode::new(echo).on_wake(|ctx| ctx.send(7)))
///     .node(1, FnNode::new(echo))
///     .wake(0)
///     .run();
/// // node 0 never receives anything, so the run deadlocks without
/// // unanimous termination:
/// assert!(matches!(exec.outcome, Outcome::Fail(_)));
/// ```
pub struct FnNode<M, F, W = fn(&mut Ctx<'_, M>)>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
    W: FnMut(&mut Ctx<'_, M>),
{
    on_message: F,
    on_wake: Option<W>,
    _marker: std::marker::PhantomData<fn(M)>,
}

impl<M, F> FnNode<M, F>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
{
    /// Creates a node that handles messages with `f` and ignores wake-ups.
    pub fn new(f: F) -> Self {
        FnNode {
            on_message: f,
            on_wake: None,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, F, W> FnNode<M, F, W>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
    W: FnMut(&mut Ctx<'_, M>),
{
    /// Adds a wake-up handler.
    pub fn on_wake<W2>(self, w: W2) -> FnNode<M, F, W2>
    where
        W2: FnMut(&mut Ctx<'_, M>),
    {
        FnNode {
            on_message: self.on_message,
            on_wake: Some(w),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, F, W> Node<M> for FnNode<M, F, W>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
    W: FnMut(&mut Ctx<'_, M>),
{
    fn on_wake(&mut self, ctx: &mut Ctx<'_, M>) {
        if let Some(w) = &mut self.on_wake {
            w(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>) {
        (self.on_message)(from, msg, ctx);
    }
}

/// Boxed behaviours forward to their contents, so heterogeneous
/// `Vec<Box<dyn Node<M>>>` mixes run through the same engine loop as
/// monomorphized node vectors ([`crate::Engine::run_mono`]).
impl<M, N: Node<M> + ?Sized> Node<M> for Box<N> {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, M>) {
        (**self).on_wake(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>) {
        (**self).on_message(from, msg, ctx);
    }
}

/// The engine's reusable per-activation send buffer.
///
/// A node's sends are buffered during its activation and applied by the
/// engine afterwards. On a unidirectional ring an activation sends at most
/// two messages (e.g. a data plus a validation message), so the first two
/// sends land in inline slots; only deeper bursts touch the spill vector,
/// whose capacity is retained across activations and trials. One `SendBuf`
/// lives inside each [`crate::Engine`], so steady-state activations
/// allocate nothing.
#[derive(Debug)]
pub(crate) struct SendBuf<M> {
    first: Option<(NodeId, M)>,
    second: Option<(NodeId, M)>,
    spill: Vec<(NodeId, M)>,
}

impl<M> Default for SendBuf<M> {
    fn default() -> Self {
        SendBuf {
            first: None,
            second: None,
            spill: Vec::new(),
        }
    }
}

impl<M> SendBuf<M> {
    /// Buffered sends, in push order.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.first.is_some() as usize + self.second.is_some() as usize + self.spill.len()
    }

    #[inline]
    pub(crate) fn push(&mut self, to: NodeId, msg: M) {
        if self.first.is_none() {
            self.first = Some((to, msg));
        } else if self.second.is_none() {
            self.second = Some((to, msg));
        } else {
            self.spill.push((to, msg));
        }
    }

    /// Applies `f` to every buffered send in push order and empties the
    /// buffer, keeping the spill capacity.
    #[inline]
    pub(crate) fn drain_with(&mut self, mut f: impl FnMut(NodeId, M)) {
        if let Some((to, msg)) = self.first.take() {
            f(to, msg);
        }
        if let Some((to, msg)) = self.second.take() {
            f(to, msg);
        }
        for (to, msg) in self.spill.drain(..) {
            f(to, msg);
        }
    }

    /// Drops all buffered sends, keeping the spill capacity.
    pub(crate) fn clear(&mut self) {
        self.first = None;
        self.second = None;
        self.spill.clear();
    }
}

/// Handle given to a node during an activation.
///
/// Lets the node send messages along its outgoing links and terminate with
/// an output. All actions are buffered and applied by the engine after the
/// activation returns; the send buffer is the engine's persistent
/// `SendBuf`, so an activation allocates nothing.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) out_neighbors: &'a [NodeId],
    pub(crate) sends: &'a mut SendBuf<M>,
    pub(crate) output: Option<Option<u64>>,
}

impl<'a, M> Ctx<'a, M> {
    pub(crate) fn new(me: NodeId, out_neighbors: &'a [NodeId], sends: &'a mut SendBuf<M>) -> Self {
        Ctx {
            me,
            out_neighbors,
            sends,
            output: None,
        }
    }

    /// The id of the node being activated.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The node's successors, in edge-insertion order.
    #[inline]
    pub fn out_neighbors(&self) -> &[NodeId] {
        self.out_neighbors
    }

    /// Sends `msg` on the node's unique outgoing link.
    ///
    /// This is the natural primitive on a unidirectional ring.
    ///
    /// # Panics
    ///
    /// Panics if the node does not have exactly one outgoing link; use
    /// [`Ctx::send_to`] on general topologies.
    #[inline]
    pub fn send(&mut self, msg: M) {
        assert_eq!(
            self.out_neighbors.len(),
            1,
            "Ctx::send requires exactly one outgoing link (node {} has {}); use send_to",
            self.me,
            self.out_neighbors.len()
        );
        let to = self.out_neighbors[0];
        self.sends.push(to, msg);
    }

    /// Sends `msg` to the neighbor `to`.
    ///
    /// # Panics
    ///
    /// Panics if there is no edge from this node to `to` — sending on a
    /// non-existent link is a programming error, not a runtime condition.
    #[inline]
    pub fn send_to(&mut self, to: NodeId, msg: M) {
        assert!(
            self.out_neighbors.contains(&to),
            "node {} has no outgoing link to {}",
            self.me,
            to
        );
        self.sends.push(to, msg);
    }

    /// Terminates this node with the given output.
    ///
    /// `Some(v)` is a regular output, `None` is the abort output `⊥`.
    /// Sends buffered earlier in the same activation are still delivered;
    /// the node is never activated again afterwards. Calling `terminate`
    /// twice in one activation keeps the first output.
    #[inline]
    pub fn terminate(&mut self, output: Option<u64>) {
        if self.output.is_none() {
            self.output = Some(output);
        }
    }

    /// Terminates with the abort output `⊥` (the paper's punishment for a
    /// detected deviation).
    pub fn abort(&mut self) {
        self.terminate(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drained(buf: &mut SendBuf<u64>) -> Vec<(NodeId, u64)> {
        let mut out = Vec::new();
        buf.drain_with(|to, msg| out.push((to, msg)));
        out
    }

    #[test]
    fn ctx_buffers_sends_in_order() {
        let neigh = [1usize];
        let mut buf = SendBuf::default();
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh, &mut buf);
        ctx.send(10);
        ctx.send(20);
        assert_eq!(drained(&mut buf), vec![(1, 10), (1, 20)]);
    }

    #[test]
    fn send_buf_spills_past_two_in_order() {
        let mut buf = SendBuf::default();
        for v in 0..5u64 {
            buf.push(1, v);
        }
        assert_eq!(buf.len(), 5);
        assert_eq!(
            drained(&mut buf),
            vec![(1, 0), (1, 1), (1, 2), (1, 3), (1, 4)]
        );
        assert_eq!(buf.len(), 0);
        // The drained buffer is reusable: inline slots refill first.
        buf.push(2, 9);
        assert_eq!(drained(&mut buf), vec![(2, 9)]);
        buf.push(2, 1);
        buf.clear();
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn terminate_keeps_first_output() {
        let neigh = [1usize];
        let mut buf = SendBuf::default();
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh, &mut buf);
        ctx.terminate(Some(3));
        ctx.terminate(Some(9));
        assert_eq!(ctx.output, Some(Some(3)));
    }

    #[test]
    fn abort_is_none_output() {
        let neigh = [1usize];
        let mut buf = SendBuf::default();
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh, &mut buf);
        ctx.abort();
        assert_eq!(ctx.output, Some(None));
    }

    #[test]
    #[should_panic(expected = "no outgoing link")]
    fn send_to_nonexistent_link_panics() {
        let neigh = [1usize];
        let mut buf = SendBuf::default();
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh, &mut buf);
        ctx.send_to(2, 1);
    }
}
