//! The [`Node`] behaviour trait and the [`Ctx`] action handle.

use crate::topology::NodeId;

/// Behaviour of a single processor.
///
/// A node is activated exactly once per wake-up or message delivery. During
/// an activation it may send any number of messages and may terminate with
/// an output (paper, Section 2: "When a processor receives a message, it may
/// send zero or more messages and afterwards it may also select some output
/// and terminate"). After terminating, a node is never activated again;
/// messages delivered to it are counted and dropped.
///
/// Implementations are *strategies* in the paper's game-theoretic sense:
/// the honest protocol assigns one strategy to every node, an adversarial
/// deviation substitutes arbitrary strategies on the coalition.
pub trait Node<M> {
    /// Called when the node wakes up spontaneously (only for nodes listed
    /// in [`crate::SimBuilder::wake`]).
    fn on_wake(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message arrives on an incoming link.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>);
}

/// A [`Node`] built from a closure, convenient for tests and small
/// experiments.
///
/// The closure receives `(from, msg, ctx)` on every delivery; wake-up calls
/// the optional wake closure.
///
/// # Examples
///
/// ```
/// use ring_sim::{FnNode, Outcome, SimBuilder, Topology};
///
/// let echo = |_from: usize, msg: u64, ctx: &mut ring_sim::Ctx<'_, u64>| {
///     ctx.terminate(Some(msg));
/// };
/// let exec = SimBuilder::new(Topology::ring(2))
///     .node(0, FnNode::new(echo).on_wake(|ctx| ctx.send(7)))
///     .node(1, FnNode::new(echo))
///     .wake(0)
///     .run();
/// // node 0 never receives anything, so the run deadlocks without
/// // unanimous termination:
/// assert!(matches!(exec.outcome, Outcome::Fail(_)));
/// ```
pub struct FnNode<M, F, W = fn(&mut Ctx<'_, M>)>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
    W: FnMut(&mut Ctx<'_, M>),
{
    on_message: F,
    on_wake: Option<W>,
    _marker: std::marker::PhantomData<fn(M)>,
}

impl<M, F> FnNode<M, F>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
{
    /// Creates a node that handles messages with `f` and ignores wake-ups.
    pub fn new(f: F) -> Self {
        FnNode {
            on_message: f,
            on_wake: None,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, F, W> FnNode<M, F, W>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
    W: FnMut(&mut Ctx<'_, M>),
{
    /// Adds a wake-up handler.
    pub fn on_wake<W2>(self, w: W2) -> FnNode<M, F, W2>
    where
        W2: FnMut(&mut Ctx<'_, M>),
    {
        FnNode {
            on_message: self.on_message,
            on_wake: Some(w),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, F, W> Node<M> for FnNode<M, F, W>
where
    F: FnMut(NodeId, M, &mut Ctx<'_, M>),
    W: FnMut(&mut Ctx<'_, M>),
{
    fn on_wake(&mut self, ctx: &mut Ctx<'_, M>) {
        if let Some(w) = &mut self.on_wake {
            w(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>) {
        (self.on_message)(from, msg, ctx);
    }
}

/// Handle given to a node during an activation.
///
/// Lets the node send messages along its outgoing links and terminate with
/// an output. All actions are buffered and applied by the engine after the
/// activation returns.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) out_neighbors: &'a [NodeId],
    pub(crate) sends: Vec<(NodeId, M)>,
    pub(crate) output: Option<Option<u64>>,
}

impl<'a, M> Ctx<'a, M> {
    pub(crate) fn new(me: NodeId, out_neighbors: &'a [NodeId]) -> Self {
        Ctx {
            me,
            out_neighbors,
            sends: Vec::new(),
            output: None,
        }
    }

    /// The id of the node being activated.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The node's successors, in edge-insertion order.
    pub fn out_neighbors(&self) -> &[NodeId] {
        self.out_neighbors
    }

    /// Sends `msg` on the node's unique outgoing link.
    ///
    /// This is the natural primitive on a unidirectional ring.
    ///
    /// # Panics
    ///
    /// Panics if the node does not have exactly one outgoing link; use
    /// [`Ctx::send_to`] on general topologies.
    pub fn send(&mut self, msg: M) {
        assert_eq!(
            self.out_neighbors.len(),
            1,
            "Ctx::send requires exactly one outgoing link (node {} has {}); use send_to",
            self.me,
            self.out_neighbors.len()
        );
        let to = self.out_neighbors[0];
        self.sends.push((to, msg));
    }

    /// Sends `msg` to the neighbor `to`.
    ///
    /// # Panics
    ///
    /// Panics if there is no edge from this node to `to` — sending on a
    /// non-existent link is a programming error, not a runtime condition.
    pub fn send_to(&mut self, to: NodeId, msg: M) {
        assert!(
            self.out_neighbors.contains(&to),
            "node {} has no outgoing link to {}",
            self.me,
            to
        );
        self.sends.push((to, msg));
    }

    /// Terminates this node with the given output.
    ///
    /// `Some(v)` is a regular output, `None` is the abort output `⊥`.
    /// Sends buffered earlier in the same activation are still delivered;
    /// the node is never activated again afterwards. Calling `terminate`
    /// twice in one activation keeps the first output.
    pub fn terminate(&mut self, output: Option<u64>) {
        if self.output.is_none() {
            self.output = Some(output);
        }
    }

    /// Terminates with the abort output `⊥` (the paper's punishment for a
    /// detected deviation).
    pub fn abort(&mut self) {
        self.terminate(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_sends_in_order() {
        let neigh = [1usize];
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh);
        ctx.send(10);
        ctx.send(20);
        assert_eq!(ctx.sends, vec![(1, 10), (1, 20)]);
    }

    #[test]
    fn terminate_keeps_first_output() {
        let neigh = [1usize];
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh);
        ctx.terminate(Some(3));
        ctx.terminate(Some(9));
        assert_eq!(ctx.output, Some(Some(3)));
    }

    #[test]
    fn abort_is_none_output() {
        let neigh = [1usize];
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh);
        ctx.abort();
        assert_eq!(ctx.output, Some(None));
    }

    #[test]
    #[should_panic(expected = "no outgoing link")]
    fn send_to_nonexistent_link_panics() {
        let neigh = [1usize];
        let mut ctx: Ctx<'_, u64> = Ctx::new(0, &neigh);
        ctx.send_to(2, 1);
    }
}
