//! Per-worker trial memory: the [`TrialArena`] buffer pool and the
//! [`ArenaBacked`] reclamation trait.
//!
//! Batch sweeps run many thousands of trials over one topology, and after
//! PR 3's engine-buffer reuse the remaining per-trial heap traffic was node
//! construction: every phase processor allocates its packed `data ‖ vals`
//! store per trial. `TrialArena` removes that — a worker owns one arena,
//! node builders draw their buffers from it, and the worker reclaims the
//! buffers after each trial, so steady-state trials allocate nothing.
//!
//! Safe Rust cannot hand out two owned views of one bump-pointer slab, so
//! the arena is a *bump-style pool*: `u64` buffers are handed out by value
//! (each one is a `Vec<u64>` whose capacity survives round-trips) and
//! returned via [`TrialArena::reclaim_u64s`] — typically through
//! [`ArenaBacked::reclaim`] on the finished node vector. [`TrialArena::reset`]
//! marks the trial boundary. After the first trial of a batch the pool has
//! reached its high-water mark and [`TrialArena::fresh_allocs`] stops
//! moving — the property the regression tests pin.

/// A per-worker pool of `u64` buffers for trial-lifetime node state.
///
/// # Examples
///
/// ```
/// use ring_sim::TrialArena;
///
/// let mut arena = TrialArena::new();
/// for _trial in 0..3 {
///     arena.reset();
///     let buf = arena.alloc_u64s(8);
///     assert_eq!(buf, vec![0u64; 8]);
///     arena.reclaim_u64s(buf);
/// }
/// // The first trial allocated; the rest reused it.
/// assert_eq!(arena.fresh_allocs(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TrialArena {
    free: Vec<Vec<u64>>,
    fresh_allocs: u64,
}

impl TrialArena {
    /// Creates an empty arena (no buffers pooled yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zero-filled `u64` buffer of length `len`, reusing pooled
    /// storage when a previous trial returned any.
    ///
    /// The buffer is an owned `Vec<u64>` so node state can hold it without
    /// lifetime plumbing; return it with [`TrialArena::reclaim_u64s`] (or
    /// [`ArenaBacked::reclaim`]) to keep the pool warm.
    pub fn alloc_u64s(&mut self, len: usize) -> Vec<u64> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.fresh_allocs += 1;
                vec![0; len]
            }
        }
    }

    /// Returns a buffer to the pool (its capacity is what the next
    /// [`TrialArena::alloc_u64s`] reuses). Capacity-less vectors — e.g. the
    /// `Vec::new()` a [`std::mem::take`]n store leaves behind — are
    /// dropped, not pooled.
    pub fn reclaim_u64s(&mut self, buf: Vec<u64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Marks a trial boundary. The pool itself is retained — reclaimed
    /// buffers stay warm — so this is currently a no-op hook; callers
    /// should still invoke it between trials so the arena can police or
    /// compact its storage in the future without call-site changes.
    #[inline]
    pub fn reset(&mut self) {}

    /// Number of buffers currently pooled (available for reuse).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// How many times the arena had to fall back to a fresh heap
    /// allocation. Constant across trials once a batch reaches steady
    /// state — the zero-allocation property the tests assert.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }
}

/// Node state that can hand its arena-drawn buffers back after a trial.
///
/// Implemented by every honest ring-protocol node type; nodes without
/// heap-backed state use the default no-op. Batch workers call
/// [`ArenaBacked::reclaim`] on each node right after a trial finishes, so
/// the next trial's builders find the pool warm.
pub trait ArenaBacked {
    /// Returns any arena-drawn buffers to `arena`. The node must remain in
    /// a droppable (but not necessarily runnable) state afterwards.
    fn reclaim(&mut self, arena: &mut TrialArena) {
        let _ = arena;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed_after_reuse() {
        let mut arena = TrialArena::new();
        let mut buf = arena.alloc_u64s(4);
        buf.iter_mut().for_each(|x| *x = 7);
        arena.reclaim_u64s(buf);
        assert_eq!(arena.pooled(), 1);
        let buf = arena.alloc_u64s(6);
        assert_eq!(buf, vec![0; 6]);
        assert_eq!(arena.fresh_allocs(), 1);
    }

    #[test]
    fn steady_state_stops_allocating() {
        let mut arena = TrialArena::new();
        for _ in 0..10 {
            arena.reset();
            let a = arena.alloc_u64s(16);
            let b = arena.alloc_u64s(16);
            arena.reclaim_u64s(a);
            arena.reclaim_u64s(b);
        }
        assert_eq!(arena.fresh_allocs(), 2);
        assert_eq!(arena.pooled(), 2);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut arena = TrialArena::new();
        arena.reclaim_u64s(Vec::new());
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn default_reclaim_is_a_no_op() {
        struct Plain;
        impl ArenaBacked for Plain {}
        let mut arena = TrialArena::new();
        Plain.reclaim(&mut arena);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(arena.fresh_allocs(), 0);
    }
}
