//! Global execution outcomes.

/// The global outcome of an execution (paper, Section 2).
///
/// `outcome(e) = o` when **all** processors terminate with output `o`;
/// everything else — an abort (`⊥`), disagreement between two outputs, or a
/// processor that never terminates — is `FAIL`. The solution-preference
/// assumption gives every rational agent utility 0 for `FAIL`, which is why
/// honest nodes can punish detected deviations by aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Every node terminated with the same output value.
    Elected(u64),
    /// The execution failed; the reason is diagnostic only — all failures
    /// are identical from the game's perspective.
    Fail(FailReason),
}

impl Outcome {
    /// The elected value, if any.
    pub fn elected(&self) -> Option<u64> {
        match self {
            Outcome::Elected(v) => Some(*v),
            Outcome::Fail(_) => None,
        }
    }

    /// `true` if the execution failed.
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail(_))
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Elected(v) => write!(f, "elected({v})"),
            Outcome::Fail(r) => write!(f, "fail({r})"),
        }
    }
}

/// Why an execution failed. Diagnostic detail beyond the paper's single
/// `FAIL` outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailReason {
    /// Some node terminated with the abort output `⊥`.
    Abort,
    /// Two nodes terminated with different outputs.
    Disagreement,
    /// No messages remained in flight but some node never terminated.
    Deadlock,
    /// The step limit was exceeded (treated as non-termination).
    StepLimit,
    /// Quiescence was reached with live non-terminated nodes while a
    /// crash fault of the installed [`FaultPlan`](crate::FaultPlan) had
    /// fired: the crash partitioned the election. Never produced on the
    /// fault-free path (without a fired crash the same condition is
    /// [`FailReason::Deadlock`]).
    CrashPartition,
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailReason::Abort => "abort",
            FailReason::Disagreement => "disagreement",
            FailReason::Deadlock => "deadlock",
            FailReason::StepLimit => "step limit",
            FailReason::CrashPartition => "crash partition",
        };
        f.write_str(s)
    }
}

/// Derives the global outcome from per-node outputs.
///
/// `outputs[i]` is `None` while node `i` has not terminated, `Some(None)`
/// for `⊥`, and `Some(Some(v))` for a regular output.
pub(crate) fn outcome_of(outputs: &[Option<Option<u64>>], all_delivered: bool) -> Outcome {
    let mut agreed: Option<u64> = None;
    for out in outputs {
        match out {
            None => {
                return Outcome::Fail(if all_delivered {
                    FailReason::Deadlock
                } else {
                    FailReason::StepLimit
                });
            }
            Some(None) => return Outcome::Fail(FailReason::Abort),
            Some(Some(v)) => match agreed {
                None => agreed = Some(*v),
                Some(prev) if prev != *v => return Outcome::Fail(FailReason::Disagreement),
                Some(_) => {}
            },
        }
    }
    match agreed {
        Some(v) => Outcome::Elected(v),
        // Zero nodes: vacuously everyone agrees, but there is no value.
        None => Outcome::Fail(FailReason::Deadlock),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_outputs_elect() {
        let outs = vec![Some(Some(4)), Some(Some(4)), Some(Some(4))];
        assert_eq!(outcome_of(&outs, true), Outcome::Elected(4));
    }

    #[test]
    fn any_abort_fails() {
        let outs = vec![Some(Some(4)), Some(None), Some(Some(4))];
        assert_eq!(outcome_of(&outs, true), Outcome::Fail(FailReason::Abort));
    }

    #[test]
    fn disagreement_fails() {
        let outs = vec![Some(Some(4)), Some(Some(5))];
        assert_eq!(
            outcome_of(&outs, true),
            Outcome::Fail(FailReason::Disagreement)
        );
    }

    #[test]
    fn unterminated_is_deadlock_or_step_limit() {
        let outs = vec![Some(Some(4)), None];
        assert_eq!(outcome_of(&outs, true), Outcome::Fail(FailReason::Deadlock));
        assert_eq!(
            outcome_of(&outs, false),
            Outcome::Fail(FailReason::StepLimit)
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Outcome::Elected(3).elected(), Some(3));
        assert!(Outcome::Fail(FailReason::Abort).is_fail());
        assert!(!Outcome::Elected(0).is_fail());
        assert_eq!(Outcome::Elected(1).to_string(), "elected(1)");
        assert_eq!(Outcome::Fail(FailReason::Abort).to_string(), "fail(abort)");
    }
}
