//! # ring-sim — asynchronous message-passing simulator
//!
//! A deterministic, single-threaded discrete-event simulator for the
//! asynchronous LOCAL computation model used by Yifrach & Mansour
//! (PODC 2018): processors are nodes on a communication digraph, they
//! exchange messages of arbitrary size over FIFO links, computation happens
//! only upon wake-up or upon receiving a message, and message delivery is
//! controlled by an *oblivious* scheduler (one that never inspects message
//! contents).
//!
//! The simulator is the substrate for every protocol, attack and experiment
//! in this workspace:
//!
//! * [`Topology`] describes the digraph (ring, tree, arbitrary).
//! * [`Node`] is the behaviour of one processor; [`Ctx`] is its handle for
//!   sending messages and terminating with an output.
//! * [`Scheduler`] decides the interleaving of deliveries (FIFO, LIFO,
//!   seeded-random), always respecting per-link FIFO order.
//! * [`SimBuilder`] wires nodes, topology, wake-ups and scheduler together
//!   and [`SimBuilder::run`] produces an [`Execution`] with the global
//!   [`Outcome`] and per-node statistics.
//! * [`Engine`] is the reusable batch-trial variant of the same run loop:
//!   it keeps the per-topology working set alive across trials (used by
//!   `fle-harness` to run thousands of trials per second per worker).
//! * [`EnumerativeScheduler`] and [`for_each_schedule`] exhaustively
//!   enumerate every oblivious schedule of a small instance — a model
//!   checker for schedule-independence claims.
//! * [`Probe`] observes events for instrumentation (e.g. the
//!   "m-synchronized" measurements of the paper's Section 5/6).
//! * [`FaultPlan`] injects deterministic crash-stop faults (with optional
//!   recovery) drawn per trial from a dedicated seed stream — see the
//!   [`fault`] module.
//!
//! ## Example
//!
//! A two-node ping-pong where node 0 wakes up, sends a counter around the
//! ring until it reaches 3, and both nodes elect the final value:
//!
//! ```
//! use ring_sim::{Ctx, Node, NodeId, Outcome, SimBuilder, Topology};
//!
//! struct PingPong { last: u64 }
//!
//! impl Node<u64> for PingPong {
//!     fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
//!         ctx.send(0);
//!     }
//!     fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
//!         self.last = msg;
//!         if msg >= 3 {
//!             ctx.terminate(Some(msg));
//!         } else {
//!             ctx.send(msg + 1);
//!             if msg + 1 >= 3 {
//!                 ctx.terminate(Some(3));
//!             }
//!         }
//!     }
//! }
//!
//! let exec = SimBuilder::new(Topology::ring(2))
//!     .node(0, PingPong { last: 0 })
//!     .node(1, PingPong { last: 0 })
//!     .wake(0)
//!     .run();
//! assert_eq!(exec.outcome, Outcome::Elected(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod batch;
mod engine;
pub mod fault;
mod links;
mod node;
mod outcome;
mod probe;
pub mod rng;
mod scheduler;
pub mod sync;
mod timed;
mod topology;

pub use arena::{ArenaBacked, TrialArena};
pub use engine::{default_step_limit, Engine, Execution, SimBuilder, Stats};
pub use fault::{CrashFault, CrashInstant, FaultConfig, FaultPlan, FAULT_STREAM_SALT};
pub use node::{Ctx, FnNode, Node};
pub use outcome::{FailReason, Outcome};
pub use probe::{DeliveryCountProbe, MessageLogProbe, NoProbe, Probe, SyncGapProbe};
pub use scheduler::{
    for_each_schedule, reference, EnumerativeScheduler, FifoScheduler, LifoScheduler, PackedToken,
    RandomScheduler, ScheduleSweep, Scheduler, Token,
};
pub use timed::{LatencySpec, LinkProfile, TimedNetConfig, TimedScheduler, NET_STREAM_SALT};
pub use topology::{EdgeId, NodeId, Topology, TopologyError};
