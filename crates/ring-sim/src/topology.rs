//! Communication digraphs: rings, trees and arbitrary edge lists.

use std::collections::BTreeSet;

/// Identifier of a processor. Nodes are always `0..n`.
pub type NodeId = usize;

/// Identifier of a directed FIFO link, indexing into [`Topology::edges`].
pub type EdgeId = usize;

/// A directed communication graph with FIFO links.
///
/// Edges are identified by their insertion index. Multiple parallel edges
/// between the same pair of nodes are rejected, as are self-loops: the LOCAL
/// model gives a processor direct access to its own state, so a self-link
/// adds nothing but scheduling ambiguity.
///
/// # Examples
///
/// ```
/// use ring_sim::Topology;
///
/// let ring = Topology::ring(4);
/// assert_eq!(ring.len(), 4);
/// assert_eq!(ring.out_neighbors(3), &[0]);
///
/// let line = Topology::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
/// assert!(line.edge_id(1, 2).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
}

/// Error returned by [`Topology::from_edges`] for malformed edge lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// The same directed edge appeared twice.
    DuplicateEdge(NodeId, NodeId),
    /// An edge from a node to itself.
    SelfLoop(NodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for {n} nodes")
            }
            TopologyError::DuplicateEdge(a, b) => write!(f, "duplicate edge ({a}, {b})"),
            TopologyError::SelfLoop(a) => write!(f, "self loop on node {a}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// A unidirectional ring of `n` nodes: node `i` sends to `(i + 1) % n`.
    ///
    /// This is the topology of the paper's Sections 3–6. Each node has
    /// exactly one incoming link, which is why every oblivious message
    /// schedule produces the same execution (paper, Section 2).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`; a ring needs at least two distinct nodes.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least 2 nodes, got {n}");
        let edges = (0..n).map(|i| (i, (i + 1) % n));
        Self::from_edges(n, edges).expect("ring edges are well formed")
    }

    /// A bidirectional ring: both `i -> i+1` and `i+1 -> i` links.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn bidirectional_ring(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least 2 nodes, got {n}");
        let mut edges = Vec::with_capacity(2 * n);
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            edges.push(((i + 1) % n, i));
        }
        Self::from_edges(n, edges).expect("ring edges are well formed")
    }

    /// The complete digraph: every ordered pair of distinct nodes is a
    /// link (the fully connected network of the paper's Section 1.1
    /// scenarios).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn complete(n: usize) -> Self {
        assert!(n >= 2, "a complete network needs at least 2 nodes, got {n}");
        let mut edges = Vec::with_capacity(n * (n - 1));
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        Self::from_edges(n, edges).expect("complete edges are well formed")
    }

    /// A bidirectional tree from a parent array (`parent[0]` is ignored;
    /// node 0 is the root).
    ///
    /// # Panics
    ///
    /// Panics if `parent.len() < 1` or any `parent[i] >= parent.len()` or
    /// the parent array does not describe a tree rooted at 0.
    pub fn tree(parent: &[NodeId]) -> Self {
        let n = parent.len();
        assert!(n >= 1, "tree needs at least one node");
        let mut edges = Vec::with_capacity(2 * (n.saturating_sub(1)));
        for (child, &p) in parent.iter().enumerate().skip(1) {
            assert!(p < n, "parent {p} out of range");
            assert!(p != child, "node {child} cannot be its own parent");
            edges.push((p, child));
            edges.push((child, p));
        }
        let topo = Self::from_edges(n, edges).expect("tree edges are well formed");
        assert!(
            topo.is_connected(),
            "parent array does not describe a connected tree"
        );
        topo
    }

    /// Builds a topology from an explicit directed edge list.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if an endpoint is out of range, an edge is
    /// duplicated, or an edge is a self-loop.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, TopologyError> {
        let mut seen = BTreeSet::new();
        let mut list = Vec::new();
        let mut out = vec![Vec::new(); n];
        let mut inc = vec![Vec::new(); n];
        for (a, b) in edges {
            if a >= n {
                return Err(TopologyError::NodeOutOfRange { node: a, n });
            }
            if b >= n {
                return Err(TopologyError::NodeOutOfRange { node: b, n });
            }
            if a == b {
                return Err(TopologyError::SelfLoop(a));
            }
            if !seen.insert((a, b)) {
                return Err(TopologyError::DuplicateEdge(a, b));
            }
            let id = list.len();
            list.push((a, b));
            out[a].push(id);
            inc[b].push(id);
        }
        Ok(Self {
            n,
            edges: list,
            out,
            inc,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All directed edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The edge id of the directed link `from -> to`, if present.
    pub fn edge_id(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.out
            .get(from)?
            .iter()
            .copied()
            .find(|&e| self.edges[e].1 == to)
    }

    /// Edge ids leaving `node`, in insertion order.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out[node]
    }

    /// Edge ids entering `node`, in insertion order.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.inc[node]
    }

    /// Successor node ids of `node`, in insertion order.
    pub fn out_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.out[node].iter().map(|&e| self.edges[e].1).collect()
    }

    /// Predecessor node ids of `node`, in insertion order.
    pub fn in_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.inc[node].iter().map(|&e| self.edges[e].0).collect()
    }

    /// `true` if every node can reach every other node, treating edges as
    /// undirected (used to validate tree construction).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &e in &self.out[v] {
                let w = self.edges[e].1;
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
            for &e in &self.inc[v] {
                let w = self.edges[e].0;
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let t = Topology::ring(5);
        assert_eq!(t.len(), 5);
        for i in 0..5 {
            assert_eq!(t.out_neighbors(i), vec![(i + 1) % 5]);
            assert_eq!(t.in_neighbors(i), vec![(i + 4) % 5]);
        }
        assert!(t.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn ring_too_small() {
        let _ = Topology::ring(1);
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = Topology::from_edges(3, [(0, 1), (0, 1)]).unwrap_err();
        assert_eq!(err, TopologyError::DuplicateEdge(0, 1));
    }

    #[test]
    fn rejects_self_loop() {
        let err = Topology::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop(1));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Topology::from_edges(2, [(0, 5)]).unwrap_err();
        assert_eq!(err, TopologyError::NodeOutOfRange { node: 5, n: 2 });
    }

    #[test]
    fn tree_from_parents() {
        // 0 -- 1 -- 3
        //  \-- 2
        let t = Topology::tree(&[0, 0, 0, 1]);
        assert_eq!(t.len(), 4);
        assert!(t.edge_id(0, 1).is_some());
        assert!(t.edge_id(1, 0).is_some());
        assert!(t.edge_id(1, 3).is_some());
        assert!(t.edge_id(3, 1).is_some());
        assert!(t.edge_id(2, 3).is_none());
        assert!(t.is_connected());
    }

    #[test]
    fn bidirectional_ring_has_both_directions() {
        let t = Topology::bidirectional_ring(3);
        for i in 0..3 {
            assert!(t.edge_id(i, (i + 1) % 3).is_some());
            assert!(t.edge_id((i + 1) % 3, i).is_some());
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = TopologyError::DuplicateEdge(1, 2);
        assert!(!e.to_string().is_empty());
    }
}
