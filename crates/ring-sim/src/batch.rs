//! Batch-lockstep execution: k trials of one configuration in one sweep.
//!
//! The honest runs of every ring protocol in this workspace share a
//! property the scalar engine cannot exploit: their *control flow* is
//! data-independent. Which messages are sent, in which order, and when
//! each processor terminates depends only on `(protocol, n)` — the
//! payload values differ per seed, but the event schedule does not
//! (honest nodes only branch on data to *abort*, which never happens in
//! an honest execution). The [`LockstepEngine`] runs `k` seeds of one
//! configuration through a **single** fused-FIFO event stream, so the
//! per-event bookkeeping (queue pop, dispatch, counters) is paid once
//! per *event* instead of once per *trial × event*, and the per-lane
//! payload work is a short contiguous loop over `k` values — the
//! GPU-style structure-of-arrays Monte-Carlo batching trick.
//!
//! Correctness is not entrusted to the lockstep assumption: any branch a
//! batched node cannot take uniformly across all lanes (a would-be abort,
//! a parity violation, a step-limit hit) calls [`LaneCtx::diverge`],
//! [`LockstepEngine::run`] returns `false`, and the caller re-runs those
//! trials through the scalar path — which reproduces the exact per-trial
//! behaviour by construction. Batched results are therefore bit-identical
//! to scalar results in all cases, and the fast path only applies where
//! it is exact.
//!
//! The engine mirrors the scalar fused global-FIFO stream precisely:
//! wake events first (in wake order), then deliveries in send order; a
//! terminated node's deliveries are counted and dropped; `steps` counts
//! wake-ups plus deliveries. Per-trial statistics (`sent`, `received`,
//! `steps`, `delivered`) are shared across lanes — the lockstep property
//! guarantees they are identical — while outputs are per-lane.

use crate::engine::Execution;
use crate::outcome::outcome_of;
use std::collections::VecDeque;

/// The event tag reserved for wake-ups in the fused stream. Protocol
/// message tags must stay below this value.
const WAKE_TAG: u8 = u8::MAX;

/// One fused event: a wake-up or a delivery of a `k`-lane payload.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Message tag (protocol-defined), or [`WAKE_TAG`] for a wake-up.
    tag: u8,
    /// Receiving node.
    to: u32,
    /// Payload group index: the lanes live at
    /// `payloads[off * lanes .. (off + 1) * lanes]`. Unused for wakes.
    off: u32,
}

/// Behaviour of one processor over `k` lockstep trials.
///
/// The mirror of [`crate::Node`] for batched execution: one activation
/// handles the same logical event of all `k` trials at once. Payloads are
/// `k`-lane `u64` slices (`lanes[l]` is trial `l`'s value); messages are
/// distinguished by a small `tag` instead of an enum so the engine stays
/// monomorphic over payload storage.
///
/// Implementations must take the *same* control-flow decisions (sends,
/// termination) for all lanes; whenever a lane would force a different
/// branch — any condition that aborts a scalar honest run — they must
/// call [`LaneCtx::diverge`] instead of guessing.
pub trait LockstepNode {
    /// Called on the node's spontaneous wake-up.
    fn on_wake(&mut self, ctx: &mut LaneCtx<'_>);

    /// Called when a `tag`-tagged message with per-lane payload `lanes`
    /// arrives on the node's incoming ring link.
    fn on_message(&mut self, tag: u8, lanes: &[u64], ctx: &mut LaneCtx<'_>);
}

/// The action handle of one batched activation — the lockstep analogue
/// of [`crate::Ctx`].
pub struct LaneCtx<'a> {
    lanes: usize,
    succ: u32,
    queue: &'a mut VecDeque<Event>,
    payloads: &'a mut Vec<u64>,
    outputs: &'a mut [u64],
    sent: u64,
    terminated: bool,
    diverged: bool,
}

impl LaneCtx<'_> {
    /// The batch width `k` (lanes per payload).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sends one `tag`-tagged message to the ring successor and returns
    /// its `k` payload slots (zero-initialized) for the caller to fill.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is the reserved wake tag (`u8::MAX`).
    pub fn send(&mut self, tag: u8) -> &mut [u64] {
        assert!(tag != WAKE_TAG, "message tag {WAKE_TAG} is reserved");
        let start = self.payloads.len();
        let off = (start / self.lanes) as u32;
        self.payloads.resize(start + self.lanes, 0);
        self.queue.push_back(Event {
            tag,
            to: self.succ,
            off,
        });
        self.sent += 1;
        &mut self.payloads[start..]
    }

    /// Terminates this node in every lane and returns the `k` output
    /// slots for the caller to fill with per-lane outputs.
    ///
    /// As in the scalar engine, sends issued after termination within the
    /// same activation are still delivered; the node is simply never
    /// activated again.
    pub fn terminate(&mut self) -> &mut [u64] {
        self.terminated = true;
        self.outputs
    }

    /// Declares that the lanes can no longer share one control flow (a
    /// scalar run would abort, or lanes disagree on a branch). The run
    /// stops and [`LockstepEngine::run`] returns `false`; the caller must
    /// re-run these trials through the scalar path.
    pub fn diverge(&mut self) {
        self.diverged = true;
    }
}

/// A reusable engine running `k` trials of one ring configuration in
/// lockstep over one fused event stream.
///
/// Create once per worker with [`LockstepEngine::new`] and call
/// [`LockstepEngine::run`] per trial group; all buffers (event queue,
/// payload arena, counters, outputs) retain their capacity across runs,
/// so steady-state groups allocate nothing.
#[derive(Debug)]
pub struct LockstepEngine {
    n: usize,
    lanes: usize,
    queue: VecDeque<Event>,
    /// Append-only payload arena of the current run: group `g` occupies
    /// `[g * lanes, (g + 1) * lanes)`. Slices are written once at send
    /// time and read once at delivery time (into `incoming`).
    payloads: Vec<u64>,
    /// The popped event's payload, copied out of the arena so the node
    /// activation can append new sends while reading it.
    incoming: Vec<u64>,
    /// Per-lane outputs, node-major: node `i`'s lanes at
    /// `[i * lanes, (i + 1) * lanes)`. Valid where `has_output[i]`.
    outputs: Vec<u64>,
    has_output: Vec<bool>,
    sent: Vec<u64>,
    received: Vec<u64>,
    steps: u64,
    delivered: u64,
    diverged: bool,
    /// High-water mark of the payload arena, driving the shrink-on-idle
    /// budget (retained capacity decays toward ×4 of the recent need,
    /// matching the scalar engine's policy).
    hwm_payloads: usize,
}

impl LockstepEngine {
    /// Creates a lockstep engine for a unidirectional ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least 2 nodes, got {n}");
        Self {
            n,
            lanes: 0,
            queue: VecDeque::new(),
            payloads: Vec::new(),
            incoming: Vec::new(),
            outputs: Vec::new(),
            has_output: vec![false; n],
            sent: vec![0; n],
            received: vec![0; n],
            steps: 0,
            delivered: 0,
            diverged: false,
            hwm_payloads: 0,
        }
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The batch width of the most recent [`LockstepEngine::run`].
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `lanes` lockstep trials: wakes `wakes` in order, then drives
    /// the fused FIFO stream to quiescence (or to `step_limit`).
    ///
    /// Returns `true` if the run completed in lockstep; `false` if any
    /// activation diverged (or the step limit was hit), in which case the
    /// engine's results are meaningless and the caller must re-run the
    /// trials through the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != n`, `lanes == 0`, or a wake id is out of
    /// range.
    pub fn run<N: LockstepNode>(
        &mut self,
        lanes: usize,
        nodes: &mut [N],
        wakes: &[usize],
        step_limit: u64,
    ) -> bool {
        assert_eq!(nodes.len(), self.n, "need one node per ring position");
        assert!(lanes > 0, "lockstep run needs at least one lane");
        self.reset(lanes);
        for &w in wakes {
            assert!(w < self.n, "wake id {w} out of range");
            self.queue.push_back(Event {
                tag: WAKE_TAG,
                to: w as u32,
                off: 0,
            });
        }
        let mut ok = true;
        while let Some(event) = self.queue.pop_front() {
            // Mirror the scalar fused loop exactly: the limit check runs
            // before the step is counted; hitting it means the lockstep
            // result cannot represent the scalar `StepLimit` outcome, so
            // it is treated as a divergence.
            if self.steps >= step_limit {
                ok = false;
                break;
            }
            self.steps += 1;
            if event.tag == WAKE_TAG {
                let me = event.to as usize;
                if !self.has_output[me] {
                    self.activate(nodes, me, None);
                }
            } else {
                let to = event.to as usize;
                self.received[to] += 1;
                self.delivered += 1;
                if !self.has_output[to] {
                    let start = event.off as usize * self.lanes;
                    self.incoming.clear();
                    self.incoming
                        .extend_from_slice(&self.payloads[start..start + self.lanes]);
                    self.activate(nodes, to, Some(event.tag));
                }
            }
            if self.diverged {
                ok = false;
                break;
            }
        }
        self.decay_capacity();
        ok
    }

    /// Dispatches one activation to `nodes[me]` with field-split borrows,
    /// then folds the activation's effects back into the engine.
    fn activate<N: LockstepNode>(&mut self, nodes: &mut [N], me: usize, tag: Option<u8>) {
        let lanes = self.lanes;
        let succ = if me + 1 == self.n { 0 } else { me + 1 } as u32;
        let out_start = me * lanes;
        let mut ctx = LaneCtx {
            lanes,
            succ,
            queue: &mut self.queue,
            payloads: &mut self.payloads,
            outputs: &mut self.outputs[out_start..out_start + lanes],
            sent: 0,
            terminated: false,
            diverged: false,
        };
        match tag {
            None => nodes[me].on_wake(&mut ctx),
            Some(t) => nodes[me].on_message(t, &self.incoming, &mut ctx),
        }
        let LaneCtx {
            sent,
            terminated,
            diverged,
            ..
        } = ctx;
        self.sent[me] += sent;
        if terminated {
            self.has_output[me] = true;
        }
        if diverged {
            self.diverged = true;
        }
    }

    /// Extracts trial `lane`'s [`Execution`] from the last completed run,
    /// bit-identical to the scalar engine's output for the same trial.
    ///
    /// Only meaningful after [`LockstepEngine::run`] returned `true`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn execution_into(&self, lane: usize, out: &mut Execution) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        out.outputs.clear();
        for i in 0..self.n {
            out.outputs.push(if self.has_output[i] {
                Some(Some(self.outputs[i * self.lanes + lane]))
            } else {
                None
            });
        }
        out.stats.steps = self.steps;
        out.stats.delivered = self.delivered;
        out.stats.sent.clear();
        out.stats.sent.extend_from_slice(&self.sent);
        out.stats.received.clear();
        out.stats.received.extend_from_slice(&self.received);
        // Lockstep runs never hit the step limit (that diverges), so the
        // stream always drained: `all_delivered` is unconditionally true,
        // exactly as in the scalar fused path on a completed run.
        out.outcome = outcome_of(&out.outputs, true);
    }

    /// Resets per-run state for a `lanes`-wide group, retaining capacity.
    fn reset(&mut self, lanes: usize) {
        self.lanes = lanes;
        self.queue.clear();
        self.payloads.clear();
        self.incoming.clear();
        self.outputs.clear();
        self.outputs.resize(self.n * lanes, 0);
        self.has_output.clear();
        self.has_output.resize(self.n, false);
        self.sent.clear();
        self.sent.resize(self.n, 0);
        self.received.clear();
        self.received.resize(self.n, 0);
        self.steps = 0;
        self.delivered = 0;
        self.diverged = false;
    }

    /// Decays retained payload capacity toward a ×4 budget of the recent
    /// high-water need (the policy the scalar engine and timed scheduler
    /// adopted in the memory-budget work), so an oversized one-off group
    /// does not pin its peak allocation forever.
    fn decay_capacity(&mut self) {
        let used = self.payloads.len().max(64);
        self.hwm_payloads = self.hwm_payloads.max(used);
        if self.payloads.capacity() > 4 * self.hwm_payloads {
            self.payloads.shrink_to(2 * self.hwm_payloads);
        }
        // Let the high-water itself decay so the budget tracks recent
        // groups, not the all-time peak.
        self.hwm_payloads = used.max(self.hwm_payloads / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outcome;

    /// A k-lane ping-pong: the origin sends per-lane counters around a
    /// 2-ring until they reach a bound, then both nodes elect the bound.
    struct Pong {
        bound: u64,
        last: Vec<u64>,
    }

    impl LockstepNode for Pong {
        fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
            let out = ctx.send(0);
            out.copy_from_slice(&self.last);
        }

        fn on_message(&mut self, _tag: u8, lanes: &[u64], ctx: &mut LaneCtx<'_>) {
            self.last.copy_from_slice(lanes);
            if lanes.iter().all(|&v| v >= 3) {
                ctx.terminate().copy_from_slice(lanes);
                ctx.send(0).copy_from_slice(lanes);
            } else if lanes.iter().all(|&v| v < 3) {
                let out = ctx.send(0);
                for (o, &v) in out.iter_mut().zip(lanes) {
                    *o = v + self.bound;
                }
            } else {
                ctx.diverge();
            }
        }
    }

    #[test]
    fn lockstep_ping_pong_elects_per_lane() {
        let mut engine = LockstepEngine::new(2);
        let mut nodes = vec![
            Pong {
                bound: 1,
                last: vec![0, 1],
            },
            Pong {
                bound: 1,
                last: vec![0, 0],
            },
        ];
        // Lanes start at 0 and 1 and both count up by 1 per hop; they hit
        // ≥3 on the same hop only if they started equal — lanes 0/1 force
        // a divergence, which must be reported, not mis-executed.
        let ok = engine.run(2, &mut nodes, &[0], 1000);
        assert!(!ok, "unequal lanes must diverge");

        let mut nodes = vec![
            Pong {
                bound: 1,
                last: vec![0, 0],
            },
            Pong {
                bound: 1,
                last: vec![0, 0],
            },
        ];
        let ok = engine.run(2, &mut nodes, &[0], 1000);
        assert!(ok);
        let mut exec = Execution::default();
        for lane in 0..2 {
            engine.execution_into(lane, &mut exec);
            assert_eq!(exec.outcome, Outcome::Elected(3), "lane {lane}");
            assert_eq!(exec.stats.delivered, 6);
            assert_eq!(exec.stats.steps, 7);
        }
    }

    #[test]
    fn step_limit_diverges() {
        struct Loopy;
        impl LockstepNode for Loopy {
            fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
                ctx.send(0);
            }
            fn on_message(&mut self, _t: u8, lanes: &[u64], ctx: &mut LaneCtx<'_>) {
                ctx.send(0).copy_from_slice(lanes);
            }
        }
        let mut engine = LockstepEngine::new(2);
        let mut nodes = vec![Loopy, Loopy];
        assert!(!engine.run(1, &mut nodes, &[0], 100));
    }

    #[test]
    fn terminated_nodes_drop_but_count_deliveries() {
        // Node 1 terminates on its first delivery; node 0 sends twice at
        // wake. The second delivery must be counted and dropped.
        struct Once;
        impl LockstepNode for Once {
            fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
                ctx.send(0);
                ctx.send(0);
            }
            fn on_message(&mut self, _t: u8, _l: &[u64], ctx: &mut LaneCtx<'_>) {
                ctx.terminate();
            }
        }
        struct Sink;
        impl LockstepNode for Sink {
            fn on_wake(&mut self, _ctx: &mut LaneCtx<'_>) {}
            fn on_message(&mut self, _t: u8, _l: &[u64], ctx: &mut LaneCtx<'_>) {
                ctx.terminate();
            }
        }
        enum Mix {
            Once(Once),
            Sink(Sink),
        }
        impl LockstepNode for Mix {
            fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
                match self {
                    Mix::Once(x) => x.on_wake(ctx),
                    Mix::Sink(x) => x.on_wake(ctx),
                }
            }
            fn on_message(&mut self, t: u8, l: &[u64], ctx: &mut LaneCtx<'_>) {
                match self {
                    Mix::Once(x) => x.on_message(t, l, ctx),
                    Mix::Sink(x) => x.on_message(t, l, ctx),
                }
            }
        }
        let mut engine = LockstepEngine::new(2);
        let mut nodes = vec![Mix::Once(Once), Mix::Sink(Sink)];
        assert!(engine.run(3, &mut nodes, &[0], 100));
        let mut exec = Execution::default();
        engine.execution_into(0, &mut exec);
        // Node 1 terminated on the first delivery but both deliveries are
        // counted (wake + 2 deliveries = 3 steps)... node 0 never
        // terminates, so the run deadlocks — exactly what the scalar
        // engine reports for this behaviour.
        assert_eq!(exec.stats.delivered, 2);
        assert_eq!(exec.stats.received[1], 2);
        assert_eq!(exec.stats.steps, 3);
        assert!(exec.outcome.is_fail());
    }

    #[test]
    fn payload_capacity_decays_after_oversized_group() {
        let mut engine = LockstepEngine::new(2);
        struct Burst {
            rounds: u64,
        }
        impl LockstepNode for Burst {
            fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
                ctx.send(0);
            }
            fn on_message(&mut self, _t: u8, _l: &[u64], ctx: &mut LaneCtx<'_>) {
                if self.rounds == 0 {
                    ctx.terminate();
                } else {
                    self.rounds -= 1;
                    ctx.send(0);
                }
            }
        }
        let big = 512;
        let mut nodes = vec![Burst { rounds: big }, Burst { rounds: big }];
        assert!(engine.run(64, &mut nodes, &[0], u64::MAX));
        let peak = engine.payloads.capacity();
        for _ in 0..8 {
            let mut nodes = vec![Burst { rounds: 2 }, Burst { rounds: 2 }];
            assert!(engine.run(2, &mut nodes, &[0], u64::MAX));
        }
        assert!(
            engine.payloads.capacity() < peak,
            "payload capacity must decay: peak {peak}, now {}",
            engine.payloads.capacity()
        );
    }
}
