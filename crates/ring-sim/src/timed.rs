//! Timed network simulation: per-link latency, bandwidth, loss and
//! duplication over a virtual clock.
//!
//! The oblivious [`Scheduler`](crate::Scheduler)s in this crate order
//! deliveries without any notion of *time* — they can express every
//! asynchronous interleaving, but not questions like "does fairness
//! degrade when the adversary sits behind a slow link?". This module adds
//! that missing axis: a [`TimedScheduler`] keeps a virtual clock in
//! nanoseconds and a min-heap of pending events ordered by
//! `(arrival_time, sequence)`, with the sequence number as a deterministic
//! tie-break — two events stamped with the same nanosecond fire in send
//! order, so a run is a pure function of its inputs.
//!
//! Each link carries a [`LinkProfile`]: a [`LatencySpec`] (constant /
//! uniform / two-point, drawn from the trial's dedicated `SplitMix64`
//! stream), an optional FIFO bandwidth gap (consecutive departures on one
//! link are serialized `gap_ns` apart), and loss / duplication
//! probabilities in permille. A [`TimedNetConfig`] assigns profiles to
//! links — one default plus per-edge overrides, which is how asymmetric
//! scenarios (one slow link on an otherwise fast ring) are built.
//!
//! **Equivalence anchor.** With the all-zero profile (constant 0 ns
//! latency, no gap, no loss, no dup) every event is stamped with time 0,
//! so heap order degenerates to sequence order — which is exactly the
//! engine's fused global-FIFO order. The timed path is therefore
//! bit-identical to the untimed FIFO path in that configuration; the
//! differential suite in `tests/timed_paths.rs` pins this for every
//! protocol. Note that non-constant latencies may *reorder* messages on a
//! link (real networks do); the paper's protocols are defined over FIFO
//! links, so reordering runs probe robustness beyond the model rather
//! than the model itself.

use crate::rng::SplitMix64;
use crate::topology::{EdgeId, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Domain-separation salt for the per-trial network randomness stream
/// (latency draws, loss and duplication coin flips). Distinct from the
/// per-node protocol streams (salted by node id `0..n`) and from the
/// harness's trial salt, so network noise never correlates with honest
/// secrets. The value spells "TIMEDNET" in ASCII.
pub const NET_STREAM_SALT: u64 = 0x5449_4D45_444E_4554;

/// A per-link latency distribution, in virtual nanoseconds.
///
/// Draws come from the trial's network stream ([`NET_STREAM_SALT`]);
/// [`LatencySpec::Constant`] consumes no randomness at all, which is what
/// keeps the zero-latency configuration bit-identical to the untimed
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencySpec {
    /// Every message takes exactly `ns` nanoseconds.
    Constant {
        /// The fixed delay.
        ns: u64,
    },
    /// Uniform over the half-open range `[lo, hi)`; requires `hi > lo`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
    },
    /// `hi` with probability `hi_permille`/1000, else `lo` — a bimodal
    /// "mostly fast, occasionally stalled" link.
    TwoPoint {
        /// The common (fast) delay.
        lo: u64,
        /// The rare (slow) delay.
        hi: u64,
        /// Probability of drawing `hi`, in permille (`0..=1000`).
        hi_permille: u32,
    },
}

impl LatencySpec {
    /// A zero-delay constant — the equivalence-anchor latency.
    pub const ZERO: LatencySpec = LatencySpec::Constant { ns: 0 };

    /// Draws one delay from this distribution.
    pub fn draw(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            LatencySpec::Constant { ns } => ns,
            LatencySpec::Uniform { lo, hi } => {
                debug_assert!(hi > lo, "uniform latency needs hi > lo");
                lo + rng.next_below(hi - lo)
            }
            LatencySpec::TwoPoint {
                lo,
                hi,
                hi_permille,
            } => {
                if rng.next_below(1000) < hi_permille as u64 {
                    hi
                } else {
                    lo
                }
            }
        }
    }
}

/// The timing and fault behaviour of one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Propagation delay distribution.
    pub latency: LatencySpec,
    /// Probability a sent message is silently dropped, in permille.
    pub loss_permille: u32,
    /// Probability a sent message is delivered twice (the duplicate draws
    /// its own independent latency), in permille.
    pub dup_permille: u32,
    /// FIFO bandwidth queueing: consecutive departures on this link are
    /// serialized at least `gap_ns` apart (0 disables the queue entirely).
    pub gap_ns: u64,
}

impl Default for LinkProfile {
    /// The all-zero profile: instant, lossless, duplicate-free, unqueued.
    /// Under this profile a timed run is bit-identical to the untimed
    /// fused-FIFO engine path.
    fn default() -> Self {
        LinkProfile {
            latency: LatencySpec::ZERO,
            loss_permille: 0,
            dup_permille: 0,
            gap_ns: 0,
        }
    }
}

/// Assigns a [`LinkProfile`] to every link of a topology: one default
/// profile plus per-edge overrides (first matching override wins).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimedNetConfig {
    /// The profile of every link without an override.
    pub default: LinkProfile,
    /// Per-edge exceptions, e.g. the one slow link of an asymmetric ring.
    pub overrides: Vec<(EdgeId, LinkProfile)>,
}

impl TimedNetConfig {
    /// A network where every link shares `profile`.
    pub fn uniform(profile: LinkProfile) -> Self {
        TimedNetConfig {
            default: profile,
            overrides: Vec::new(),
        }
    }

    /// The profile of edge `e`.
    pub fn profile(&self, e: EdgeId) -> LinkProfile {
        self.overrides
            .iter()
            .find(|&&(edge, _)| edge == e)
            .map(|&(_, p)| p)
            .unwrap_or(self.default)
    }
}

/// One pending simulation event: a spontaneous wake-up or a message
/// arriving on a link.
pub(crate) enum TimedEvent<M> {
    /// Wake node `NodeId` spontaneously.
    Wake(NodeId),
    /// Deliver `M` along link `EdgeId`.
    Deliver(EdgeId, M),
}

/// A heap key packs `(time, seq)` into one `u128` — `time` in the high 64
/// bits, `seq` in the low — so lexicographic `(time, seq)` order is plain
/// integer order and every sift moves 16 bytes instead of a full event.
/// `seq` is unique per trial, giving a total, deterministic order
/// regardless of heap internals; [`Reverse`] turns `std`'s max-heap into
/// the min-heap we need.
#[inline]
fn pack_key(time: u64, seq: u64) -> u128 {
    ((time as u128) << 64) | seq as u128
}

/// The virtual-clock event queue driving
/// [`Engine::run_timed`](crate::Engine::run_timed): a binary min-heap of
/// pending events keyed
/// by `(arrival_ns, seq)` plus the per-trial network randomness stream and
/// per-link bandwidth cursors.
///
/// Like the engine itself, a `TimedScheduler` is a reusable per-worker
/// resource: `begin_trial` re-seeds it in place, retaining (bounded)
/// allocation across a batch.
pub struct TimedScheduler<M> {
    heap: BinaryHeap<Reverse<u128>>,
    /// Event payloads indexed by sequence number; popped slots are taken,
    /// so a slot is `Some` exactly while its key sits in the heap.
    events: Vec<Option<TimedEvent<M>>>,
    /// Events pushed this trial; doubles as the unique tie-break sequence.
    seq: u64,
    /// The virtual clock: the timestamp of the last popped event.
    now: u64,
    rng: SplitMix64,
    /// Per-edge profiles, materialized once per trial so the send path
    /// never scans the override list.
    profiles: Vec<LinkProfile>,
    /// Per-edge earliest next departure (bandwidth queueing cursor).
    next_free: Vec<u64>,
    /// Decaying high-water mark of `seq`, bounding retained heap capacity
    /// (same ×4 budget policy as the engine's shrink-on-idle reset).
    hwm_events: u64,
}

impl<M> Default for TimedScheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> TimedScheduler<M> {
    /// Creates an empty scheduler; call sites re-seed it per trial through
    /// the engine's `run_timed*` entries.
    pub fn new() -> Self {
        TimedScheduler {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
            now: 0,
            rng: SplitMix64::new(0),
            profiles: Vec::new(),
            next_free: Vec::new(),
            hwm_events: 0,
        }
    }

    /// The virtual clock, in nanoseconds: the arrival time of the last
    /// delivered event. After a run this is the virtual makespan.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Resets for a new trial over `edges` links: clears the heap (bounded
    /// by the decayed high-water budget), re-seeds the network stream from
    /// `seed` via [`NET_STREAM_SALT`], and materializes per-edge profiles.
    pub(crate) fn begin_trial(&mut self, net: &TimedNetConfig, edges: usize, seed: u64) {
        self.hwm_events = self.seq.max(self.hwm_events / 2);
        let budget = (4 * self.hwm_events).max(64) as usize;
        self.heap.clear();
        if self.heap.capacity() > budget {
            self.heap.shrink_to(budget);
        }
        self.events.clear();
        if self.events.capacity() > budget {
            self.events.shrink_to(budget);
        }
        self.seq = 0;
        self.now = 0;
        self.rng = SplitMix64::new(seed).derive(NET_STREAM_SALT);
        self.profiles.clear();
        self.profiles.extend((0..edges).map(|e| net.profile(e)));
        self.next_free.clear();
        self.next_free.resize(edges, 0);
    }

    /// Schedules a spontaneous wake-up at the current virtual time.
    pub(crate) fn push_wake(&mut self, node: NodeId) {
        let time = self.now;
        self.push_at(time, TimedEvent::Wake(node));
    }

    /// Pops the earliest pending event and advances the clock to it.
    pub(crate) fn pop(&mut self) -> Option<TimedEvent<M>> {
        let Reverse(key) = self.heap.pop()?;
        self.now = (key >> 64) as u64;
        self.events[key as u64 as usize].take()
    }

    fn push_at(&mut self, time: u64, event: TimedEvent<M>) {
        let seq = self.seq;
        self.seq += 1;
        debug_assert_eq!(seq as usize, self.events.len());
        self.events.push(Some(event));
        self.heap.push(Reverse(pack_key(time, seq)));
    }
}

impl<M: Clone> TimedScheduler<M> {
    /// Sends `msg` on `edge` at the current virtual time, applying the
    /// link's profile: a loss coin first (a lost message consumes nothing
    /// further), then the bandwidth queue (departure is serialized behind
    /// the link's previous departure when `gap_ns > 0`), then a latency
    /// draw, then a duplication coin whose duplicate draws an independent
    /// latency from the same departure. Draw order is fixed so a trial is
    /// an exact function of `(seed, schedule)` — lossy and duplicating
    /// runs replay bit-identically.
    pub(crate) fn send(&mut self, edge: EdgeId, msg: M) {
        let p = self.profiles[edge];
        if p.loss_permille > 0 && self.rng.next_below(1000) < p.loss_permille as u64 {
            return;
        }
        let mut dep = self.now;
        if p.gap_ns > 0 {
            dep = dep.max(self.next_free[edge]).saturating_add(p.gap_ns);
            self.next_free[edge] = dep;
        }
        let arrive = dep.saturating_add(p.latency.draw(&mut self.rng));
        let dup_arrive = if p.dup_permille > 0 && self.rng.next_below(1000) < p.dup_permille as u64
        {
            Some(dep.saturating_add(p.latency.draw(&mut self.rng)))
        } else {
            None
        };
        match dup_arrive {
            Some(dup) => {
                // The original keeps the lower sequence number, so an
                // exact-tie duplicate delivers second.
                self.push_at(arrive, TimedEvent::Deliver(edge, msg.clone()));
                self.push_at(dup, TimedEvent::Deliver(edge, msg));
            }
            None => self.push_at(arrive, TimedEvent::Deliver(edge, msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_times(sched: &mut TimedScheduler<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(ev) = sched.pop() {
            if let TimedEvent::Deliver(_, m) = ev {
                out.push((sched.now(), m));
            }
        }
        out
    }

    #[test]
    fn zero_profile_pops_in_send_order() {
        let mut s: TimedScheduler<u64> = TimedScheduler::new();
        s.begin_trial(&TimedNetConfig::default(), 2, 7);
        s.send(0, 10);
        s.send(1, 11);
        s.send(0, 12);
        assert_eq!(drain_times(&mut s), vec![(0, 10), (0, 11), (0, 12)]);
    }

    #[test]
    fn constant_latency_orders_by_time_then_seq() {
        let mut s: TimedScheduler<u64> = TimedScheduler::new();
        let net = TimedNetConfig {
            default: LinkProfile {
                latency: LatencySpec::Constant { ns: 5 },
                ..LinkProfile::default()
            },
            overrides: vec![(
                1,
                LinkProfile {
                    latency: LatencySpec::Constant { ns: 1 },
                    ..LinkProfile::default()
                },
            )],
        };
        s.begin_trial(&net, 2, 7);
        s.send(0, 10); // arrives at 5
        s.send(1, 11); // arrives at 1
        s.send(0, 12); // arrives at 5, after 10 by seq
        assert_eq!(drain_times(&mut s), vec![(1, 11), (5, 10), (5, 12)]);
    }

    #[test]
    fn bandwidth_gap_serializes_departures() {
        let mut s: TimedScheduler<u64> = TimedScheduler::new();
        let net = TimedNetConfig::uniform(LinkProfile {
            gap_ns: 10,
            ..LinkProfile::default()
        });
        s.begin_trial(&net, 1, 7);
        s.send(0, 1); // departs 10
        s.send(0, 2); // departs 20
        s.send(0, 3); // departs 30
        assert_eq!(drain_times(&mut s), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn loss_and_dup_replay_identically_from_one_seed() {
        let net = TimedNetConfig::uniform(LinkProfile {
            latency: LatencySpec::Uniform { lo: 1, hi: 100 },
            loss_permille: 300,
            dup_permille: 300,
            gap_ns: 0,
        });
        let run = |seed: u64| {
            let mut s: TimedScheduler<u64> = TimedScheduler::new();
            s.begin_trial(&net, 3, seed);
            for m in 0..50 {
                s.send((m % 3) as EdgeId, m);
            }
            drain_times(&mut s)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "distinct seeds must vary the noise");
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut s: TimedScheduler<u64> = TimedScheduler::new();
        let net = TimedNetConfig::uniform(LinkProfile {
            loss_permille: 1000,
            ..LinkProfile::default()
        });
        s.begin_trial(&net, 1, 3);
        s.send(0, 1);
        s.send(0, 2);
        assert!(drain_times(&mut s).is_empty());
    }

    #[test]
    fn full_dup_delivers_twice() {
        let mut s: TimedScheduler<u64> = TimedScheduler::new();
        let net = TimedNetConfig::uniform(LinkProfile {
            dup_permille: 1000,
            ..LinkProfile::default()
        });
        s.begin_trial(&net, 1, 3);
        s.send(0, 1);
        let seen: Vec<u64> = drain_times(&mut s).into_iter().map(|(_, m)| m).collect();
        assert_eq!(seen, vec![1, 1]);
    }

    #[test]
    fn heap_capacity_is_bounded_after_an_oversized_trial() {
        let mut s: TimedScheduler<u64> = TimedScheduler::new();
        let net = TimedNetConfig::default();
        s.begin_trial(&net, 1, 0);
        for m in 0..100_000 {
            s.send(0, m);
        }
        // Decay: many small trials shrink the retained heap back down.
        for trial in 0..64 {
            s.begin_trial(&net, 1, trial);
            for m in 0..8 {
                s.send(0, m);
            }
            while s.pop().is_some() {}
        }
        s.begin_trial(&net, 1, 0);
        assert!(
            s.heap.capacity() <= 1024,
            "retained {} keys",
            s.heap.capacity()
        );
        assert!(
            s.events.capacity() <= 1024,
            "retained {} event slots",
            s.events.capacity()
        );
    }
}
