//! Oblivious message schedulers.
//!
//! A scheduler owns a multiset of [`Token`]s, each representing one pending
//! wake-up or one undelivered message on some link. The engine pushes a
//! token whenever a message is sent (or a wake-up is queued) and pops one
//! token per step. Because a token only names a *link*, never message
//! contents, every scheduler here is oblivious in the paper's sense
//! (Section 2: "delivered asynchronously along the links by some oblivious
//! message schedule which does not depend on the messages' values").
//! Per-link FIFO order is enforced by the engine itself — popping a token
//! for link `e` always delivers the *front* message of `e`'s queue — so a
//! scheduler can reorder tokens arbitrarily without violating the model.

use crate::rng::SplitMix64;
use crate::topology::{EdgeId, NodeId};

/// One schedulable unit: a spontaneous wake-up or a pending delivery.
///
/// This is the *decode view* of a token — the form pattern matching and
/// the public [`Scheduler::push`]/[`Scheduler::pop`] surface speak. The
/// provided schedulers store tokens as [`PackedToken`]s (8 bytes, tag bit
/// plus payload) and the engine hot loop moves packed tokens end to end;
/// the two forms convert losslessly in a couple of ALU ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// Wake node `NodeId` spontaneously.
    Wake(NodeId),
    /// Deliver the front message of link `EdgeId`.
    Deliver(EdgeId),
}

/// A [`Token`] packed into one `u64`: bit 63 tags the kind (0 = wake,
/// 1 = deliver), the low 63 bits carry the node or edge id.
///
/// Token queues used to be `VecDeque<Token>` — 16 bytes per entry
/// (discriminant + padding + payload). Packing halves the traffic through
/// the scheduler's ring buffer and makes a token a single register value
/// on the engine's per-delivery path.
///
/// # Examples
///
/// ```
/// use ring_sim::{PackedToken, Token};
///
/// let t = PackedToken::deliver(7);
/// assert_eq!(t.decode(), Token::Deliver(7));
/// assert_eq!(PackedToken::from(Token::Wake(3)).decode(), Token::Wake(3));
/// ```
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedToken(u64);

impl PackedToken {
    /// The kind tag: set for deliveries, clear for wake-ups.
    const DELIVER_TAG: u64 = 1 << 63;

    /// Packs a wake-up of node `id`.
    #[inline(always)]
    pub fn wake(id: NodeId) -> Self {
        debug_assert!((id as u64) < Self::DELIVER_TAG);
        Self(id as u64)
    }

    /// Packs a delivery on link `edge`.
    #[inline(always)]
    pub fn deliver(edge: EdgeId) -> Self {
        debug_assert!((edge as u64) < Self::DELIVER_TAG);
        Self(edge as u64 | Self::DELIVER_TAG)
    }

    /// Unpacks into the [`Token`] enum view.
    #[inline(always)]
    pub fn decode(self) -> Token {
        if self.0 & Self::DELIVER_TAG != 0 {
            Token::Deliver((self.0 & !Self::DELIVER_TAG) as usize)
        } else {
            Token::Wake(self.0 as usize)
        }
    }
}

impl From<Token> for PackedToken {
    #[inline(always)]
    fn from(token: Token) -> Self {
        match token {
            Token::Wake(id) => Self::wake(id),
            Token::Deliver(edge) => Self::deliver(edge),
        }
    }
}

impl From<PackedToken> for Token {
    #[inline(always)]
    fn from(packed: PackedToken) -> Self {
        packed.decode()
    }
}

/// The scheduling policy interface.
///
/// Implementations must eventually pop every pushed token (the engine
/// relies on this for its deadlock/termination analysis); all provided
/// schedulers do.
///
/// The packed entry points ([`Scheduler::push_packed`] /
/// [`Scheduler::pop_packed`]) are what the engine loop calls; their
/// defaults round-trip through the [`Token`] enum so third-party
/// schedulers only need `push`/`pop`, while the provided schedulers
/// override them to move [`PackedToken`]s natively.
pub trait Scheduler {
    /// Adds a pending token.
    fn push(&mut self, token: Token);

    /// Removes and returns the next token, or `None` when none are pending.
    fn pop(&mut self) -> Option<Token>;

    /// [`Scheduler::push`] in packed form (the engine's entry point).
    #[inline]
    fn push_packed(&mut self, token: PackedToken) {
        self.push(token.decode());
    }

    /// [`Scheduler::pop`] in packed form (the engine's entry point).
    #[inline]
    fn pop_packed(&mut self) -> Option<PackedToken> {
        self.pop().map(PackedToken::from)
    }

    /// Number of pending tokens.
    fn len(&self) -> usize;

    /// `true` when no tokens are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` **only if** this scheduler pops tokens in exactly global
    /// push order (a pure global FIFO), with no other observable state.
    ///
    /// The engine uses this as a licence for its fused fast path: under a
    /// global-FIFO schedule the `k`-th popped `Deliver` token always
    /// delivers the `k`-th sent message, so the token queue and the
    /// per-link message queues collapse into **one** contiguous event
    /// stream — halving the queue traffic per delivery. Executions are
    /// bit-identical to the split path (pinned by differential tests
    /// against [`reference::FifoScheduler`], which keeps the default
    /// `false` and therefore drives the split path with the same
    /// schedule).
    ///
    /// The default is `false`; only [`FifoScheduler`] overrides it.
    /// Returning `true` from a scheduler that reorders tokens would
    /// silently change executions — leave it alone unless your scheduler
    /// is literally a FIFO.
    fn is_global_fifo(&self) -> bool {
        false
    }

    /// Discards all pending tokens, retaining backing storage where the
    /// implementation can. The engine clears the scheduler at the start of
    /// every run, so one scheduler can be reused across a whole batch of
    /// trials without reallocating its token storage.
    ///
    /// The default implementation pops until empty; implementations with
    /// clearable storage override it.
    fn clear(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Delivers in global send order (a breadth-first, maximally fair schedule).
///
/// This is the default scheduler. On a unidirectional ring every oblivious
/// schedule yields the same outcome, so the choice only matters for general
/// topologies and for performance.
///
/// Storage is a power-of-two ring buffer of [`PackedToken`]s indexed by
/// masking — no `VecDeque` wrap/branch machinery on the pop path, half the
/// bytes per token. Pop order is bit-identical to the former
/// `VecDeque<Token>` implementation (kept as
/// [`reference::FifoScheduler`], the differential-test oracle).
#[derive(Debug, Default, Clone)]
pub struct FifoScheduler {
    /// Power-of-two ring buffer (empty until the first push).
    buf: Vec<PackedToken>,
    /// Index of the front token; always `< buf.len()` once allocated.
    head: usize,
    len: usize,
}

impl FifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Doubles the ring buffer, re-linearizing the pending tokens to the
    /// front. Out of line: once a batch reaches its steady-state token
    /// high-water mark this never runs again.
    #[cold]
    fn grow(&mut self) {
        let old_cap = self.buf.len();
        let new_cap = (old_cap * 2).max(8);
        let mut buf = vec![PackedToken::wake(0); new_cap];
        for (i, slot) in buf.iter_mut().enumerate().take(self.len) {
            *slot = self.buf[(self.head + i) & (old_cap - 1)];
        }
        self.buf = buf;
        self.head = 0;
    }
}

impl Scheduler for FifoScheduler {
    #[inline]
    fn push(&mut self, token: Token) {
        self.push_packed(PackedToken::from(token));
    }

    #[inline]
    fn pop(&mut self) -> Option<Token> {
        self.pop_packed().map(PackedToken::decode)
    }

    #[inline(always)]
    fn push_packed(&mut self, token: PackedToken) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let mask = self.buf.len() - 1;
        let tail = (self.head + self.len) & mask;
        self.buf[tail] = token;
        self.len += 1;
    }

    #[inline(always)]
    fn pop_packed(&mut self) -> Option<PackedToken> {
        if self.len == 0 {
            return None;
        }
        let token = self.buf[self.head];
        self.head = (self.head + 1) & (self.buf.len() - 1);
        self.len -= 1;
        Some(token)
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// The licence for the engine's fused token+message fast path — see
    /// [`Scheduler::is_global_fifo`].
    fn is_global_fifo(&self) -> bool {
        true
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// Delivers the most recently sent message first (a depth-first schedule —
/// an adversarially "bursty" but still oblivious ordering).
///
/// A plain [`PackedToken`] stack; pop order is bit-identical to the former
/// `Vec<Token>` form ([`reference::LifoScheduler`]).
#[derive(Debug, Default, Clone)]
pub struct LifoScheduler {
    stack: Vec<PackedToken>,
}

impl LifoScheduler {
    /// Creates an empty LIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LifoScheduler {
    #[inline]
    fn push(&mut self, token: Token) {
        self.stack.push(PackedToken::from(token));
    }

    #[inline]
    fn pop(&mut self) -> Option<Token> {
        self.stack.pop().map(PackedToken::decode)
    }

    #[inline]
    fn push_packed(&mut self, token: PackedToken) {
        self.stack.push(token);
    }

    #[inline]
    fn pop_packed(&mut self) -> Option<PackedToken> {
        self.stack.pop()
    }

    #[inline]
    fn len(&self) -> usize {
        self.stack.len()
    }

    fn clear(&mut self) {
        self.stack.clear();
    }
}

/// Delivers a uniformly random pending token, deterministically derived
/// from a seed.
///
/// Useful for property-testing schedule independence: on the ring, the
/// outcome must not depend on the seed.
///
/// The random stream and the `next_u64() % len` index derivation are
/// unchanged from the `Vec<Token>` implementation
/// ([`reference::RandomScheduler`]), so pop order per seed is
/// bit-identical.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    tokens: Vec<PackedToken>,
    rng: SplitMix64,
}

impl RandomScheduler {
    /// Creates an empty random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            tokens: Vec::new(),
            rng: SplitMix64::new(seed),
        }
    }

    /// Discards pending tokens (keeping their storage) and restarts the
    /// random stream from `seed` — equivalent to `*self = Self::new(seed)`
    /// without the reallocation, so one scheduler serves a whole batch of
    /// differently-seeded trials.
    pub fn reseed(&mut self, seed: u64) {
        self.tokens.clear();
        self.rng = SplitMix64::new(seed);
    }
}

impl Scheduler for RandomScheduler {
    #[inline]
    fn push(&mut self, token: Token) {
        self.tokens.push(PackedToken::from(token));
    }

    #[inline]
    fn pop(&mut self) -> Option<Token> {
        self.pop_packed().map(PackedToken::decode)
    }

    #[inline]
    fn push_packed(&mut self, token: PackedToken) {
        self.tokens.push(token);
    }

    #[inline]
    fn pop_packed(&mut self) -> Option<PackedToken> {
        if self.tokens.is_empty() {
            return None;
        }
        let i = (self.rng.next_u64() % self.tokens.len() as u64) as usize;
        Some(self.tokens.swap_remove(i))
    }

    #[inline]
    fn len(&self) -> usize {
        self.tokens.len()
    }

    fn clear(&mut self) {
        self.tokens.clear();
    }
}

pub mod reference {
    //! The pre-packed-token scheduler implementations (`VecDeque<Token>` /
    //! `Vec<Token>` storage), kept verbatim as **differential-test
    //! oracles**: the packed rewrites in the parent module must reproduce
    //! their pop sequences bit for bit under arbitrary push/pop
    //! interleavings (see `packed_schedulers_match_reference_implementations` in
    //! `crates/ring-sim/tests/properties.rs`). Not used on any runtime
    //! path.

    use super::{Scheduler, Token};
    use crate::rng::SplitMix64;
    use std::collections::VecDeque;

    /// The PR 4-era FIFO scheduler: a `VecDeque<Token>`.
    #[derive(Debug, Default, Clone)]
    pub struct FifoScheduler {
        queue: VecDeque<Token>,
    }

    impl FifoScheduler {
        /// Creates an empty reference FIFO scheduler.
        pub fn new() -> Self {
            Self::default()
        }
    }

    impl Scheduler for FifoScheduler {
        fn push(&mut self, token: Token) {
            self.queue.push_back(token);
        }

        fn pop(&mut self) -> Option<Token> {
            self.queue.pop_front()
        }

        fn len(&self) -> usize {
            self.queue.len()
        }

        fn clear(&mut self) {
            self.queue.clear();
        }
    }

    /// The PR 4-era LIFO scheduler: a `Vec<Token>` stack.
    #[derive(Debug, Default, Clone)]
    pub struct LifoScheduler {
        stack: Vec<Token>,
    }

    impl LifoScheduler {
        /// Creates an empty reference LIFO scheduler.
        pub fn new() -> Self {
            Self::default()
        }
    }

    impl Scheduler for LifoScheduler {
        fn push(&mut self, token: Token) {
            self.stack.push(token);
        }

        fn pop(&mut self) -> Option<Token> {
            self.stack.pop()
        }

        fn len(&self) -> usize {
            self.stack.len()
        }

        fn clear(&mut self) {
            self.stack.clear();
        }
    }

    /// The PR 4-era seeded-random scheduler: `Vec<Token>` + swap-remove.
    #[derive(Debug, Clone)]
    pub struct RandomScheduler {
        tokens: Vec<Token>,
        rng: SplitMix64,
    }

    impl RandomScheduler {
        /// Creates an empty reference random scheduler with the given seed.
        pub fn new(seed: u64) -> Self {
            Self {
                tokens: Vec::new(),
                rng: SplitMix64::new(seed),
            }
        }
    }

    impl Scheduler for RandomScheduler {
        fn push(&mut self, token: Token) {
            self.tokens.push(token);
        }

        fn pop(&mut self) -> Option<Token> {
            if self.tokens.is_empty() {
                return None;
            }
            let i = (self.rng.next_u64() % self.tokens.len() as u64) as usize;
            Some(self.tokens.swap_remove(i))
        }

        fn len(&self) -> usize {
            self.tokens.len()
        }

        fn clear(&mut self) {
            self.tokens.clear();
        }
    }
}

/// A scheduler driven by an explicit choice script, for exhaustively
/// enumerating oblivious schedules (a small model checker for the
/// [`Scheduler`] contract).
///
/// Each [`Scheduler::pop`] chooses among the *distinct* pending tokens in
/// first-pushed order: entry `i` of the script picks the `script[i]`-th
/// distinct token at the `i`-th pop; past the end of the script the first
/// distinct token is taken, and every choice point's arity is recorded.
/// Two pending `Deliver(e)` tokens for the same link are interchangeable
/// (popping either delivers the front message of `e`'s FIFO queue), so
/// collapsing duplicates prunes the schedule tree without losing any
/// distinct execution.
///
/// Handles are shared: [`Clone`] yields a second view of the same state,
/// so a driver can keep one handle, give the other to
/// [`crate::SimBuilder::scheduler`], and read the recorded
/// [`trace`](EnumerativeScheduler::trace) after the run. The state is
/// intentionally `Rc`-backed (not thread-safe): enumeration is a
/// single-threaded, depth-first sweep.
///
/// Use [`for_each_schedule`] to drive a full enumeration.
#[derive(Debug, Clone, Default)]
pub struct EnumerativeScheduler {
    state: std::rc::Rc<std::cell::RefCell<EnumState>>,
}

#[derive(Debug, Default)]
struct EnumState {
    pending: Vec<Token>,
    script: Vec<usize>,
    cursor: usize,
    trace: Vec<ChoicePoint>,
}

/// One recorded decision of an [`EnumerativeScheduler`]: which distinct
/// token index was taken and how many distinct tokens were available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Index of the distinct pending token that was popped.
    pub choice: usize,
    /// Number of distinct pending tokens at this decision.
    pub arity: usize,
}

impl EnumerativeScheduler {
    /// An empty scheduler that always takes the first distinct token
    /// (equivalent to FIFO over distinct tokens).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler that replays `script` and records arities.
    pub fn with_script(script: Vec<usize>) -> Self {
        Self {
            state: std::rc::Rc::new(std::cell::RefCell::new(EnumState {
                script,
                ..EnumState::default()
            })),
        }
    }

    /// The decisions taken so far (one per pop of a non-empty scheduler).
    pub fn trace(&self) -> Vec<ChoicePoint> {
        self.state.borrow().trace.clone()
    }
}

impl Scheduler for EnumerativeScheduler {
    fn push(&mut self, token: Token) {
        self.state.borrow_mut().pending.push(token);
    }

    fn pop(&mut self) -> Option<Token> {
        let mut s = self.state.borrow_mut();
        if s.pending.is_empty() {
            return None;
        }
        // Distinct pending tokens in first-pushed order.
        let mut distinct: Vec<Token> = Vec::new();
        for &t in &s.pending {
            if !distinct.contains(&t) {
                distinct.push(t);
            }
        }
        let choice = s.script.get(s.cursor).copied().unwrap_or(0);
        assert!(
            choice < distinct.len(),
            "script choice {choice} out of range for {} distinct tokens",
            distinct.len()
        );
        s.cursor += 1;
        let arity = distinct.len();
        s.trace.push(ChoicePoint { choice, arity });
        let token = distinct[choice];
        let at = s
            .pending
            .iter()
            .position(|&t| t == token)
            .expect("token came from pending");
        s.pending.remove(at);
        Some(token)
    }

    fn len(&self) -> usize {
        self.state.borrow().pending.len()
    }

    /// Drops pending tokens only — the script, cursor and recorded trace
    /// survive, so clearing never perturbs an enumeration in progress.
    fn clear(&mut self) {
        self.state.borrow_mut().pending.clear();
    }
}

/// The result of a [`for_each_schedule`] enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSweep {
    /// Number of schedules enumerated.
    pub schedules: u64,
    /// `true` when the enumeration stopped at `max_schedules` before
    /// exhausting the tree (the visited schedules are then a prefix of
    /// the space, not a proof over all of it).
    pub truncated: bool,
}

/// Exhaustively enumerates every oblivious schedule of a simulation by
/// depth-first search over [`EnumerativeScheduler`] choice points.
///
/// `run` is called once per schedule with a fresh scheduler handle, must
/// install a clone of it in the simulation it builds (the handle shares
/// state), and aggregates whatever it wants across calls — results are
/// streamed, not collected, so enumerations of millions of schedules run
/// in constant memory. Enumeration stops early after `max_schedules`
/// runs; check [`ScheduleSweep::truncated`] before treating the sweep as
/// a proof.
///
/// # Examples
///
/// Three tokens on distinct links admit exactly `3! = 6` interleavings:
///
/// ```
/// use ring_sim::{for_each_schedule, Scheduler, Token};
///
/// let mut orders = std::collections::HashSet::new();
/// let sweep = for_each_schedule(100, |mut s| {
///     s.push(Token::Deliver(0));
///     s.push(Token::Deliver(1));
///     s.push(Token::Deliver(2));
///     let mut order = Vec::new();
///     while let Some(Token::Deliver(e)) = s.pop() {
///         order.push(e);
///     }
///     orders.insert(order);
/// });
/// assert!(!sweep.truncated);
/// assert_eq!(sweep.schedules, 6);
/// assert_eq!(orders.len(), 6);
/// ```
pub fn for_each_schedule(
    max_schedules: u64,
    mut run: impl FnMut(EnumerativeScheduler),
) -> ScheduleSweep {
    let mut script: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    loop {
        let sched = EnumerativeScheduler::with_script(script.clone());
        run(sched.clone());
        schedules += 1;
        let next = next_script(&sched.trace());
        if schedules >= max_schedules {
            // Truncated only if the tree actually continues past this run.
            return ScheduleSweep {
                schedules,
                truncated: next.is_some(),
            };
        }
        match next {
            Some(s) => script = s,
            None => {
                return ScheduleSweep {
                    schedules,
                    truncated: false,
                }
            }
        }
    }
}

/// Depth-first successor of a completed trace: bump the deepest choice
/// point with untried alternatives, drop everything after it.
fn next_script(trace: &[ChoicePoint]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        if trace[i].choice + 1 < trace[i].arity {
            let mut script: Vec<usize> = trace[..i].iter().map(|c| c.choice).collect();
            script.push(trace[i].choice + 1);
            return Some(script);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_globally() {
        let mut s = FifoScheduler::new();
        s.push(Token::Deliver(0));
        s.push(Token::Wake(3));
        s.push(Token::Deliver(1));
        assert_eq!(s.pop(), Some(Token::Deliver(0)));
        assert_eq!(s.pop(), Some(Token::Wake(3)));
        assert_eq!(s.pop(), Some(Token::Deliver(1)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn lifo_orders_in_reverse() {
        let mut s = LifoScheduler::new();
        s.push(Token::Deliver(0));
        s.push(Token::Deliver(1));
        assert_eq!(s.pop(), Some(Token::Deliver(1)));
        assert_eq!(s.pop(), Some(Token::Deliver(0)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            for i in 0..100 {
                s.push(Token::Deliver(i));
            }
            let mut order = Vec::new();
            while let Some(t) = s.pop() {
                order.push(t);
            }
            order
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn enumerative_default_is_fifo_over_distinct() {
        let mut s = EnumerativeScheduler::new();
        s.push(Token::Deliver(0));
        s.push(Token::Wake(1));
        s.push(Token::Deliver(0));
        assert_eq!(s.pop(), Some(Token::Deliver(0)));
        assert_eq!(s.pop(), Some(Token::Wake(1)));
        assert_eq!(s.pop(), Some(Token::Deliver(0)));
        assert_eq!(s.pop(), None);
        let trace = s.trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].arity, 2); // Deliver(0) duplicates collapse
    }

    #[test]
    fn enumerative_handles_share_state() {
        let a = EnumerativeScheduler::new();
        let mut b = a.clone();
        b.push(Token::Wake(0));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn for_each_schedule_counts_permutations() {
        // Two distinct links plus one duplicate token: the duplicate
        // collapses, so the orderings are those of the multiset
        // {0, 0, 1}: 001, 010, 100 — three schedules.
        let mut orders = Vec::new();
        let sweep = for_each_schedule(100, |mut s| {
            s.push(Token::Deliver(0));
            s.push(Token::Deliver(0));
            s.push(Token::Deliver(1));
            let mut order = Vec::new();
            while let Some(Token::Deliver(e)) = s.pop() {
                order.push(e);
            }
            orders.push(order);
        });
        assert!(!sweep.truncated);
        assert_eq!(sweep.schedules, 3);
        assert_eq!(orders, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
    }

    #[test]
    fn for_each_schedule_reports_truncation() {
        let sweep = for_each_schedule(2, |mut s| {
            for e in 0..4 {
                s.push(Token::Deliver(e));
            }
            while s.pop().is_some() {}
        });
        assert!(sweep.truncated);
        assert_eq!(sweep.schedules, 2);
    }

    #[test]
    fn for_each_schedule_exact_limit_is_not_truncated() {
        // The space has exactly 2 schedules; a limit of 2 must report a
        // complete (non-truncated) sweep.
        let sweep = for_each_schedule(2, |mut s| {
            s.push(Token::Deliver(0));
            s.push(Token::Deliver(1));
            while s.pop().is_some() {}
        });
        assert!(!sweep.truncated);
        assert_eq!(sweep.schedules, 2);
    }

    #[test]
    fn clear_empties_and_reseed_restarts_the_stream() {
        let mut fifo = FifoScheduler::new();
        fifo.push(Token::Wake(0));
        fifo.push(Token::Deliver(1));
        fifo.clear();
        assert!(fifo.is_empty());
        assert_eq!(fifo.pop(), None);

        let mut lifo = LifoScheduler::new();
        lifo.push(Token::Wake(0));
        lifo.clear();
        assert!(lifo.is_empty());

        // After reseed, a RandomScheduler behaves exactly like a fresh one
        // with that seed, token storage notwithstanding.
        let drain = |s: &mut RandomScheduler| {
            for i in 0..20 {
                s.push(Token::Deliver(i));
            }
            let mut order = Vec::new();
            while let Some(t) = s.pop() {
                order.push(t);
            }
            order
        };
        let mut reused = RandomScheduler::new(1);
        let first = drain(&mut reused);
        reused.push(Token::Wake(9)); // stale token a reseed must discard
        reused.reseed(5);
        let reused_order = drain(&mut reused);
        assert_eq!(reused_order, drain(&mut RandomScheduler::new(5)));
        assert_ne!(reused_order, first);
    }

    #[test]
    fn enumerative_clear_preserves_trace() {
        let mut s = EnumerativeScheduler::new();
        s.push(Token::Deliver(0));
        assert!(s.pop().is_some());
        s.push(Token::Deliver(1));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.trace().len(), 1, "clear must not record choices");
    }

    #[test]
    fn packed_token_roundtrips() {
        for t in [
            Token::Wake(0),
            Token::Wake(usize::MAX >> 1),
            Token::Deliver(0),
            Token::Deliver(12345),
        ] {
            assert_eq!(PackedToken::from(t).decode(), t);
            assert_eq!(Token::from(PackedToken::from(t)), t);
        }
        assert_eq!(std::mem::size_of::<PackedToken>(), 8);
    }

    #[test]
    fn fifo_ring_buffer_wraps_and_grows_in_order() {
        // Interleave pushes and pops so the head walks around the buffer,
        // then push far past the initial capacity: global FIFO order must
        // survive both the wrap and the re-linearizing grow.
        let mut s = FifoScheduler::new();
        let mut expect = std::collections::VecDeque::new();
        let mut next = 0usize;
        for round in 0..200 {
            for _ in 0..(round % 7) + 1 {
                s.push(Token::Deliver(next));
                expect.push_back(next);
                next += 1;
            }
            for _ in 0..(round % 5) {
                assert_eq!(s.pop(), expect.pop_front().map(Token::Deliver));
            }
            assert_eq!(s.len(), expect.len());
        }
        while let Some(t) = s.pop() {
            assert_eq!(Some(t), expect.pop_front().map(Token::Deliver));
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn random_pops_everything() {
        let mut s = RandomScheduler::new(42);
        for i in 0..57 {
            s.push(Token::Deliver(i));
        }
        let mut seen = [false; 57];
        while let Some(Token::Deliver(e)) = s.pop() {
            assert!(!seen[e]);
            seen[e] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(s.is_empty());
    }
}
