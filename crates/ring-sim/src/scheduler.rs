//! Oblivious message schedulers.
//!
//! A scheduler owns a multiset of [`Token`]s, each representing one pending
//! wake-up or one undelivered message on some link. The engine pushes a
//! token whenever a message is sent (or a wake-up is queued) and pops one
//! token per step. Because a token only names a *link*, never message
//! contents, every scheduler here is oblivious in the paper's sense
//! (Section 2: "delivered asynchronously along the links by some oblivious
//! message schedule which does not depend on the messages' values").
//! Per-link FIFO order is enforced by the engine itself — popping a token
//! for link `e` always delivers the *front* message of `e`'s queue — so a
//! scheduler can reorder tokens arbitrarily without violating the model.

use crate::rng::SplitMix64;
use crate::topology::{EdgeId, NodeId};
use std::collections::VecDeque;

/// One schedulable unit: a spontaneous wake-up or a pending delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// Wake node `NodeId` spontaneously.
    Wake(NodeId),
    /// Deliver the front message of link `EdgeId`.
    Deliver(EdgeId),
}

/// The scheduling policy interface.
///
/// Implementations must eventually pop every pushed token (the engine
/// relies on this for its deadlock/termination analysis); all provided
/// schedulers do.
pub trait Scheduler {
    /// Adds a pending token.
    fn push(&mut self, token: Token);

    /// Removes and returns the next token, or `None` when none are pending.
    fn pop(&mut self) -> Option<Token>;

    /// Number of pending tokens.
    fn len(&self) -> usize;

    /// `true` when no tokens are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Delivers in global send order (a breadth-first, maximally fair schedule).
///
/// This is the default scheduler. On a unidirectional ring every oblivious
/// schedule yields the same outcome, so the choice only matters for general
/// topologies and for performance.
#[derive(Debug, Default, Clone)]
pub struct FifoScheduler {
    queue: VecDeque<Token>,
}

impl FifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn push(&mut self, token: Token) {
        self.queue.push_back(token);
    }

    fn pop(&mut self) -> Option<Token> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Delivers the most recently sent message first (a depth-first schedule —
/// an adversarially "bursty" but still oblivious ordering).
#[derive(Debug, Default, Clone)]
pub struct LifoScheduler {
    stack: Vec<Token>,
}

impl LifoScheduler {
    /// Creates an empty LIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LifoScheduler {
    fn push(&mut self, token: Token) {
        self.stack.push(token);
    }

    fn pop(&mut self) -> Option<Token> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Delivers a uniformly random pending token, deterministically derived
/// from a seed.
///
/// Useful for property-testing schedule independence: on the ring, the
/// outcome must not depend on the seed.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    tokens: Vec<Token>,
    rng: SplitMix64,
}

impl RandomScheduler {
    /// Creates an empty random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            tokens: Vec::new(),
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn push(&mut self, token: Token) {
        self.tokens.push(token);
    }

    fn pop(&mut self) -> Option<Token> {
        if self.tokens.is_empty() {
            return None;
        }
        let i = (self.rng.next_u64() % self.tokens.len() as u64) as usize;
        Some(self.tokens.swap_remove(i))
    }

    fn len(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_globally() {
        let mut s = FifoScheduler::new();
        s.push(Token::Deliver(0));
        s.push(Token::Wake(3));
        s.push(Token::Deliver(1));
        assert_eq!(s.pop(), Some(Token::Deliver(0)));
        assert_eq!(s.pop(), Some(Token::Wake(3)));
        assert_eq!(s.pop(), Some(Token::Deliver(1)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn lifo_orders_in_reverse() {
        let mut s = LifoScheduler::new();
        s.push(Token::Deliver(0));
        s.push(Token::Deliver(1));
        assert_eq!(s.pop(), Some(Token::Deliver(1)));
        assert_eq!(s.pop(), Some(Token::Deliver(0)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            for i in 0..100 {
                s.push(Token::Deliver(i));
            }
            let mut order = Vec::new();
            while let Some(t) = s.pop() {
                order.push(t);
            }
            order
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_pops_everything() {
        let mut s = RandomScheduler::new(42);
        for i in 0..57 {
            s.push(Token::Deliver(i));
        }
        let mut seen = [false; 57];
        while let Some(Token::Deliver(e)) = s.pop() {
            assert!(!seen[e]);
            seen[e] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(s.is_empty());
    }
}
