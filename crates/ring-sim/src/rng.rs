//! Deterministic pseudo-randomness used across the workspace.
//!
//! The paper's model hands every processor an "infinite random string" and
//! otherwise keeps it deterministic. [`SplitMix64`] plays that role: a
//! small, fast, well-mixed 64-bit generator whose streams are reproducible
//! from a seed, so every execution in this workspace can be replayed
//! exactly. (`rand` is used only at the experiment layer, for workload
//! sampling.)

/// Sebastiano Vigna's SplitMix64 generator.
///
/// Passes BigCrush when used as a stream; more than adequate for driving
/// simulations and deriving per-node seeds. Not cryptographically secure.
///
/// # Examples
///
/// ```
/// use ring_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child generator; `salt` separates streams.
    ///
    /// Used to give each simulated processor its own random string from one
    /// master seed.
    pub fn derive(&self, salt: u64) -> Self {
        let mut tmp = Self::new(self.state ^ mix(salt ^ 0x9e37_79b9_7f4a_7c15));
        // Burn one output so `derive(0)` differs from the parent stream.
        tmp.next_u64();
        Self { state: tmp.state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses rejection sampling, so the result is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Power-of-two bounds (the sweep workloads' n = 64, m = 2n²):
        // the rejection zone below is the full range, so this mask is
        // bit-identical to the general path — same value, same single
        // stream advance — with no hardware division.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits for a uniform double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

/// The SplitMix64 finalizer: a strong 64-bit mixing permutation.
///
/// Exposed because `fle-core` reuses it to build the keyed random function
/// `f` of `PhaseAsyncLead`.
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_differs_from_parent() {
        let parent = SplitMix64::new(5);
        let mut child0 = parent.derive(0);
        let mut child1 = parent.derive(1);
        let mut parent = parent;
        let p = parent.next_u64();
        let c0 = child0.next_u64();
        let c1 = child1.next_u64();
        assert_ne!(p, c0);
        assert_ne!(c0, c1);
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = SplitMix64::new(123);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        // Each bucket expects 10_000; allow 5% deviation.
        for &c in &counts {
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn mix_is_a_permutation_sample() {
        // Distinct inputs map to distinct outputs on a sample (sanity, not
        // a proof of bijectivity).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix(i)));
        }
    }
}
