//! The discrete-event execution engine.

use crate::fault::FaultPlan;
use crate::links::{LinkQueues, LinkSlab};
use crate::node::{Ctx, Node, SendBuf};
use crate::outcome::{outcome_of, FailReason, Outcome};
use crate::probe::Probe;
use crate::scheduler::{FifoScheduler, PackedToken, Scheduler, Token};
use crate::timed::{TimedEvent, TimedNetConfig, TimedScheduler};
use crate::topology::{EdgeId, NodeId, Topology};
use std::collections::VecDeque;

/// Default step limit for a topology of `n` nodes: generous enough for any
/// protocol in this workspace (`A-LEADuni` delivers `n²` messages,
/// `PhaseAsyncLead` delivers `2n²`).
///
/// A `const fn`, so callers evaluate it once up front — no fn-pointer
/// indirection on any path near the engine loop.
pub const fn default_step_limit(n: usize) -> u64 {
    16 * (n as u64) * (n as u64) + 4096
}

/// Maximum number of entries the dense `(node, successor) → edge` table
/// may hold (`n²` entries of 4 bytes, so at most 4 MiB per engine). Larger
/// topologies fall back to the per-node linear scan, which is fine there:
/// a topology that big is never swept trial-by-trial.
const DENSE_EDGE_TABLE_MAX: usize = 1 << 20;

/// Builder wiring nodes, topology, wake-ups, scheduler and probe into one
/// runnable simulation.
///
/// # Examples
///
/// See the crate-level example. Typical protocol harnesses construct one
/// `SimBuilder` per trial:
///
/// ```
/// use ring_sim::{FnNode, RandomScheduler, SimBuilder, Topology};
///
/// let exec = SimBuilder::new(Topology::ring(3))
///     .node(0, FnNode::new(|_, m: u64, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.terminate(Some(m));
///     })
///     .on_wake(|ctx| { ctx.send(9); ctx.terminate(Some(9)); }))
///     .node(1, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .node(2, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .wake(0)
///     .scheduler(RandomScheduler::new(1))
///     .run();
/// assert_eq!(exec.outcome.elected(), Some(9));
/// ```
pub struct SimBuilder<'p, M> {
    topology: Topology,
    nodes: Vec<Option<Box<dyn Node<M> + 'p>>>,
    wakes: Vec<NodeId>,
    scheduler: Box<dyn Scheduler + 'p>,
    step_limit: u64,
    probe: Option<&'p mut dyn Probe<M>>,
    fault: FaultPlan,
}

impl<'p, M> std::fmt::Debug for SimBuilder<'p, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("topology", &self.topology)
            .field("wakes", &self.wakes)
            .field("step_limit", &self.step_limit)
            .finish_non_exhaustive()
    }
}

impl<'p, M> SimBuilder<'p, M> {
    /// Starts a builder for the given topology with the default FIFO
    /// scheduler and step limit.
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        Self {
            topology,
            nodes: (0..n).map(|_| None).collect(),
            wakes: Vec::new(),
            scheduler: Box::new(FifoScheduler::new()),
            step_limit: default_step_limit(n),
            probe: None,
            fault: FaultPlan::none(),
        }
    }

    /// Installs the behaviour of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn node(mut self, id: NodeId, node: impl Node<M> + 'p) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(Box::new(node));
        self
    }

    /// Installs a boxed behaviour of node `id` (for heterogeneous
    /// protocol/attack mixes built at runtime).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn boxed_node(mut self, id: NodeId, node: Box<dyn Node<M> + 'p>) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(node);
        self
    }

    /// Schedules a spontaneous wake-up for `id` (wake-ups are scheduled
    /// like messages, so they interleave obliviously with deliveries).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn wake(mut self, id: NodeId) -> Self {
        assert!(id < self.nodes.len(), "wake id {id} out of range");
        self.wakes.push(id);
        self
    }

    /// Schedules wake-ups for every node, in id order.
    pub fn wake_all(mut self) -> Self {
        let n = self.nodes.len();
        self.wakes.extend(0..n);
        self
    }

    /// Replaces the default FIFO scheduler.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'p) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Overrides the step limit (each wake-up or delivery is one step).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Attaches an observation probe for this run.
    pub fn probe(mut self, probe: &'p mut dyn Probe<M>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Installs a crash-fault plan for this run (see [`crate::fault`]).
    /// The empty plan (the default) is exactly the fault-free path.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Runs the simulation to completion and returns the [`Execution`].
    ///
    /// The run ends when all nodes have terminated, when no tokens remain
    /// (deadlock), or when the step limit is exceeded.
    ///
    /// This is the one-shot path: it builds a fresh [`Engine`] per call.
    /// Batch workloads that run many trials over the same topology should
    /// hold an [`Engine`] and call [`Engine::run`] directly to reuse its
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if any node id was left without a behaviour — an incomplete
    /// wiring is a programming error.
    pub fn run(self) -> Execution {
        let SimBuilder {
            topology,
            nodes,
            wakes,
            mut scheduler,
            step_limit,
            probe,
            fault,
        } = self;
        let mut nodes: Vec<Box<dyn Node<M> + 'p>> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("node {i} has no behaviour")))
            .collect();
        let mut engine = Engine::new(topology);
        engine.set_fault_plan(&fault);
        engine.run_session(&mut nodes, &wakes, &mut *scheduler, step_limit, probe)
    }
}

/// A reusable simulation engine for one fixed [`Topology`].
///
/// [`SimBuilder::run`] allocates the per-run working set — link queues,
/// adjacency tables, per-node counters — from scratch on every call. For a
/// Monte-Carlo sweep of many thousands of trials over the *same* topology
/// that churn dominates the runtime, so `Engine` keeps those buffers alive
/// across runs: [`Engine::run`] resets them in place (queue capacities are
/// retained) and executes a fresh set of node behaviours.
///
/// An `Engine` produces bit-identical [`Execution`]s to the equivalent
/// [`SimBuilder::run`] call — it is purely an allocation-reuse facility.
/// The `fle-harness` crate gives every worker thread its own `Engine`.
///
/// # Examples
///
/// ```
/// use ring_sim::{Ctx, Engine, FifoScheduler, FnNode, Node, Outcome, Topology};
///
/// let mut engine = Engine::new(Topology::ring(2));
/// for trial in 0..3u64 {
///     let mut nodes: Vec<Box<dyn Node<u64>>> = vec![
///         Box::new(
///             FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(m)))
///                 .on_wake(move |ctx| {
///                     ctx.send(trial);
///                     ctx.terminate(Some(trial));
///                 }),
///         ),
///         Box::new(FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| {
///             ctx.terminate(Some(m));
///         })),
///     ];
///     let exec = engine.run(&mut nodes, &[0], &mut FifoScheduler::new(), 1000);
///     assert_eq!(exec.outcome, Outcome::Elected(trial));
/// }
/// ```
pub struct Engine<M> {
    topology: Topology,
    n: usize,
    out_neighbors: Vec<Vec<NodeId>>,
    /// Dense `(node, successor) → edge` table: entry `me * n + to` is the
    /// edge id of the link `me → to`, or `u32::MAX` when absent. Empty when
    /// the topology is too large ([`DENSE_EDGE_TABLE_MAX`]).
    edge_of_dense: Vec<u32>,
    /// Per-node `(successor, edge)` fallback list for topologies too large
    /// for the dense table.
    out_edge_of: Vec<Vec<(NodeId, EdgeId)>>,
    /// Per-link message storage: the flat [`LinkSlab`] on ring-shaped
    /// topologies, per-link `VecDeque`s elsewhere.
    links: LinkStorage<M>,
    /// `link_dirty[e]` is set the first time a run pushes onto link `e`;
    /// `link_touched` lists exactly those links, so [`Engine::reset`]
    /// clears O(touched) queues instead of all of them.
    link_dirty: Vec<bool>,
    link_touched: Vec<EdgeId>,
    /// The fused token+message stream of the global-FIFO fast path (see
    /// [`Scheduler::is_global_fifo`]): tokens and their messages travel as
    /// one entry, so a delivery is a single `pop_front` instead of a token
    /// pop plus a link-queue pop. Empty whenever the run's scheduler is
    /// not a global FIFO. Capacity is retained across trials.
    fused: VecDeque<FusedEvent<M>>,
    outputs: Vec<Option<Option<u64>>>,
    sent: Vec<u64>,
    received: Vec<u64>,
    /// Reusable per-activation send buffer lent to [`Ctx`].
    sends: SendBuf<M>,
    /// The crash-fault plan applied to every run until replaced (empty by
    /// default — see [`Engine::set_fault_plan`]). Deliberately **not**
    /// cleared by [`Engine::reset`]: the plan is per-trial configuration,
    /// installed before the run that `reset` opens.
    fault: FaultPlan,
    /// Decaying high-water mark of events processed per run, driving the
    /// shrink-on-idle capacity policy in [`Engine::reset`]: retained queue
    /// capacity is bounded by 4× this mark, so one oversized trial cannot
    /// pin its peak working set for the lifetime of a cached engine.
    hwm_events: u64,
}

/// The engine's two link-storage layouts. The variant is fixed at
/// construction; every run entry dispatches on it **once**, outside the
/// delivery loop, into a monomorphized [`drive`] instantiation.
enum LinkStorage<M> {
    /// Flat slab — topologies where every node has exactly one in-link.
    Slab(LinkSlab<M>),
    /// General-topology fallback: one `VecDeque` per link.
    Queues(Vec<VecDeque<M>>),
}

/// One entry of the fused global-FIFO stream: a [`Token`] carrying its
/// message payload inline. Under a global-FIFO schedule the `k`-th popped
/// `Deliver` token always delivers the `k`-th sent message (token order
/// *is* per-link message order), so storing them together is semantics-
/// preserving — and halves the hot loop's queue traffic.
enum FusedEvent<M> {
    /// Wake node `NodeId` spontaneously.
    Wake(NodeId),
    /// Deliver `M` along link `EdgeId`.
    Deliver(EdgeId, M),
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl<M> Engine<M> {
    /// Creates an engine for `topology`, preallocating the working set.
    ///
    /// Topologies in which every node has exactly one incoming link
    /// (unidirectional rings — every sweep workload) get the flat
    /// `LinkSlab` message storage; general topologies fall back to
    /// per-link `VecDeque`s. Both produce bit-identical [`Execution`]s.
    pub fn new(topology: Topology) -> Self {
        Self::build(topology, false)
    }

    /// [`Engine::new`] forced onto the general-topology `VecDeque` link
    /// storage even when the topology qualifies for the ring slab.
    ///
    /// Semantics are identical to [`Engine::new`] — this constructor
    /// exists as the **differential-test oracle** for the slab fast path
    /// (`tests/engine_paths.rs` runs every protocol through both layouts
    /// and asserts bit-identical executions).
    pub fn new_with_general_links(topology: Topology) -> Self {
        Self::build(topology, true)
    }

    fn build(topology: Topology, force_general_links: bool) -> Self {
        let n = topology.len();
        let out_neighbors: Vec<Vec<NodeId>> = (0..n).map(|i| topology.out_neighbors(i)).collect();
        let out_edge_of: Vec<Vec<(NodeId, EdgeId)>> = (0..n)
            .map(|i| {
                topology
                    .out_edges(i)
                    .iter()
                    .map(|&e| (topology.edges()[e].1, e))
                    .collect()
            })
            .collect();
        let edge_of_dense = if n
            .checked_mul(n)
            .is_some_and(|nn| nn <= DENSE_EDGE_TABLE_MAX)
            && topology.edges().len() < u32::MAX as usize
        {
            let mut table = vec![u32::MAX; n * n];
            for (e, &(from, to)) in topology.edges().iter().enumerate() {
                table[from * n + to] = e as u32;
            }
            table
        } else {
            Vec::new()
        };
        let links_count = topology.edges().len();
        let ring_shaped = (0..n).all(|i| topology.in_edges(i).len() == 1);
        let links = if ring_shaped && !force_general_links {
            LinkStorage::Slab(LinkSlab::new(links_count))
        } else {
            LinkStorage::Queues((0..links_count).map(|_| VecDeque::new()).collect())
        };
        Self {
            topology,
            n,
            out_neighbors,
            edge_of_dense,
            out_edge_of,
            links,
            link_dirty: vec![false; links_count],
            link_touched: Vec::new(),
            fused: VecDeque::new(),
            outputs: vec![None; n],
            sent: vec![0; n],
            received: vec![0; n],
            sends: SendBuf::default(),
            fault: FaultPlan::none(),
            hwm_events: 0,
        }
    }

    /// Installs a crash-fault plan: every subsequent run applies it until
    /// it is replaced or [`Engine::clear_fault_plan`] is called
    /// ([`Engine::reset`] leaves it alone). The plan is copied into an
    /// engine-owned buffer whose allocation is reused across trials.
    ///
    /// With a non-empty plan the run dispatches into a separate loop
    /// instantiation that consults [`FaultPlan::is_down`] per event; the
    /// empty plan selects the identical fault-free instantiation as
    /// before this facility existed.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault.clone_from(plan);
    }

    /// Removes any installed crash-fault plan (keeping its allocation),
    /// returning the engine to the fault-free path.
    pub fn clear_fault_plan(&mut self) {
        self.fault.clear();
    }

    /// The currently installed crash-fault plan (empty = fault-free).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// The topology this engine simulates.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// `true` when this engine stores link messages in the flat ring
    /// `LinkSlab` (rather than the general-topology `VecDeque`
    /// fallback). Exposed so tests and benches can assert which path a
    /// workload rides.
    pub fn uses_ring_slab(&self) -> bool {
        matches!(self.links, LinkStorage::Slab(_))
    }

    /// Clears all per-run state in place, keeping every allocation (link
    /// queues retain their capacity). Called automatically at the start of
    /// each [`Engine::run`]; exposed for callers that want a cleared engine
    /// between batches.
    ///
    /// Link clearing is O(links *touched by the previous run*): pushes
    /// record first-touches in a dirty list, so a run that delivered
    /// everything (or touched only a few links) costs a short walk here,
    /// not a scan of every queue.
    ///
    /// Capacity is retained across trials **up to a budget**: 4× the
    /// decaying high-water mark of events per run (floored at 64 slots).
    /// Steady-state batches keep their allocations and never shrink; after
    /// one anomalously large trial the excess is released here over the
    /// following trials instead of being pinned for the engine's lifetime.
    pub fn reset(&mut self) {
        let budget = (4 * self.hwm_events).max(64) as usize;
        let Engine {
            links,
            link_dirty,
            link_touched,
            ..
        } = self;
        match links {
            LinkStorage::Slab(slab) => {
                for &e in link_touched.iter() {
                    slab.clear_link(e);
                    link_dirty[e] = false;
                }
                slab.shrink_to_budget(budget);
            }
            LinkStorage::Queues(queues) => {
                for &e in link_touched.iter() {
                    queues.clear_link(e);
                    link_dirty[e] = false;
                    if queues[e].capacity() > budget {
                        queues[e].shrink_to(budget);
                    }
                }
            }
        }
        link_touched.clear();
        self.fused.clear();
        if self.fused.capacity() > budget {
            self.fused.shrink_to(budget);
        }
        self.outputs.fill(None);
        self.sent.fill(0);
        self.received.fill(0);
        self.sends.clear();
    }

    /// Retained capacity of the fused global-FIFO stream, in events —
    /// bounded by the shrink-on-idle policy of [`Engine::reset`]. Exposed
    /// for the capacity-regression suite.
    pub fn retained_fused_capacity(&self) -> usize {
        self.fused.capacity()
    }

    /// Largest retained per-link queue capacity, in messages — bounded by
    /// the shrink-on-idle policy of [`Engine::reset`]. Exposed for the
    /// capacity-regression suite.
    pub fn retained_link_capacity(&self) -> usize {
        match &self.links {
            LinkStorage::Slab(slab) => slab.per_link_capacity(),
            LinkStorage::Queues(queues) => queues.iter().map(|q| q.capacity()).max().unwrap_or(0),
        }
    }

    /// Runs one trial with the given step limit and no probe.
    ///
    /// `nodes[i]` is the behaviour of node `i`; `wakes` lists the
    /// spontaneously waking nodes in wake order. The engine is reset first
    /// (and the scheduler cleared), so back-to-back calls are independent
    /// trials.
    ///
    /// This is the boxed-clone convenience path: it allocates a fresh
    /// [`Execution`] per call. Batch aggregation should use
    /// [`Engine::run_into`] (or [`Engine::run_mono_into`]) with a reused
    /// out-parameter instead.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
    ) -> Execution {
        let mut out = Execution::default();
        self.session_core(nodes, wakes, scheduler, step_limit, NoProbeHook, &mut out);
        out
    }

    /// [`Engine::run`] writing the result into a caller-owned
    /// [`Execution`] instead of allocating a fresh one.
    ///
    /// `out`'s buffers are cleared and refilled in place, so a worker that
    /// reuses one `Execution` across a batch performs zero per-trial
    /// allocation on this path.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_into(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
        out: &mut Execution,
    ) {
        self.session_core(nodes, wakes, scheduler, step_limit, NoProbeHook, out);
    }

    /// [`Engine::run`] with an optional instrumentation probe.
    ///
    /// Probed runs go through a separate loop instantiation
    /// (`DynProbeHook`); the probe-less entries compile with
    /// `NoProbeHook`, whose empty inline hooks vanish entirely — no
    /// `Option<&mut dyn Probe>` check survives on any per-delivery path.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_session(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
        probe: Option<&mut dyn Probe<M>>,
    ) -> Execution {
        let mut out = Execution::default();
        match probe {
            Some(p) => self.session_core(
                nodes,
                wakes,
                scheduler,
                step_limit,
                DynProbeHook(p),
                &mut out,
            ),
            None => self.session_core(nodes, wakes, scheduler, step_limit, NoProbeHook, &mut out),
        }
        out
    }

    /// The monomorphized honest fast path: like [`Engine::run`], but the
    /// node behaviours are a homogeneous `&mut [N]` — no `Box`, no vtable
    /// dispatch per activation, and the scheduler calls are statically
    /// dispatched too. The protocol crates' `run_honest_in` entries route
    /// through here; `Box<dyn Node>` remains available (via
    /// [`Engine::run`]) for heterogeneous protocol/attack mixes.
    ///
    /// Produces bit-identical [`Execution`]s to [`Engine::run`] over the
    /// equivalent boxed behaviours.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_mono<N: Node<M>, S: Scheduler + ?Sized>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        scheduler: &mut S,
        step_limit: u64,
    ) -> Execution {
        let mut out = Execution::default();
        self.session_core(nodes, wakes, scheduler, step_limit, NoProbeHook, &mut out);
        out
    }

    /// [`Engine::run_mono`] writing into a caller-owned [`Execution`] —
    /// the zero-allocation batch-trial entry point.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_mono_into<N: Node<M>, S: Scheduler + ?Sized>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        scheduler: &mut S,
        step_limit: u64,
        out: &mut Execution,
    ) {
        self.session_core(nodes, wakes, scheduler, step_limit, NoProbeHook, out);
    }

    /// The engine loop's front half: resets per-run state, then dispatches
    /// **once** on the link-storage variant and the probe hook into a fully
    /// monomorphized [`drive`] instantiation — generic over node storage,
    /// scheduler, link layout and probe, so the honest batch path carries
    /// no vtable call, no storage match and no probe branch per delivery.
    /// Every public `run*` entry funnels here, which is what keeps all the
    /// paths bit-identical by construction.
    fn session_core<N: Node<M>, S: Scheduler + ?Sized, P: ProbeHook<M>>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        scheduler: &mut S,
        step_limit: u64,
        mut probe: P,
        out: &mut Execution,
    ) {
        assert_eq!(nodes.len(), self.n, "need one behaviour per node");
        self.reset();
        scheduler.clear();

        let Engine {
            topology,
            n,
            out_neighbors,
            edge_of_dense,
            out_edge_of,
            links,
            link_dirty,
            link_touched,
            fused,
            outputs,
            sent,
            received,
            sends,
            fault,
            ..
        } = self;
        let hot = Hot {
            n: *n,
            edges: topology.edges(),
            out_neighbors,
            edge_of_dense,
            out_edge_of,
        };
        let mut state = RunState {
            outputs,
            sent,
            received,
            sends,
            link_dirty,
            link_touched,
        };
        // One dispatch on the fault plan, outside the loop: the fault-free
        // arm instantiates with `NoFaults`, whose inline-false `is_down`
        // vanishes — no per-delivery fault check survives on that path.
        let (steps, delivered, hit_limit) = if fault.is_empty() {
            drive_dispatch(
                &hot, &mut state, links, fused, nodes, wakes, scheduler, step_limit, &mut probe,
                &NoFaults,
            )
        } else {
            drive_dispatch(
                &hot,
                &mut state,
                links,
                fused,
                nodes,
                wakes,
                scheduler,
                step_limit,
                &mut probe,
                &PlanFaults(fault),
            )
        };

        out.outcome = outcome_of(&*state.outputs, !hit_limit);
        out.outputs.clear();
        out.outputs.extend_from_slice(&*state.outputs);
        out.stats.steps = steps;
        out.stats.delivered = delivered;
        out.stats.sent.clear();
        out.stats.sent.extend_from_slice(&*state.sent);
        out.stats.received.clear();
        out.stats.received.extend_from_slice(&*state.received);
        out.stats.crashes = fault.fired_count(delivered);
        if out.stats.crashes > 0 && out.outcome == Outcome::Fail(FailReason::Deadlock) {
            // Quiescence with live non-terminated nodes downstream of a
            // fired crash: the fault partitioned the election, which is a
            // different diagnosis than a protocol deadlock.
            out.outcome = Outcome::Fail(FailReason::CrashPartition);
        }
        self.hwm_events = steps.max(self.hwm_events / 2);
    }

    /// Runs one trial on the virtual-clock timed path (latency, bandwidth,
    /// loss, duplication per [`TimedNetConfig`]), allocating a fresh
    /// [`Execution`]. The convenience form of
    /// [`Engine::run_timed_mono_into`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_timed<N: Node<M>>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        timed: &mut TimedScheduler<M>,
        net: &TimedNetConfig,
        seed: u64,
        step_limit: u64,
    ) -> Execution
    where
        M: Clone,
    {
        let mut out = Execution::default();
        self.run_timed_mono_into(nodes, wakes, timed, net, seed, step_limit, &mut out);
        out
    }

    /// The timed analogue of [`Engine::run_mono_into`]: executes one trial
    /// over the virtual clock of `timed`, configured by `net` and seeded
    /// (for latency/loss/dup draws) from `seed` through the dedicated
    /// network stream — protocol node randomness is untouched.
    ///
    /// With the all-zero [`TimedNetConfig`] this is **bit-identical** to
    /// [`Engine::run_mono_into`] under a FIFO scheduler: every event is
    /// stamped `t = 0`, so the heap degenerates to the fused send-order
    /// queue. `M: Clone` is required for duplicate deliveries.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    #[allow(clippy::too_many_arguments)] // the worker's reusable buffers, spelled out
    pub fn run_timed_mono_into<N: Node<M>>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        timed: &mut TimedScheduler<M>,
        net: &TimedNetConfig,
        seed: u64,
        step_limit: u64,
        out: &mut Execution,
    ) where
        M: Clone,
    {
        self.timed_session_core(nodes, wakes, timed, net, seed, step_limit, NoProbeHook, out);
    }

    /// The timed twin of [`session_core`](Engine::session_core): resets
    /// engine and timed scheduler, then drives the heap loop.
    #[allow(clippy::too_many_arguments)] // the split engine borrows, spelled out
    fn timed_session_core<N: Node<M>, P: ProbeHook<M>>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        timed: &mut TimedScheduler<M>,
        net: &TimedNetConfig,
        seed: u64,
        step_limit: u64,
        mut probe: P,
        out: &mut Execution,
    ) where
        M: Clone,
    {
        assert_eq!(nodes.len(), self.n, "need one behaviour per node");
        self.reset();
        timed.begin_trial(net, self.topology.edges().len(), seed);

        let Engine {
            topology,
            n,
            out_neighbors,
            edge_of_dense,
            out_edge_of,
            outputs,
            sent,
            received,
            sends,
            link_dirty,
            link_touched,
            fault,
            ..
        } = self;
        let hot = Hot {
            n: *n,
            edges: topology.edges(),
            out_neighbors,
            edge_of_dense,
            out_edge_of,
        };
        let mut state = RunState {
            outputs,
            sent,
            received,
            sends,
            link_dirty,
            link_touched,
        };
        let (steps, delivered, hit_limit) = if fault.is_empty() {
            drive_timed(
                &hot, &mut state, timed, nodes, wakes, step_limit, &mut probe, &NoFaults,
            )
        } else {
            drive_timed(
                &hot,
                &mut state,
                timed,
                nodes,
                wakes,
                step_limit,
                &mut probe,
                &PlanFaults(fault),
            )
        };

        out.outcome = outcome_of(&*state.outputs, !hit_limit);
        out.outputs.clear();
        out.outputs.extend_from_slice(&*state.outputs);
        out.stats.steps = steps;
        out.stats.delivered = delivered;
        out.stats.sent.clear();
        out.stats.sent.extend_from_slice(&*state.sent);
        out.stats.received.clear();
        out.stats.received.extend_from_slice(&*state.received);
        out.stats.crashes = fault.fired_count(timed.now());
        if out.stats.crashes > 0 && out.outcome == Outcome::Fail(FailReason::Deadlock) {
            out.outcome = Outcome::Fail(FailReason::CrashPartition);
        }
        self.hwm_events = steps.max(self.hwm_events / 2);
    }

    /// Resolves the edge id of the link `me → to` — O(1) through the dense
    /// table on every topology a sweep would use, linear scan beyond
    /// [`DENSE_EDGE_TABLE_MAX`].
    #[cfg(test)]
    fn edge_to(&self, me: NodeId, to: NodeId) -> EdgeId {
        edge_lookup(&self.edge_of_dense, &self.out_edge_of, self.n, me, to)
    }

    /// `true` when every link queue (and the fused stream) is empty
    /// (test/oracle helper).
    #[cfg(test)]
    fn links_are_empty(&self) -> bool {
        self.fused.is_empty()
            && match &self.links {
                LinkStorage::Slab(slab) => slab.is_empty(),
                LinkStorage::Queues(queues) => queues.iter().all(|q| q.is_empty()),
            }
    }
}

/// Per-delivery observation hooks, monomorphized so the probe-less run
/// entries compile their calls away entirely (no `Option` check, no
/// vtable). [`DynProbeHook`] adapts the public `&mut dyn Probe<M>` surface
/// for [`Engine::run_session`].
trait ProbeHook<M> {
    fn on_send(&mut self, from: NodeId, to: NodeId, msg: &M, sent: &[u64]);
    fn on_deliver(&mut self, from: NodeId, to: NodeId, msg: &M, received: &[u64]);
    fn on_terminate(&mut self, node: NodeId, output: Option<u64>);
}

/// The probe-free hook: every method is an empty inline no-op.
struct NoProbeHook;

impl<M> ProbeHook<M> for NoProbeHook {
    #[inline(always)]
    fn on_send(&mut self, _: NodeId, _: NodeId, _: &M, _: &[u64]) {}
    #[inline(always)]
    fn on_deliver(&mut self, _: NodeId, _: NodeId, _: &M, _: &[u64]) {}
    #[inline(always)]
    fn on_terminate(&mut self, _: NodeId, _: Option<u64>) {}
}

/// Adapter lending a dynamic [`Probe`] into the monomorphized loop.
struct DynProbeHook<'a, M>(&'a mut dyn Probe<M>);

impl<M> ProbeHook<M> for DynProbeHook<'_, M> {
    fn on_send(&mut self, from: NodeId, to: NodeId, msg: &M, sent: &[u64]) {
        self.0.on_send(from, to, msg, sent);
    }
    fn on_deliver(&mut self, from: NodeId, to: NodeId, msg: &M, received: &[u64]) {
        self.0.on_deliver(from, to, msg, received);
    }
    fn on_terminate(&mut self, node: NodeId, output: Option<u64>) {
        self.0.on_terminate(node, output);
    }
}

/// Per-event crash check, monomorphized like [`ProbeHook`] so the
/// fault-free run entries compile the check away entirely. `clock` is the
/// loop's clock: deliveries completed so far on the untimed paths, the
/// virtual time on the timed path.
trait FaultHook {
    fn is_down(&self, node: NodeId, clock: u64) -> bool;
}

/// The fault-free hook: an inline constant `false`.
struct NoFaults;

impl FaultHook for NoFaults {
    #[inline(always)]
    fn is_down(&self, _: NodeId, _: u64) -> bool {
        false
    }
}

/// Adapter consulting a non-empty [`FaultPlan`] per event.
struct PlanFaults<'a>(&'a FaultPlan);

impl FaultHook for PlanFaults<'_> {
    #[inline]
    fn is_down(&self, node: NodeId, clock: u64) -> bool {
        self.0.is_down(node, clock)
    }
}

/// The untimed three-way loop dispatch (fused global-FIFO stream, ring
/// slab, general queues), factored out of
/// [`session_core`](Engine::session_core) so it instantiates once per
/// [`FaultHook`] without spelling the arms twice at the call site.
#[allow(clippy::too_many_arguments)] // the split engine borrows, spelled out
fn drive_dispatch<M, N: Node<M>, S: Scheduler + ?Sized, P: ProbeHook<M>, F: FaultHook>(
    hot: &Hot<'_>,
    state: &mut RunState<'_, M>,
    links: &mut LinkStorage<M>,
    fused: &mut VecDeque<FusedEvent<M>>,
    nodes: &mut [N],
    wakes: &[NodeId],
    scheduler: &mut S,
    step_limit: u64,
    probe: &mut P,
    faults: &F,
) -> (u64, u64, bool) {
    if scheduler.is_global_fifo() {
        drive_fused(hot, state, fused, nodes, wakes, step_limit, probe, faults)
    } else {
        match links {
            LinkStorage::Slab(slab) => drive(
                hot, state, slab, nodes, wakes, scheduler, step_limit, probe, faults,
            ),
            LinkStorage::Queues(queues) => drive(
                hot, state, queues, nodes, wakes, scheduler, step_limit, probe, faults,
            ),
        }
    }
}

/// The engine's read-only per-run lookups, grouped so [`drive`] and
/// [`activate`] borrow them immutably alongside the mutable [`RunState`].
struct Hot<'e> {
    n: usize,
    edges: &'e [(NodeId, NodeId)],
    out_neighbors: &'e [Vec<NodeId>],
    edge_of_dense: &'e [u32],
    out_edge_of: &'e [Vec<(NodeId, EdgeId)>],
}

/// The engine's mutable per-run state, split off `Engine` as disjoint
/// field borrows so the loop can hold the link storage `&mut` separately.
struct RunState<'e, M> {
    outputs: &'e mut [Option<Option<u64>>],
    sent: &'e mut [u64],
    received: &'e mut [u64],
    sends: &'e mut SendBuf<M>,
    link_dirty: &'e mut [bool],
    link_touched: &'e mut Vec<EdgeId>,
}

/// The monomorphized delivery loop: pops packed tokens, moves messages
/// through the link storage `L`, and activates nodes. One instantiation
/// per (node storage, scheduler, link layout, probe hook) combination —
/// the honest batch path's is fully static. The [`RunState`] is flattened
/// into plain single-level `&mut` locals up front so every per-delivery
/// counter access is one load, not a double indirection.
#[allow(clippy::too_many_arguments)] // the split engine borrows, spelled out
fn drive<M, N: Node<M>, S: Scheduler + ?Sized, L: LinkQueues<M>, P: ProbeHook<M>, F: FaultHook>(
    hot: &Hot<'_>,
    state: &mut RunState<'_, M>,
    links: &mut L,
    nodes: &mut [N],
    wakes: &[NodeId],
    scheduler: &mut S,
    step_limit: u64,
    probe: &mut P,
    faults: &F,
) -> (u64, u64, bool) {
    let RunState {
        outputs,
        sent,
        received,
        sends,
        link_dirty,
        link_touched,
    } = state;
    let outputs: &mut [Option<Option<u64>>] = outputs;
    let sent: &mut [u64] = sent;
    let received: &mut [u64] = received;
    let sends: &mut SendBuf<M> = sends;
    let link_dirty: &mut [bool] = link_dirty;
    let link_touched: &mut Vec<EdgeId> = link_touched;

    let mut delivered = 0u64;
    let mut steps = 0u64;

    for &w in wakes {
        scheduler.push_packed(PackedToken::wake(w));
    }

    let mut hit_limit = false;
    while let Some(token) = scheduler.pop_packed() {
        if steps >= step_limit {
            hit_limit = true;
            break;
        }
        steps += 1;
        match token.decode() {
            Token::Wake(i) => {
                if outputs[i].is_none() && !faults.is_down(i, delivered) {
                    activate(
                        hot,
                        outputs,
                        sent,
                        sends,
                        nodes,
                        i,
                        None,
                        probe,
                        |edge, msg| {
                            if !link_dirty[edge] {
                                link_dirty[edge] = true;
                                link_touched.push(edge);
                            }
                            links.push(edge, msg);
                            scheduler.push_packed(PackedToken::deliver(edge));
                        },
                    );
                }
            }
            Token::Deliver(edge) => {
                let msg = links.pop(edge);
                let (from, to) = hot.edges[edge];
                // A crashed receiver still consumes the message (the link
                // worked; the processor did not), so the delivery counts —
                // only the activation is suppressed.
                let down = faults.is_down(to, delivered);
                received[to] += 1;
                delivered += 1;
                probe.on_deliver(from, to, &msg, received);
                if outputs[to].is_none() && !down {
                    activate(
                        hot,
                        outputs,
                        sent,
                        sends,
                        nodes,
                        to,
                        Some((from, msg)),
                        probe,
                        |edge, msg| {
                            if !link_dirty[edge] {
                                link_dirty[edge] = true;
                                link_touched.push(edge);
                            }
                            links.push(edge, msg);
                            scheduler.push_packed(PackedToken::deliver(edge));
                        },
                    );
                }
            }
        }
    }
    (steps, delivered, hit_limit)
}

/// The fused global-FIFO loop (see [`Scheduler::is_global_fifo`]): tokens
/// and messages travel as one [`FusedEvent`] through a single `VecDeque`,
/// so a delivery costs one `pop_front` and a send one `push_back` —
/// half the queue traffic of the split token/link path. Link storage and
/// dirty tracking are untouched (the stream carries the messages), and
/// executions are bit-identical to [`drive`] under a FIFO schedule.
#[allow(clippy::too_many_arguments)] // the split engine borrows, spelled out
fn drive_fused<M, N: Node<M>, P: ProbeHook<M>, F: FaultHook>(
    hot: &Hot<'_>,
    state: &mut RunState<'_, M>,
    fused: &mut VecDeque<FusedEvent<M>>,
    nodes: &mut [N],
    wakes: &[NodeId],
    step_limit: u64,
    probe: &mut P,
    faults: &F,
) -> (u64, u64, bool) {
    let RunState {
        outputs,
        sent,
        received,
        sends,
        ..
    } = state;
    let outputs: &mut [Option<Option<u64>>] = outputs;
    let sent: &mut [u64] = sent;
    let received: &mut [u64] = received;
    let sends: &mut SendBuf<M> = sends;

    let mut delivered = 0u64;
    let mut steps = 0u64;

    for &w in wakes {
        fused.push_back(FusedEvent::Wake(w));
    }

    let mut hit_limit = false;
    while let Some(event) = fused.pop_front() {
        if steps >= step_limit {
            hit_limit = true;
            break;
        }
        steps += 1;
        match event {
            FusedEvent::Wake(i) => {
                if outputs[i].is_none() && !faults.is_down(i, delivered) {
                    activate(
                        hot,
                        outputs,
                        sent,
                        sends,
                        nodes,
                        i,
                        None,
                        probe,
                        |edge, msg| {
                            fused.push_back(FusedEvent::Deliver(edge, msg));
                        },
                    );
                }
            }
            FusedEvent::Deliver(edge, msg) => {
                let (from, to) = hot.edges[edge];
                let down = faults.is_down(to, delivered);
                received[to] += 1;
                delivered += 1;
                probe.on_deliver(from, to, &msg, received);
                if outputs[to].is_none() && !down {
                    activate(
                        hot,
                        outputs,
                        sent,
                        sends,
                        nodes,
                        to,
                        Some((from, msg)),
                        probe,
                        |edge, msg| {
                            fused.push_back(FusedEvent::Deliver(edge, msg));
                        },
                    );
                }
            }
        }
    }
    (steps, delivered, hit_limit)
}

/// The virtual-clock loop: pops the earliest `(time, seq)` event off the
/// [`TimedScheduler`] heap and activates nodes exactly like
/// [`drive_fused`]; sends flow through [`TimedScheduler::send`], which
/// applies the link's loss coin, bandwidth queue, latency draw and
/// duplication coin. Under the all-zero network profile every entry is
/// stamped `t = 0` and the heap pops in sequence (= send) order, making
/// this loop bit-identical to [`drive_fused`] by construction.
#[allow(clippy::too_many_arguments)] // the split engine borrows, spelled out
fn drive_timed<M: Clone, N: Node<M>, P: ProbeHook<M>, F: FaultHook>(
    hot: &Hot<'_>,
    state: &mut RunState<'_, M>,
    timed: &mut TimedScheduler<M>,
    nodes: &mut [N],
    wakes: &[NodeId],
    step_limit: u64,
    probe: &mut P,
    faults: &F,
) -> (u64, u64, bool) {
    let RunState {
        outputs,
        sent,
        received,
        sends,
        ..
    } = state;
    let outputs: &mut [Option<Option<u64>>] = outputs;
    let sent: &mut [u64] = sent;
    let received: &mut [u64] = received;
    let sends: &mut SendBuf<M> = sends;

    let mut delivered = 0u64;
    let mut steps = 0u64;

    for &w in wakes {
        timed.push_wake(w);
    }

    let mut hit_limit = false;
    while let Some(event) = timed.pop() {
        if steps >= step_limit {
            hit_limit = true;
            break;
        }
        steps += 1;
        match event {
            TimedEvent::Wake(i) => {
                // Crash instants on this path are virtual-clock times.
                if outputs[i].is_none() && !faults.is_down(i, timed.now()) {
                    activate(
                        hot,
                        outputs,
                        sent,
                        sends,
                        nodes,
                        i,
                        None,
                        probe,
                        |edge, msg| timed.send(edge, msg),
                    );
                }
            }
            TimedEvent::Deliver(edge, msg) => {
                let (from, to) = hot.edges[edge];
                let down = faults.is_down(to, timed.now());
                received[to] += 1;
                delivered += 1;
                probe.on_deliver(from, to, &msg, received);
                if outputs[to].is_none() && !down {
                    activate(
                        hot,
                        outputs,
                        sent,
                        sends,
                        nodes,
                        to,
                        Some((from, msg)),
                        probe,
                        |edge, msg| timed.send(edge, msg),
                    );
                }
            }
        }
    }
    (steps, delivered, hit_limit)
}

/// Runs one activation of node `me` (a wake-up when `incoming` is `None`,
/// a delivery otherwise) and applies its buffered actions: each buffered
/// send resolves its link and counters here, then flows into `emit` (the
/// caller's queue shape: split token/link push or fused-stream push); a
/// terminal output is recorded on the spot.
///
/// The [`Ctx`] borrows the engine's persistent send buffer in place
/// (disjoint-field borrows, no `mem::take` round-trip), so an activation
/// costs no `SendBuf` copies — measurable at PhaseAsyncLead n=64, where
/// one trial is 8k activations.
#[allow(clippy::too_many_arguments)] // the split engine borrows, spelled out
#[inline(always)]
fn activate<M, N: Node<M>, P: ProbeHook<M>>(
    hot: &Hot<'_>,
    outputs: &mut [Option<Option<u64>>],
    sent: &mut [u64],
    sends: &mut SendBuf<M>,
    nodes: &mut [N],
    me: NodeId,
    incoming: Option<(NodeId, M)>,
    probe: &mut P,
    mut emit: impl FnMut(EdgeId, M),
) {
    let output = {
        let mut ctx = Ctx::new(me, &hot.out_neighbors[me], sends);
        match incoming {
            Some((from, msg)) => nodes[me].on_message(from, msg, &mut ctx),
            None => nodes[me].on_wake(&mut ctx),
        }
        ctx.output
    };
    sends.drain_with(|to, msg| {
        let edge = edge_lookup(hot.edge_of_dense, hot.out_edge_of, hot.n, me, to);
        sent[me] += 1;
        probe.on_send(me, to, &msg, sent);
        emit(edge, msg);
    });
    if let Some(out) = output {
        outputs[me] = Some(out);
        probe.on_terminate(me, out);
    }
}

/// The edge-resolution core shared by [`Engine::edge_to`] and the
/// borrow-split send drain in [`Engine::activate`].
#[inline]
fn edge_lookup(
    edge_of_dense: &[u32],
    out_edge_of: &[Vec<(NodeId, EdgeId)>],
    n: usize,
    me: NodeId,
    to: NodeId,
) -> EdgeId {
    if !edge_of_dense.is_empty() {
        let e = edge_of_dense[me * n + to];
        debug_assert_ne!(e, u32::MAX, "Ctx validated the link exists");
        e as EdgeId
    } else {
        out_edge_of[me]
            .iter()
            .find(|&&(t, _)| t == to)
            .map(|&(_, e)| e)
            .expect("Ctx validated the link exists")
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// The global outcome.
    pub outcome: Outcome,
    /// Per-node terminal outputs (`None` = never terminated,
    /// `Some(None)` = aborted with `⊥`, `Some(Some(v))` = output `v`).
    pub outputs: Vec<Option<Option<u64>>>,
    /// Counters gathered during the run.
    pub stats: Stats,
}

impl Default for Execution {
    /// A pre-run placeholder (failed outcome, empty buffers) intended as
    /// the out-parameter of [`Engine::run_into`] /
    /// [`Engine::run_mono_into`], which overwrite every field. Reusing one
    /// value across a batch keeps the buffers' capacity, so per-trial
    /// result extraction allocates nothing.
    fn default() -> Self {
        Execution {
            outcome: Outcome::Fail(FailReason::Deadlock),
            outputs: Vec::new(),
            stats: Stats::default(),
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total wake-ups plus deliveries processed.
    pub steps: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Messages sent per node.
    pub sent: Vec<u64>,
    /// Messages received per node (including messages dropped because the
    /// receiver had terminated).
    pub received: Vec<u64>,
    /// Crash faults of the installed [`FaultPlan`] that *fired* during
    /// this run (their instant was reached). Always 0 on the fault-free
    /// path.
    pub crashes: u64,
}

impl Stats {
    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FnNode;
    use crate::outcome::FailReason;
    use crate::scheduler::{LifoScheduler, RandomScheduler};
    use crate::Topology;

    /// Token-ring counter: origin starts a token; each node increments and
    /// forwards; everyone terminates with the value they saw at `3n`.
    fn token_ring(n: usize, scheduler: impl Scheduler + 'static) -> Execution {
        let target = 3 * n as u64;
        let mut b = SimBuilder::new(Topology::ring(n)).scheduler(scheduler);
        for i in 0..n {
            let node = FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                if m >= target {
                    if m < target + n as u64 - 1 {
                        ctx.send(m + 1);
                    }
                    ctx.terminate(Some(target));
                } else {
                    ctx.send(m + 1);
                }
            })
            .on_wake(move |ctx| {
                ctx.send(1);
            });
            if i == 0 {
                b = b.node(i, node);
            } else {
                b = b.node(
                    i,
                    FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                        if m >= target {
                            if m < target + n as u64 - 1 {
                                ctx.send(m + 1);
                            }
                            ctx.terminate(Some(target));
                        } else {
                            ctx.send(m + 1);
                        }
                    }),
                );
            }
        }
        b.wake(0).run()
    }

    #[test]
    fn token_ring_elects_target_under_fifo() {
        let exec = token_ring(5, FifoScheduler::new());
        assert_eq!(exec.outcome, Outcome::Elected(15));
    }

    #[test]
    fn token_ring_schedule_independent() {
        let fifo = token_ring(6, FifoScheduler::new());
        let lifo = token_ring(6, LifoScheduler::new());
        let rand = token_ring(6, RandomScheduler::new(99));
        assert_eq!(fifo.outcome, lifo.outcome);
        assert_eq!(fifo.outcome, rand.outcome);
    }

    #[test]
    fn silent_network_deadlocks() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(1, FnNode::new(|_, _: u64, _| {}))
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::Deadlock));
    }

    #[test]
    fn infinite_chatter_hits_step_limit() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m))
                    .on_wake(|ctx| ctx.send(0)),
            )
            .node(
                1,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m)),
            )
            .wake(0)
            .step_limit(500)
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::StepLimit));
        assert_eq!(exec.stats.steps, 500);
    }

    #[test]
    fn messages_to_terminated_nodes_are_dropped() {
        // Node 1 terminates on first message; node 0 sends two.
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))).on_wake(
                    |ctx| {
                        ctx.send(1);
                        ctx.send(2);
                        ctx.terminate(Some(1));
                    },
                ),
            )
            .node(
                1,
                FnNode::new(|_, _m: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))),
            )
            .wake(0)
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(1));
        assert_eq!(exec.stats.received[1], 2); // both counted, one dropped
    }

    #[test]
    fn fifo_link_order_is_preserved_even_under_lifo_scheduler() {
        // Node 0 sends 1, 2, 3 to node 1; node 1 records order.
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, _ctx: &mut Ctx<'_, u64>| {}).on_wake(|ctx| {
                    ctx.send(1);
                    ctx.send(2);
                    ctx.send(3);
                    ctx.terminate(Some(0));
                }),
            )
            .node(
                1,
                FnNode::new(move |_, m: u64, ctx: &mut Ctx<'_, u64>| {
                    seen2.borrow_mut().push(m);
                    if seen2.borrow().len() == 3 {
                        ctx.terminate(Some(0));
                    }
                }),
            )
            .wake(0)
            .scheduler(LifoScheduler::new())
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(0));
        assert_eq!(*seen.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn stats_count_sends_and_receives() {
        let exec = token_ring(4, FifoScheduler::new());
        assert_eq!(exec.stats.total_sent(), exec.stats.delivered);
        assert!(exec.stats.sent.iter().all(|&s| s > 0));
    }

    #[test]
    #[should_panic(expected = "has no behaviour")]
    fn missing_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .run();
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(0, FnNode::new(|_, _: u64, _| {}));
    }

    /// Node set for [`token_ring`]-style runs through a reusable engine.
    fn counter_nodes(n: usize, target: u64) -> Vec<Box<dyn Node<u64>>> {
        (0..n)
            .map(|i| {
                let step = move |_f: usize, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m >= target {
                        if m < target + n as u64 - 1 {
                            ctx.send(m + 1);
                        }
                        ctx.terminate(Some(target));
                    } else {
                        ctx.send(m + 1);
                    }
                };
                if i == 0 {
                    Box::new(FnNode::new(step).on_wake(|ctx| ctx.send(1))) as Box<dyn Node<u64>>
                } else {
                    Box::new(FnNode::new(step)) as Box<dyn Node<u64>>
                }
            })
            .collect()
    }

    #[test]
    fn engine_reuse_matches_builder() {
        let n = 5;
        let target = 3 * n as u64;
        let via_builder = token_ring(n, FifoScheduler::new());
        let mut engine = Engine::new(Topology::ring(n));
        for _ in 0..3 {
            let mut nodes = counter_nodes(n, target);
            let exec = engine.run(
                &mut nodes,
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
            assert_eq!(exec, via_builder);
        }
    }

    #[test]
    fn engine_reset_clears_state() {
        let n = 4;
        let mut engine: Engine<u64> = Engine::new(Topology::ring(n));
        let mut nodes = counter_nodes(n, 3 * n as u64);
        let _ = engine.run(
            &mut nodes,
            &[0],
            &mut FifoScheduler::new(),
            default_step_limit(n),
        );
        engine.reset();
        assert!(engine.links_are_empty());
        assert!(engine.outputs.iter().all(|o| o.is_none()));
        assert!(engine.sent.iter().all(|&s| s == 0));
        assert!(engine.received.iter().all(|&r| r == 0));
    }

    #[test]
    #[should_panic(expected = "one behaviour per node")]
    fn engine_rejects_wrong_node_count() {
        let mut engine: Engine<u64> = Engine::new(Topology::ring(3));
        let mut nodes = counter_nodes(2, 6);
        let _ = engine.run(&mut nodes, &[0], &mut FifoScheduler::new(), 100);
    }

    /// A monomorphic token-ring counter node (no boxing) for the
    /// `run_mono` paths.
    struct Counter {
        n: u64,
        target: u64,
        wakes: bool,
    }

    impl Node<u64> for Counter {
        fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.wakes {
                ctx.send(1);
            }
        }

        fn on_message(&mut self, _from: usize, m: u64, ctx: &mut Ctx<'_, u64>) {
            if m >= self.target {
                if m < self.target + self.n - 1 {
                    ctx.send(m + 1);
                }
                ctx.terminate(Some(self.target));
            } else {
                ctx.send(m + 1);
            }
        }
    }

    fn mono_nodes(n: usize, target: u64) -> Vec<Counter> {
        (0..n)
            .map(|i| Counter {
                n: n as u64,
                target,
                wakes: i == 0,
            })
            .collect()
    }

    #[test]
    fn run_into_and_run_mono_match_run() {
        let n = 5;
        let target = 3 * n as u64;
        let mut engine = Engine::new(Topology::ring(n));
        let reference = engine.run(
            &mut counter_nodes(n, target),
            &[0],
            &mut FifoScheduler::new(),
            default_step_limit(n),
        );

        let mut reused = Execution::default();
        let mut scheduler = FifoScheduler::new();
        for _ in 0..3 {
            engine.run_into(
                &mut counter_nodes(n, target),
                &[0],
                &mut scheduler,
                default_step_limit(n),
                &mut reused,
            );
            assert_eq!(reused, reference);

            let mut mono = mono_nodes(n, target);
            let exec = engine.run_mono(&mut mono, &[0], &mut scheduler, default_step_limit(n));
            assert_eq!(exec, reference);

            engine.run_mono_into(
                &mut mono_nodes(n, target),
                &[0],
                &mut scheduler,
                default_step_limit(n),
                &mut reused,
            );
            assert_eq!(reused, reference);
        }
    }

    #[test]
    fn run_clears_a_dirty_scheduler() {
        // A stale token left over from an aborted run must not leak into
        // the next trial.
        let n = 4;
        let mut engine = Engine::new(Topology::ring(n));
        let mut scheduler = FifoScheduler::new();
        scheduler.push(Token::Wake(2));
        let exec = engine.run_mono(
            &mut mono_nodes(n, 3 * n as u64),
            &[0],
            &mut scheduler,
            default_step_limit(n),
        );
        assert_eq!(exec.outcome, Outcome::Elected(3 * n as u64));
    }

    #[test]
    fn dense_edge_table_matches_topology_lookup() {
        let topo = Topology::complete(6);
        let engine: Engine<u64> = Engine::new(topo.clone());
        assert!(!engine.edge_of_dense.is_empty());
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(engine.edge_to(a, b), topo.edge_id(a, b).unwrap());
                }
            }
        }
    }

    /// The fused global-FIFO stream vs the split token/link path driven by
    /// `reference::FifoScheduler` (identical pop order, `is_global_fifo`
    /// false): executions must be bit-identical, on both link layouts.
    #[test]
    fn fused_fifo_matches_split_path_with_same_schedule() {
        let n = 6;
        let target = 3 * n as u64;
        let limit = default_step_limit(n);
        for general in [false, true] {
            let mut engine = if general {
                Engine::new_with_general_links(Topology::ring(n))
            } else {
                Engine::new(Topology::ring(n))
            };
            for _ in 0..2 {
                let fused = engine.run_mono(
                    &mut mono_nodes(n, target),
                    &[0],
                    &mut FifoScheduler::new(),
                    limit,
                );
                let split = engine.run_mono(
                    &mut mono_nodes(n, target),
                    &[0],
                    &mut crate::scheduler::reference::FifoScheduler::new(),
                    limit,
                );
                assert_eq!(fused, split, "general={general}");
            }
        }
    }

    #[test]
    fn link_storage_selection_matches_topology_shape() {
        // Unidirectional ring: one in-edge per node → slab.
        assert!(Engine::<u64>::new(Topology::ring(5)).uses_ring_slab());
        // Complete digraph / bidirectional ring: multiple in-edges → queues.
        assert!(!Engine::<u64>::new(Topology::complete(4)).uses_ring_slab());
        assert!(!Engine::<u64>::new(Topology::bidirectional_ring(4)).uses_ring_slab());
        // The differential oracle forces queues even on the ring.
        assert!(!Engine::<u64>::new_with_general_links(Topology::ring(5)).uses_ring_slab());
    }

    #[test]
    fn general_links_engine_matches_slab_engine() {
        let n = 6;
        let target = 3 * n as u64;
        let mut slab = Engine::new(Topology::ring(n));
        let mut general = Engine::new_with_general_links(Topology::ring(n));
        for _ in 0..3 {
            let a = slab.run_mono(
                &mut mono_nodes(n, target),
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
            let b = general.run_mono(
                &mut mono_nodes(n, target),
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn burst_past_slab_capacity_stays_fifo() {
        // One activation sends 40 messages on a single ring link — far
        // past the slab's initial per-link capacity, forcing grow mid-run.
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let mut engine: Engine<u64> = Engine::new(Topology::ring(2));
        assert!(engine.uses_ring_slab());
        let mut nodes: Vec<Box<dyn Node<u64>>> = vec![
            Box::new(
                FnNode::new(|_, _: u64, _ctx: &mut Ctx<'_, u64>| {}).on_wake(|ctx| {
                    for v in 0..40 {
                        ctx.send(v);
                    }
                    ctx.terminate(Some(0));
                }),
            ),
            Box::new(FnNode::new(move |_, m: u64, ctx: &mut Ctx<'_, u64>| {
                seen2.borrow_mut().push(m);
                if seen2.borrow().len() == 40 {
                    ctx.terminate(Some(0));
                }
            })),
        ];
        let exec = engine.run(&mut nodes, &[0], &mut FifoScheduler::new(), 1000);
        assert_eq!(exec.outcome, Outcome::Elected(0));
        assert_eq!(*seen.borrow(), (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn reset_clears_only_touched_links_but_all_of_them() {
        // Hit the step limit so messages are left queued, then rerun: the
        // dirty-links reset must clear the leftovers (a stale message
        // surfacing in run 2 would corrupt its FIFO order).
        let n = 4;
        let target = 3 * n as u64;
        let mut engine: Engine<u64> = Engine::new(Topology::ring(n));
        let exec = engine.run(
            &mut counter_nodes(n, target),
            &[0],
            &mut FifoScheduler::new(),
            3,
        );
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::StepLimit));
        let clean = engine.run(
            &mut counter_nodes(n, target),
            &[0],
            &mut FifoScheduler::new(),
            default_step_limit(n),
        );
        assert_eq!(clean.outcome, Outcome::Elected(3 * n as u64));
        engine.reset();
        assert!(engine.links_are_empty());
        assert!(engine.link_touched.is_empty());
        assert!(engine.link_dirty.iter().all(|&d| !d));
    }

    #[test]
    fn timed_zero_profile_matches_fused_fifo() {
        // The equivalence anchor: an all-zero network stamps every event
        // with t = 0, so the timed heap pops in send order — bit-identical
        // to the fused global-FIFO path.
        let n = 6;
        let target = 3 * n as u64;
        let mut engine = Engine::new(Topology::ring(n));
        let mut timed = crate::TimedScheduler::new();
        let net = crate::TimedNetConfig::default();
        for seed in 0..3 {
            let fused = engine.run_mono(
                &mut mono_nodes(n, target),
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
            let timed_exec = engine.run_timed(
                &mut mono_nodes(n, target),
                &[0],
                &mut timed,
                &net,
                seed,
                default_step_limit(n),
            );
            assert_eq!(fused, timed_exec, "seed={seed}");
        }
    }

    #[test]
    fn timed_latency_changes_delivery_order_not_election() {
        // The token ring's outcome is schedule-independent, so even a
        // noisy network elects the same value — but the virtual clock
        // must have advanced.
        let n = 5;
        let target = 3 * n as u64;
        let mut engine = Engine::new(Topology::ring(n));
        let mut timed = crate::TimedScheduler::new();
        let net = crate::TimedNetConfig::uniform(crate::LinkProfile {
            latency: crate::LatencySpec::Uniform { lo: 10, hi: 5000 },
            ..crate::LinkProfile::default()
        });
        let exec = engine.run_timed(
            &mut mono_nodes(n, target),
            &[0],
            &mut timed,
            &net,
            42,
            default_step_limit(n),
        );
        assert_eq!(exec.outcome, Outcome::Elected(target));
        assert!(timed.now() > 0, "virtual clock must advance");
    }

    #[test]
    fn timed_runs_replay_bit_identically_from_one_seed() {
        let n = 6;
        let target = 3 * n as u64;
        let mut engine = Engine::new(Topology::ring(n));
        let mut timed = crate::TimedScheduler::new();
        let net = crate::TimedNetConfig::uniform(crate::LinkProfile {
            latency: crate::LatencySpec::TwoPoint {
                lo: 5,
                hi: 500,
                hi_permille: 250,
            },
            loss_permille: 100,
            dup_permille: 100,
            gap_ns: 3,
        });
        let mut run = |seed: u64| {
            engine.run_timed(
                &mut mono_nodes(n, target),
                &[0],
                &mut timed,
                &net,
                seed,
                default_step_limit(n),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
    }

    #[test]
    fn retained_capacity_is_bounded_after_oversized_trial() {
        // One burst trial grows the fused stream (FIFO path) and the link
        // slab (split path) far past steady state; the decaying budget in
        // reset() must release the excess over the following small trials.
        let n = 2;
        let burst = 100_000u64;
        let mut engine: Engine<u64> = Engine::new(Topology::ring(n));
        let burst_nodes = || -> Vec<Box<dyn Node<u64>>> {
            vec![
                Box::new(
                    FnNode::new(|_, _: u64, _ctx: &mut Ctx<'_, u64>| {}).on_wake(move |ctx| {
                        for v in 0..burst {
                            ctx.send(v);
                        }
                        ctx.terminate(Some(0));
                    }),
                ),
                Box::new(FnNode::new(move |_, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m + 1 == burst {
                        ctx.terminate(Some(0));
                    }
                })),
            ]
        };
        // Grow both layouts: the fused path via the global FIFO, the slab
        // via the split-path reference scheduler.
        let _ = engine.run(
            &mut burst_nodes(),
            &[0],
            &mut FifoScheduler::new(),
            4 * burst,
        );
        let _ = engine.run(
            &mut burst_nodes(),
            &[0],
            &mut crate::scheduler::reference::FifoScheduler::new(),
            4 * burst,
        );
        assert!(
            engine.retained_fused_capacity() >= burst as usize
                || engine.retained_link_capacity() >= burst as usize,
            "burst must have grown a queue"
        );
        // Many small trials decay the watermark; capacity must follow.
        for _ in 0..64 {
            let _ = engine.run(
                &mut counter_nodes(n, 3 * n as u64),
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
        }
        engine.reset();
        assert!(
            engine.retained_fused_capacity() <= 1024,
            "fused stream retained {} slots",
            engine.retained_fused_capacity()
        );
        assert!(
            engine.retained_link_capacity() <= 1024,
            "link slab retained {} slots per link",
            engine.retained_link_capacity()
        );
    }

    #[test]
    fn steady_state_batches_do_not_thrash_capacity() {
        // Identical mid-size trials must settle: capacity after trial 3
        // and after trial 50 are the same (the budget never dips below the
        // steady-state watermark, so reset never releases live capacity).
        let n = 8;
        let target = 3 * n as u64;
        let mut engine: Engine<u64> = Engine::new(Topology::ring(n));
        for _ in 0..3 {
            let _ = engine.run(
                &mut counter_nodes(n, target),
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
        }
        let settled = (
            engine.retained_fused_capacity(),
            engine.retained_link_capacity(),
        );
        for _ in 0..47 {
            let _ = engine.run(
                &mut counter_nodes(n, target),
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
        }
        assert_eq!(
            settled,
            (
                engine.retained_fused_capacity(),
                engine.retained_link_capacity(),
            )
        );
    }

    #[test]
    fn wake_all_wakes_everyone() {
        let exec: Execution = SimBuilder::new(Topology::ring(3))
            .node(
                0,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                1,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                2,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .wake_all()
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(7));
    }
}
