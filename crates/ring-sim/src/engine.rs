//! The discrete-event execution engine.

use crate::node::{Ctx, Node};
use crate::outcome::{outcome_of, Outcome};
use crate::probe::Probe;
use crate::scheduler::{FifoScheduler, Scheduler, Token};
use crate::topology::{NodeId, Topology};
use std::collections::VecDeque;

/// Default step limit for a topology of `n` nodes: generous enough for any
/// protocol in this workspace (`A-LEADuni` delivers `n²` messages,
/// `PhaseAsyncLead` delivers `2n²`).
pub const DEFAULT_STEP_LIMIT: fn(usize) -> u64 = |n| 16 * (n as u64) * (n as u64) + 4096;

/// Builder wiring nodes, topology, wake-ups, scheduler and probe into one
/// runnable simulation.
///
/// # Examples
///
/// See the crate-level example. Typical protocol harnesses construct one
/// `SimBuilder` per trial:
///
/// ```
/// use ring_sim::{FnNode, RandomScheduler, SimBuilder, Topology};
///
/// let exec = SimBuilder::new(Topology::ring(3))
///     .node(0, FnNode::new(|_, m: u64, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.terminate(Some(m));
///     })
///     .on_wake(|ctx| { ctx.send(9); ctx.terminate(Some(9)); }))
///     .node(1, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .node(2, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .wake(0)
///     .scheduler(RandomScheduler::new(1))
///     .run();
/// assert_eq!(exec.outcome.elected(), Some(9));
/// ```
pub struct SimBuilder<'p, M> {
    topology: Topology,
    nodes: Vec<Option<Box<dyn Node<M> + 'p>>>,
    wakes: Vec<NodeId>,
    scheduler: Box<dyn Scheduler + 'p>,
    step_limit: u64,
    probe: Option<&'p mut dyn Probe<M>>,
}

impl<'p, M> std::fmt::Debug for SimBuilder<'p, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("topology", &self.topology)
            .field("wakes", &self.wakes)
            .field("step_limit", &self.step_limit)
            .finish_non_exhaustive()
    }
}

impl<'p, M> SimBuilder<'p, M> {
    /// Starts a builder for the given topology with the default FIFO
    /// scheduler and step limit.
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        Self {
            topology,
            nodes: (0..n).map(|_| None).collect(),
            wakes: Vec::new(),
            scheduler: Box::new(FifoScheduler::new()),
            step_limit: DEFAULT_STEP_LIMIT(n),
            probe: None,
        }
    }

    /// Installs the behaviour of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn node(mut self, id: NodeId, node: impl Node<M> + 'p) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(Box::new(node));
        self
    }

    /// Installs a boxed behaviour of node `id` (for heterogeneous
    /// protocol/attack mixes built at runtime).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn boxed_node(mut self, id: NodeId, node: Box<dyn Node<M> + 'p>) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(node);
        self
    }

    /// Schedules a spontaneous wake-up for `id` (wake-ups are scheduled
    /// like messages, so they interleave obliviously with deliveries).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn wake(mut self, id: NodeId) -> Self {
        assert!(id < self.nodes.len(), "wake id {id} out of range");
        self.wakes.push(id);
        self
    }

    /// Schedules wake-ups for every node, in id order.
    pub fn wake_all(mut self) -> Self {
        let n = self.nodes.len();
        self.wakes.extend(0..n);
        self
    }

    /// Replaces the default FIFO scheduler.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'p) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Overrides the step limit (each wake-up or delivery is one step).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Attaches an observation probe for this run.
    pub fn probe(mut self, probe: &'p mut dyn Probe<M>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Runs the simulation to completion and returns the [`Execution`].
    ///
    /// The run ends when all nodes have terminated, when no tokens remain
    /// (deadlock), or when the step limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if any node id was left without a behaviour — an incomplete
    /// wiring is a programming error.
    pub fn run(self) -> Execution {
        let SimBuilder {
            topology,
            nodes,
            wakes,
            mut scheduler,
            step_limit,
            mut probe,
        } = self;
        let n = topology.len();
        let mut nodes: Vec<Box<dyn Node<M> + 'p>> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("node {i} has no behaviour")))
            .collect();
        let out_neighbors: Vec<Vec<NodeId>> = (0..n).map(|i| topology.out_neighbors(i)).collect();
        // Per-node map from successor id to edge id (out-degrees are tiny,
        // linear scan is fastest).
        let out_edge_of: Vec<Vec<(NodeId, usize)>> = (0..n)
            .map(|i| {
                topology
                    .out_edges(i)
                    .iter()
                    .map(|&e| (topology.edges()[e].1, e))
                    .collect()
            })
            .collect();

        let mut queues: Vec<VecDeque<M>> = (0..topology.edges().len())
            .map(|_| VecDeque::new())
            .collect();
        let mut outputs: Vec<Option<Option<u64>>> = vec![None; n];
        let mut sent = vec![0u64; n];
        let mut received = vec![0u64; n];
        let mut delivered = 0u64;
        let mut steps = 0u64;

        for &w in &wakes {
            scheduler.push(Token::Wake(w));
        }

        let apply_ctx = |me: NodeId,
                         ctx: Ctx<'_, M>,
                         queues: &mut Vec<VecDeque<M>>,
                         outputs: &mut Vec<Option<Option<u64>>>,
                         sent: &mut Vec<u64>,
                         scheduler: &mut Box<dyn Scheduler + 'p>,
                         probe: &mut Option<&'p mut dyn Probe<M>>| {
            let Ctx { sends, output, .. } = ctx;
            for (to, msg) in sends {
                let edge = out_edge_of[me]
                    .iter()
                    .find(|&&(t, _)| t == to)
                    .map(|&(_, e)| e)
                    .expect("Ctx validated the link exists");
                sent[me] += 1;
                if let Some(p) = probe.as_deref_mut() {
                    p.on_send(me, to, &msg, sent);
                }
                queues[edge].push_back(msg);
                scheduler.push(Token::Deliver(edge));
            }
            if let Some(out) = output {
                outputs[me] = Some(out);
                if let Some(p) = probe.as_deref_mut() {
                    p.on_terminate(me, out);
                }
            }
        };

        let mut hit_limit = false;
        while let Some(token) = scheduler.pop() {
            if steps >= step_limit {
                hit_limit = true;
                break;
            }
            steps += 1;
            match token {
                Token::Wake(i) => {
                    if outputs[i].is_none() {
                        let mut ctx = Ctx::new(i, &out_neighbors[i]);
                        nodes[i].on_wake(&mut ctx);
                        apply_ctx(
                            i,
                            ctx,
                            &mut queues,
                            &mut outputs,
                            &mut sent,
                            &mut scheduler,
                            &mut probe,
                        );
                    }
                }
                Token::Deliver(edge) => {
                    let msg = queues[edge]
                        .pop_front()
                        .expect("token implies a queued message");
                    let (from, to) = topology.edges()[edge];
                    received[to] += 1;
                    delivered += 1;
                    if let Some(p) = probe.as_deref_mut() {
                        p.on_deliver(from, to, &msg, &received);
                    }
                    if outputs[to].is_none() {
                        let mut ctx = Ctx::new(to, &out_neighbors[to]);
                        nodes[to].on_message(from, msg, &mut ctx);
                        apply_ctx(
                            to,
                            ctx,
                            &mut queues,
                            &mut outputs,
                            &mut sent,
                            &mut scheduler,
                            &mut probe,
                        );
                    }
                }
            }
        }

        let outcome = outcome_of(&outputs, !hit_limit);
        Execution {
            outcome,
            outputs,
            stats: Stats {
                steps,
                delivered,
                sent,
                received,
            },
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// The global outcome.
    pub outcome: Outcome,
    /// Per-node terminal outputs (`None` = never terminated,
    /// `Some(None)` = aborted with `⊥`, `Some(Some(v))` = output `v`).
    pub outputs: Vec<Option<Option<u64>>>,
    /// Counters gathered during the run.
    pub stats: Stats,
}

/// Execution counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Total wake-ups plus deliveries processed.
    pub steps: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Messages sent per node.
    pub sent: Vec<u64>,
    /// Messages received per node (including messages dropped because the
    /// receiver had terminated).
    pub received: Vec<u64>,
}

impl Stats {
    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FnNode;
    use crate::outcome::FailReason;
    use crate::scheduler::{LifoScheduler, RandomScheduler};
    use crate::Topology;

    /// Token-ring counter: origin starts a token; each node increments and
    /// forwards; everyone terminates with the value they saw at `3n`.
    fn token_ring(n: usize, scheduler: impl Scheduler + 'static) -> Execution {
        let target = 3 * n as u64;
        let mut b = SimBuilder::new(Topology::ring(n)).scheduler(scheduler);
        for i in 0..n {
            let node = FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                if m >= target {
                    if m < target + n as u64 - 1 {
                        ctx.send(m + 1);
                    }
                    ctx.terminate(Some(target));
                } else {
                    ctx.send(m + 1);
                }
            })
            .on_wake(move |ctx| {
                ctx.send(1);
            });
            if i == 0 {
                b = b.node(i, node);
            } else {
                b = b.node(
                    i,
                    FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                        if m >= target {
                            if m < target + n as u64 - 1 {
                                ctx.send(m + 1);
                            }
                            ctx.terminate(Some(target));
                        } else {
                            ctx.send(m + 1);
                        }
                    }),
                );
            }
        }
        b.wake(0).run()
    }

    #[test]
    fn token_ring_elects_target_under_fifo() {
        let exec = token_ring(5, FifoScheduler::new());
        assert_eq!(exec.outcome, Outcome::Elected(15));
    }

    #[test]
    fn token_ring_schedule_independent() {
        let fifo = token_ring(6, FifoScheduler::new());
        let lifo = token_ring(6, LifoScheduler::new());
        let rand = token_ring(6, RandomScheduler::new(99));
        assert_eq!(fifo.outcome, lifo.outcome);
        assert_eq!(fifo.outcome, rand.outcome);
    }

    #[test]
    fn silent_network_deadlocks() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(1, FnNode::new(|_, _: u64, _| {}))
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::Deadlock));
    }

    #[test]
    fn infinite_chatter_hits_step_limit() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m))
                    .on_wake(|ctx| ctx.send(0)),
            )
            .node(
                1,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m)),
            )
            .wake(0)
            .step_limit(500)
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::StepLimit));
        assert_eq!(exec.stats.steps, 500);
    }

    #[test]
    fn messages_to_terminated_nodes_are_dropped() {
        // Node 1 terminates on first message; node 0 sends two.
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))).on_wake(
                    |ctx| {
                        ctx.send(1);
                        ctx.send(2);
                        ctx.terminate(Some(1));
                    },
                ),
            )
            .node(
                1,
                FnNode::new(|_, _m: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))),
            )
            .wake(0)
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(1));
        assert_eq!(exec.stats.received[1], 2); // both counted, one dropped
    }

    #[test]
    fn fifo_link_order_is_preserved_even_under_lifo_scheduler() {
        // Node 0 sends 1, 2, 3 to node 1; node 1 records order.
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, _ctx: &mut Ctx<'_, u64>| {}).on_wake(|ctx| {
                    ctx.send(1);
                    ctx.send(2);
                    ctx.send(3);
                    ctx.terminate(Some(0));
                }),
            )
            .node(
                1,
                FnNode::new(move |_, m: u64, ctx: &mut Ctx<'_, u64>| {
                    seen2.borrow_mut().push(m);
                    if seen2.borrow().len() == 3 {
                        ctx.terminate(Some(0));
                    }
                }),
            )
            .wake(0)
            .scheduler(LifoScheduler::new())
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(0));
        assert_eq!(*seen.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn stats_count_sends_and_receives() {
        let exec = token_ring(4, FifoScheduler::new());
        assert_eq!(exec.stats.total_sent(), exec.stats.delivered);
        assert!(exec.stats.sent.iter().all(|&s| s > 0));
    }

    #[test]
    #[should_panic(expected = "has no behaviour")]
    fn missing_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .run();
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(0, FnNode::new(|_, _: u64, _| {}));
    }

    #[test]
    fn wake_all_wakes_everyone() {
        let exec: Execution = SimBuilder::new(Topology::ring(3))
            .node(
                0,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                1,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                2,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .wake_all()
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(7));
    }
}
